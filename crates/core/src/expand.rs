//! Expand phase with propagation blocking (lines 5–18 of Algorithm 2).
//!
//! Threads walk the outer products `A(:, i) × B(i, :)` in parallel.  Each
//! generated tuple is appended to a small *local bin* private to the thread;
//! when a local bin fills up, its contents are flushed to the corresponding
//! *global bin* in one contiguous write, so global-memory traffic happens in
//! multiples of whole cache lines — the propagation-blocking idea.
//!
//! Two flush mechanisms are provided (selected by
//! [`ExpandStrategy`]):
//!
//! * **Reserved** (default, the paper's design): the symbolic phase has
//!   already computed the exact number of tuples per global bin, so the
//!   global buffer is allocated once, uninitialised, and every flush
//!   reserves a disjoint range with a relaxed `fetch_add` and copies into it
//!   with `ptr::copy_nonoverlapping`.  No locks, no initialisation, no
//!   reallocation.
//! * **ThreadLocal** (safe fallback): every thread accumulates per-bin
//!   `Vec`s which are concatenated after the parallel loop.  Used for
//!   differential testing and as an ablation point for the benchmarks.
//!
//! # NUMA-domain partitioning
//!
//! On a multi-domain [`Symbolic`] (see [`crate::topology`]) the Reserved
//! strategy reserves per **(bin, domain)** sub-segment: tuples produced
//! from domain `d`'s flop-balanced column range land in sub-segment `d` of
//! their bin, and the parallel loop's blocks are routed so domain `d`'s
//! pool workers claim domain `d`'s columns first (`with_domain_boundaries`)
//! — the flush `memcpy`s, the dominant memory traffic of the whole
//! algorithm, then write domain-local pages.  Cross-domain claims still
//! happen when one domain runs dry (work-stealing liveness), so every flush
//! is *counted* as local or remote against the flushing worker's own domain
//! id; [`PhaseStats`](crate::profile::PhaseStats::local_flush_fraction)
//! reports the measured fraction rather than asserting locality.  The
//! sub-segments of a bin are adjacent in fixed domain order, so the
//! downstream phases (and the assembled product) are bit-identical to the
//! single-domain schedule.
//!
//! # Software prefetch on the flush copy
//!
//! The flush `memcpy` is the dominant write stream of the whole algorithm,
//! and its destination hops to a different global sub-segment on every
//! flush — a pattern the hardware prefetcher cannot learn.  On any
//! non-scalar [`Isa`](crate::simd::Isa) level (see
//! [`PbConfig::resolve_simd`]) the flush therefore issues one software
//! prefetch-for-write hint per destination cache line *before* the copy,
//! so the line fills overlap the copy instead of serialising it.  Safety:
//! the hinted addresses lie inside the reserved `[start, start + n)` range
//! the copy is about to write (in-bounds by the `SharedBuf` invariant), and
//! prefetch hints are architecturally defined never to fault in any case —
//! the pointers are computed with `wrapping_add` and carry no `unsafe`
//! obligations (see the safety argument in [`crate::simd`]).  Prefetched
//! flushes are counted into
//! [`PhaseStats::isa`](crate::profile::PhaseStats::isa) so telemetry proves
//! whether the hints were on.

use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};

use pb_sparse::semiring::Semiring;
use pb_sparse::{Csc, Csr};
use rayon::prelude::*;

use crate::bins::{BinnedTuples, Entry};
use crate::config::{ExpandStrategy, PbConfig};
use crate::profile::{StatsCollector, FLUSH_HIST_BUCKETS};
use crate::symbolic::Symbolic;
use crate::workspace::WorkspaceLease;

/// Runs the expand phase, producing the binned expanded matrix `Ĉ`.
///
/// Flush telemetry (counts, sizes, per-segment extremes) is accumulated
/// thread-locally and merged into `stats` once per fold segment, so the hot
/// flush path pays nothing for the instrumentation.
///
/// The global tuple buffer and the `bin_offsets`/`compressed_len` staging
/// come out of `lease` — recycled capacity when the lease is backed by a
/// [`Workspace`](crate::Workspace) whose high-water mark covers this
/// multiply, counted fresh allocations otherwise — and flow back into the
/// workspace when the pipeline releases the lease.
pub fn expand<S: Semiring>(
    a: &Csc<S::Elem>,
    b: &Csr<S::Elem>,
    sym: &Symbolic,
    config: &PbConfig,
    stats: &StatsCollector,
    lease: &mut WorkspaceLease<S::Elem>,
) -> BinnedTuples<S::Elem> {
    match config.expand {
        ExpandStrategy::Reserved => expand_reserved::<S>(a, b, sym, config, stats, lease),
        ExpandStrategy::ThreadLocal => expand_thread_local::<S>(a, b, sym, stats, lease),
    }
}

/// Number of tuples a local bin of `local_bin_bytes` bytes holds, derived
/// from the actual `Entry<V>` size rather than any assumed tuple width.
///
/// When the byte budget covers at least one cache line
/// ([`CACHE_LINE_BYTES`](crate::config::CACHE_LINE_BYTES)), the capacity is
/// rounded *down* to a whole number of cache lines' worth of entries so
/// that every flush writes full lines — the point of propagation blocking.
/// Smaller budgets degrade gracefully to whatever fits (at least one tuple,
/// so the algorithm still works with absurdly small settings).
pub fn local_bin_capacity<V>(local_bin_bytes: usize) -> usize {
    let entry = std::mem::size_of::<Entry<V>>();
    let raw = (local_bin_bytes / entry).max(1);
    let per_line = (crate::config::CACHE_LINE_BYTES / entry).max(1);
    if raw >= per_line {
        raw - raw % per_line
    } else {
        raw
    }
}

// ---------------------------------------------------------------------------
// Reserved strategy
// ---------------------------------------------------------------------------

/// Shared pointer to the uninitialised global tuple buffer.
///
/// Safety: every flush writes a range `[start, start + n)` obtained from a
/// `fetch_add(n)` on that bin's cursor, and the symbolic phase guarantees
/// that the total number of tuples produced for a bin equals the bin's
/// segment size, so (a) ranges handed to different flushes never overlap and
/// (b) no write ever leaves a bin's segment.  Every slot of the buffer is
/// therefore written exactly once before the buffer is read.
///
/// Under *real* concurrency (threads flushing the same bin simultaneously)
/// two further points make this sound:
///
/// * the reservation uses `Ordering::Relaxed`, which is sufficient because
///   a `fetch_add` is an atomic read-modify-write — two flushes can never
///   observe the same cursor value, so the reserved ranges are disjoint by
///   construction and no ordering between the *data* writes of different
///   threads is needed (they touch disjoint memory);
/// * the buffer is only read back after the parallel loop completes, and
///   the pool's task-completion handshake (a `Release` increment per block
///   joined by an `Acquire` read on the submitting thread) establishes a
///   happens-before edge from every flush to that read.
struct SharedBuf<V> {
    ptr: *mut MaybeUninit<Entry<V>>,
    len: usize,
}

unsafe impl<V: Send> Send for SharedBuf<V> {}
unsafe impl<V: Send> Sync for SharedBuf<V> {}

/// Thread-private local bins: a flat `nbins × capacity` tuple array plus a
/// fill level per bin (Fig. 5 of the paper).
///
/// On a multi-domain run the flush destination is the *(bin,
/// `target_domain`)* sub-segment, where `target_domain` is the domain
/// owning the columns currently being expanded.  The local bins are flushed
/// whole whenever the loop crosses a column-domain boundary, so a local bin
/// never mixes tuples destined for different sub-segments — with the
/// domain-routed schedule a fold block lies entirely inside one domain's
/// column range and the boundary flush never actually fires mid-block.
struct LocalBins<'a, V> {
    data: Vec<Entry<V>>,
    len: Vec<u32>,
    capacity: usize,
    buf: &'a SharedBuf<V>,
    cursors: &'a [AtomicUsize],
    seg_ends: &'a [usize],
    stats: &'a StatsCollector,
    /// Domains of the partition (1 = classic single-segment bins).
    domains: usize,
    /// Column boundaries of the domains (`domains + 1` entries).
    col_domain_starts: &'a [usize],
    /// Domain owning the columns currently being expanded.
    target_domain: usize,
    /// First column past the current domain's range (0 forces the first
    /// item to resolve its domain).
    target_end: usize,
    /// The executing worker's own domain id (flushes to any other domain's
    /// sub-segment count as remote).
    my_domain: usize,
    /// Whether flushes hint their destination lines with software prefetch
    /// (any non-scalar ISA level; see the module doc).
    prefetch: bool,
    // Telemetry accumulated locally; merged into `stats` once per segment.
    flushes: u64,
    flushed: u64,
    local_flushes: u64,
    local_flushed: u64,
    prefetched_flushes: u64,
    fill_hist: [u64; FLUSH_HIST_BUCKETS],
}

impl<'a, V: Copy> LocalBins<'a, V> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        nbins: usize,
        capacity: usize,
        buf: &'a SharedBuf<V>,
        cursors: &'a [AtomicUsize],
        seg_ends: &'a [usize],
        zero: Entry<V>,
        domains: usize,
        col_domain_starts: &'a [usize],
        prefetch: bool,
        stats: &'a StatsCollector,
    ) -> Self {
        LocalBins {
            data: vec![zero; nbins * capacity],
            len: vec![0u32; nbins],
            capacity,
            buf,
            cursors,
            seg_ends,
            stats,
            domains,
            col_domain_starts,
            target_domain: 0,
            target_end: if domains > 1 { 0 } else { usize::MAX },
            // The identity closure of the expand fold runs on the thread
            // that claimed the block, so this is the flushing worker's id
            // (clamped like the claim routing is, in case the pool carries
            // more domain labels than the partition has ranges; 0 on an
            // unpartitioned run, where every flush is by definition local).
            my_domain: if domains > 1 {
                rayon::current_domain().min(domains - 1)
            } else {
                0
            },
            prefetch,
            flushes: 0,
            flushed: 0,
            local_flushes: 0,
            local_flushed: 0,
            prefetched_flushes: 0,
            fill_hist: [0; FLUSH_HIST_BUCKETS],
        }
    }

    /// Re-targets the local bins at the domain owning column `col`,
    /// flushing everything buffered for the previous domain first.  Columns
    /// arrive in ascending order within a block, so this fires at most once
    /// per crossed boundary.
    #[inline]
    fn enter_column(&mut self, col: usize) {
        if col < self.target_end {
            return;
        }
        for bin in 0..self.len.len() {
            self.flush(bin);
        }
        let d = crate::topology::domain_of_index(self.col_domain_starts, self.domains, col);
        self.target_domain = d;
        self.target_end = self.col_domain_starts[d + 1];
    }

    /// Appends one tuple to local bin `bin`, flushing it first if full.
    #[inline]
    fn push(&mut self, bin: usize, entry: Entry<V>) {
        let len = self.len[bin] as usize;
        if len == self.capacity {
            self.flush(bin);
            self.data[bin * self.capacity] = entry;
            self.len[bin] = 1;
        } else {
            self.data[bin * self.capacity + len] = entry;
            self.len[bin] = len as u32 + 1;
        }
    }

    /// Flushes local bin `bin` to its global (bin, domain) sub-segment.
    fn flush(&mut self, bin: usize) {
        let n = self.len[bin] as usize;
        if n == 0 {
            return;
        }
        // Reserve a disjoint destination range in the sub-segment of this
        // bin owned by the current column-domain.
        let seg = bin * self.domains + self.target_domain;
        let start = self.cursors[seg].fetch_add(n, Ordering::Relaxed);
        debug_assert!(
            start + n <= self.seg_ends[seg],
            "expand overflowed bin {bin} (domain {}): symbolic phase under-counted",
            self.target_domain
        );
        debug_assert!(start + n <= self.buf.len);
        let src = &self.data[bin * self.capacity..bin * self.capacity + n];
        if self.prefetch {
            // Hint every destination line before the copy so the fills
            // overlap it; the addresses are inside the range the copy is
            // about to write and prefetch hints never fault regardless.
            let dst_bytes = self.buf.ptr.wrapping_add(start) as *const u8;
            let mut off = 0usize;
            let total = n * std::mem::size_of::<Entry<V>>();
            while off < total {
                crate::simd::prefetch_write(dst_bytes.wrapping_add(off));
                off += crate::simd::PREFETCH_LINE_BYTES;
            }
            self.prefetched_flushes += 1;
        }
        // SAFETY: `start + n <= seg_ends[seg] <= buf.len` (the symbolic
        // phase sized every (bin, domain) sub-segment to the exact tuple
        // count and the fetch_add hands out disjoint ranges), `src` and the
        // destination cannot overlap (the destination is uninitialised heap
        // memory owned by the global buffer), and `Entry<V>` is `Copy`.
        unsafe {
            let dst = self.buf.ptr.add(start);
            std::ptr::copy_nonoverlapping(src.as_ptr() as *const MaybeUninit<Entry<V>>, dst, n);
        }
        self.len[bin] = 0;
        self.flushes += 1;
        self.flushed += n as u64;
        if self.target_domain == self.my_domain {
            self.local_flushes += 1;
            self.local_flushed += n as u64;
        }
        // Bucket i covers fill fractions (i/8, (i+1)/8]: a full flush lands
        // in the top bucket, a 1-of-32 partial in the bottom one.
        let bucket =
            ((n * FLUSH_HIST_BUCKETS).div_ceil(self.capacity) - 1).min(FLUSH_HIST_BUCKETS - 1);
        self.fill_hist[bucket] += 1;
    }

    /// Flushes every non-empty local bin (lines 15–18 of Algorithm 2) and
    /// merges this segment's flush telemetry into the shared collector.
    fn finish(mut self) {
        for bin in 0..self.len.len() {
            self.flush(bin);
        }
        self.stats.record_expand_segment(
            self.flushes,
            self.flushed,
            &self.fill_hist,
            self.local_flushes,
            self.local_flushed,
            self.prefetched_flushes,
        );
    }
}

fn expand_reserved<S: Semiring>(
    a: &Csc<S::Elem>,
    b: &Csr<S::Elem>,
    sym: &Symbolic,
    config: &PbConfig,
    stats: &StatsCollector,
    lease: &mut WorkspaceLease<S::Elem>,
) -> BinnedTuples<S::Elem> {
    let flop = sym.flop as usize;
    let nbins = sym.layout.nbins;
    let domains = sym.domains.max(1);
    let layout = &sym.layout;

    // The global tuple buffer, uninitialised: recycled workspace capacity
    // when the high-water mark covers `flop`, a counted fresh allocation
    // otherwise.
    let mut raw: Vec<MaybeUninit<Entry<S::Elem>>> = lease.take_entries_uninit(flop, stats);
    // SAFETY: MaybeUninit contents never require initialisation; the length
    // only exposes uninitialised `MaybeUninit` slots, which is sound.
    unsafe { raw.set_len(flop) };
    let shared = SharedBuf {
        ptr: raw.as_mut_ptr(),
        len: flop,
    };

    // One reservation cursor per (bin, domain) sub-segment; with a single
    // domain this degenerates to exactly the classic per-bin cursors.
    let cursors: Vec<AtomicUsize> = sym.seg_offsets[..nbins * domains]
        .iter()
        .map(|&o| AtomicUsize::new(o))
        .collect();
    let seg_ends: Vec<usize> = sym.seg_offsets[1..].to_vec();

    // The autotuner's current width when enabled, the static setting
    // otherwise; recorded so the profile reports what actually ran.
    let capacity = local_bin_capacity::<S::Elem>(config.effective_local_bin_bytes());
    stats.record_local_bin_capacity(capacity);
    // Forcing the scalar ISA level also turns the flush prefetch hints off,
    // so PB_SIMD=scalar reproduces the pre-SIMD code paths exactly.
    let prefetch = config.resolve_simd() != crate::simd::Isa::Scalar;
    let zero_entry = Entry {
        key: 0,
        val: S::zero(),
    };

    let k = a.ncols();
    let columns = (0..k).into_par_iter();
    // Route each domain's column range to that domain's pool workers.
    let columns = if domains > 1 {
        columns.with_domain_boundaries(sym.col_domain_starts.clone())
    } else {
        columns
    };
    columns
        .fold(
            || {
                LocalBins::new(
                    nbins,
                    capacity,
                    &shared,
                    &cursors,
                    &seg_ends,
                    zero_entry,
                    domains,
                    &sym.col_domain_starts,
                    prefetch,
                    stats,
                )
            },
            |mut local, i| {
                if local.domains > 1 {
                    local.enter_column(i);
                }
                let (b_cols, b_vals) = b.row(i);
                if !b_cols.is_empty() {
                    let (a_rows, a_vals) = a.col(i);
                    for (&r, &a_ri) in a_rows.iter().zip(a_vals) {
                        let bin = layout.bin_of(r);
                        let row_key = layout.pack_row(r);
                        for (&c, &b_ic) in b_cols.iter().zip(b_vals) {
                            local.push(
                                bin,
                                Entry {
                                    key: row_key | c as u64,
                                    val: S::mul(a_ri, b_ic),
                                },
                            );
                        }
                    }
                }
                local
            },
        )
        .for_each(|local| local.finish());

    // Every cursor must have reached the end of its sub-segment: the buffer
    // is fully initialised.
    debug_assert!(cursors
        .iter()
        .zip(&seg_ends)
        .all(|(c, &end)| c.load(Ordering::Relaxed) == end));

    // SAFETY: all `flop` slots were written exactly once (see SharedBuf's
    // invariant), so the buffer is fully initialised `Entry<V>` values;
    // `MaybeUninit<Entry<V>>` and `Entry<V>` have identical layout.
    let entries: Vec<Entry<S::Elem>> = unsafe {
        let mut raw = std::mem::ManuallyDrop::new(raw);
        Vec::from_raw_parts(
            raw.as_mut_ptr() as *mut Entry<S::Elem>,
            raw.len(),
            raw.capacity(),
        )
    };

    BinnedTuples {
        entries,
        bin_offsets: lease.take_bin_offsets(&sym.bin_offsets, stats),
        compressed_len: lease.take_compressed_len(sym.bin_flop.iter().map(|&f| f as usize), stats),
        layout: sym.layout.clone(),
    }
}

// ---------------------------------------------------------------------------
// ThreadLocal strategy
// ---------------------------------------------------------------------------

fn expand_thread_local<S: Semiring>(
    a: &Csc<S::Elem>,
    b: &Csr<S::Elem>,
    sym: &Symbolic,
    stats: &StatsCollector,
    lease: &mut WorkspaceLease<S::Elem>,
) -> BinnedTuples<S::Elem> {
    let nbins = sym.layout.nbins;
    let layout = &sym.layout;
    let k = a.ncols();

    // Each rayon fold segment accumulates its own per-bin vectors.
    let partials: Vec<Vec<Vec<Entry<S::Elem>>>> = (0..k)
        .into_par_iter()
        .fold(
            || vec![Vec::new(); nbins],
            |mut local: Vec<Vec<Entry<S::Elem>>>, i| {
                let (b_cols, b_vals) = b.row(i);
                if !b_cols.is_empty() {
                    let (a_rows, a_vals) = a.col(i);
                    for (&r, &a_ri) in a_rows.iter().zip(a_vals) {
                        let bin = layout.bin_of(r);
                        let row_key = layout.pack_row(r);
                        for (&c, &b_ic) in b_cols.iter().zip(b_vals) {
                            local[bin].push(Entry {
                                key: row_key | c as u64,
                                val: S::mul(a_ri, b_ic),
                            });
                        }
                    }
                }
                local
            },
        )
        .collect();

    // Concatenate the partial bins in a deterministic order.  The final
    // buffer and staging vectors come from the lease like the Reserved
    // path's do (the per-segment partial vectors above are inherently
    // transient — this strategy exists for differential testing, not for
    // speed), so the steady-state zero-allocation telemetry holds under
    // either strategy.
    let mut entries: Vec<Entry<S::Elem>> = lease.take_entries_vec(sym.flop as usize, stats);
    let mut bin_offsets = lease.take_bin_offsets_empty(nbins + 1, stats);
    bin_offsets.push(0usize);
    let mut compressed_len = lease.take_compressed_len_empty(nbins, stats);
    for bin in 0..nbins {
        let before = entries.len();
        for part in &partials {
            entries.extend_from_slice(&part[bin]);
        }
        let produced = entries.len() - before;
        debug_assert_eq!(
            produced as u64, sym.bin_flop[bin],
            "bin {bin} flop mismatch"
        );
        compressed_len.push(produced);
        bin_offsets.push(entries.len());
    }
    debug_assert_eq!(entries.len() as u64, sym.flop);

    BinnedTuples {
        entries,
        bin_offsets,
        compressed_len,
        layout: sym.layout.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BinMapping;
    use crate::symbolic::symbolic;
    use pb_gen::{erdos_renyi_square, rmat_square};
    use pb_sparse::{Coo, PlusTimes};

    type S = PlusTimes<f64>;

    fn run(a: &Csr<f64>, cfg: &PbConfig) -> (BinnedTuples<f64>, Symbolic) {
        let (tuples, sym, _) = run_with_stats(a, cfg);
        (tuples, sym)
    }

    fn run_with_stats(
        a: &Csr<f64>,
        cfg: &PbConfig,
    ) -> (BinnedTuples<f64>, Symbolic, crate::profile::PhaseStats) {
        let a_csc = a.to_csc();
        let sym = symbolic(&a_csc, a, cfg, BinnedTuples::<f64>::tuple_bytes());
        let stats = StatsCollector::new();
        let mut lease = WorkspaceLease::<f64>::acquire(None);
        let tuples = expand::<S>(&a_csc, a, &sym, cfg, &stats, &mut lease);
        (tuples, sym, stats.snapshot())
    }

    /// Collects (row, col, val) triplets from the binned tuples, sorted.
    fn collect_tuples(t: &BinnedTuples<f64>) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::with_capacity(t.flop());
        for b in 0..t.nbins() {
            for e in t.bin(b) {
                let (r, c) = t.layout.unpack(b, e.key);
                out.push((r, c, e.val));
            }
        }
        out.sort_by(|x, y| x.partial_cmp(y).unwrap());
        out
    }

    /// Expected expanded tuples computed naively from the definition.
    fn expected_tuples(a: &Csr<f64>) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        for i in 0..a.nrows() {
            let (a_cols, a_vals) = a.row(i);
            for (&k, &aik) in a_cols.iter().zip(a_vals) {
                let (b_cols, b_vals) = a.row(k as usize);
                for (&j, &bkj) in b_cols.iter().zip(b_vals) {
                    out.push((i as u32, j, aik * bkj));
                }
            }
        }
        out.sort_by(|x, y| x.partial_cmp(y).unwrap());
        out
    }

    #[test]
    fn reserved_expansion_produces_exactly_the_outer_product_tuples() {
        let a = Coo::from_entries(
            4,
            4,
            vec![
                (0, 1, 2.0),
                (1, 2, 3.0),
                (1, 3, 0.5),
                (2, 0, 1.0),
                (3, 3, 4.0),
                (0, 0, 1.5),
            ],
        )
        .unwrap()
        .to_csr();
        let cfg = PbConfig::default().with_nbins(2);
        let (tuples, sym) = run(&a, &cfg);
        assert_eq!(tuples.flop() as u64, sym.flop);
        assert_eq!(collect_tuples(&tuples), expected_tuples(&a));
    }

    #[test]
    fn reserved_and_thread_local_produce_the_same_multiset() {
        let a = erdos_renyi_square(7, 6, 42);
        for mapping in [BinMapping::Range, BinMapping::Modulo, BinMapping::Balanced] {
            let reserved_cfg = PbConfig::default()
                .with_nbins(13)
                .with_bin_mapping(mapping)
                .with_expand(ExpandStrategy::Reserved);
            let safe_cfg = reserved_cfg
                .clone()
                .with_expand(ExpandStrategy::ThreadLocal);
            let (t1, _) = run(&a, &reserved_cfg);
            let (t2, _) = run(&a, &safe_cfg);
            assert_eq!(collect_tuples(&t1), collect_tuples(&t2));
            assert_eq!(collect_tuples(&t1), expected_tuples(&a));
        }
    }

    #[test]
    fn tuples_land_in_the_bin_of_their_row() {
        let a = rmat_square(7, 4, 3);
        let cfg = PbConfig::default().with_nbins(9);
        let (tuples, _) = run(&a, &cfg);
        for b in 0..tuples.nbins() {
            for e in tuples.bin(b) {
                let (r, _) = tuples.layout.unpack(b, e.key);
                assert_eq!(
                    tuples.layout.bin_of(r),
                    b,
                    "tuple for row {r} filed in bin {b}"
                );
            }
        }
    }

    #[test]
    fn bin_sizes_match_symbolic_counts() {
        let a = erdos_renyi_square(8, 4, 9);
        let cfg = PbConfig::default().with_nbins(32);
        let (tuples, sym) = run(&a, &cfg);
        for b in 0..tuples.nbins() {
            assert_eq!(tuples.bin(b).len() as u64, sym.bin_flop[b]);
        }
    }

    #[test]
    fn tiny_local_bins_force_many_flushes_and_still_work() {
        let a = erdos_renyi_square(7, 8, 10);
        // 16-byte local bins hold exactly one f64 tuple: every push flushes.
        let cfg = PbConfig::default().with_nbins(8).with_local_bin_bytes(16);
        let (tuples, sym) = run(&a, &cfg);
        assert_eq!(tuples.flop() as u64, sym.flop);
        assert_eq!(collect_tuples(&tuples), expected_tuples(&a));
    }

    #[test]
    fn local_bin_capacity_rounds_to_whole_cache_lines() {
        // Entry<f64> is 16 bytes -> 4 entries per 64-byte line.
        assert_eq!(std::mem::size_of::<Entry<f64>>(), 16);
        // 512 B = 8 lines = 32 entries, already aligned.
        assert_eq!(local_bin_capacity::<f64>(512), 32);
        // 13 entries' worth rounds down to 3 whole lines (12 entries).
        assert_eq!(local_bin_capacity::<f64>(13 * 16), 12);
        // Budgets under one line keep whatever fits, at least one tuple.
        assert_eq!(local_bin_capacity::<f64>(16), 1);
        assert_eq!(local_bin_capacity::<f64>(1), 1);
    }

    /// The Reserved strategy's concurrent `fetch_add` flushes must assemble
    /// the same multiset of tuples no matter how many real threads race.
    #[test]
    fn reserved_is_correct_under_real_thread_pools() {
        let a = rmat_square(8, 8, 21);
        let expected = expected_tuples(&a);
        for threads in [2usize, 4, 8] {
            let cfg = PbConfig::default()
                .with_nbins(16)
                // Tiny local bins maximise flush frequency and contention.
                .with_local_bin_bytes(64)
                .with_threads(threads);
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let (tuples, sym) = pool.install(|| run(&a, &cfg));
            assert_eq!(tuples.flop() as u64, sym.flop, "threads = {threads}");
            assert_eq!(collect_tuples(&tuples), expected, "threads = {threads}");
        }
    }

    #[test]
    fn flush_telemetry_accounts_for_every_tuple() {
        let a = erdos_renyi_square(8, 6, 19);
        // 4-tuple local bins (64 B) force frequent, mostly-full flushes.
        let cfg = PbConfig::default().with_nbins(8).with_local_bin_bytes(64);
        let (tuples, sym, stats) = run_with_stats(&a, &cfg);
        assert_eq!(stats.local_bin_capacity, 4);
        // Every expanded tuple was moved by exactly one flush.
        assert_eq!(stats.flushed_tuples, sym.flop);
        assert_eq!(stats.flushed_tuples as usize, tuples.flop());
        assert!(stats.flushes > 0);
        assert_eq!(stats.flush_fill_hist.iter().sum::<u64>(), stats.flushes);
        // With capacity 4 most flushes are capacity-triggered.
        assert!(stats.full_flush_fraction() > 0.5);
        assert!(stats.expand_segments >= 1);
        assert!(stats.min_segment_flushes <= stats.max_segment_flushes);
        // The mean flush can never exceed the capacity.
        assert!(stats.mean_flush_tuples() <= stats.local_bin_capacity as f64);

        // The ThreadLocal strategy has no flushes to report.
        let safe = PbConfig::default()
            .with_nbins(8)
            .with_expand(ExpandStrategy::ThreadLocal);
        let (_, _, stats) = run_with_stats(&a, &safe);
        assert_eq!(stats.flushes, 0);
        assert_eq!(stats.flushed_tuples, 0);
    }

    #[test]
    fn flush_prefetch_follows_the_isa_level_and_is_counted() {
        use crate::simd::Isa;
        let a = erdos_renyi_square(8, 6, 23);
        // Forced scalar: the pre-SIMD path, zero prefetched flushes.
        let scalar = PbConfig::default()
            .with_nbins(8)
            .with_local_bin_bytes(64)
            .with_simd(Isa::Scalar);
        let (_, _, stats) = run_with_stats(&a, &scalar);
        assert!(stats.flushes > 0);
        assert_eq!(stats.isa.prefetched_flushes, 0);

        // Any supported non-scalar level: every flush is prefetched.
        if let Some(&isa) = Isa::supported().iter().find(|&&i| i != Isa::Scalar) {
            let cfg = PbConfig::default()
                .with_nbins(8)
                .with_local_bin_bytes(64)
                .with_simd(isa);
            let (_, _, stats) = run_with_stats(&a, &cfg);
            assert!(stats.flushes > 0);
            assert_eq!(
                stats.isa.prefetched_flushes, stats.flushes,
                "{isa}: every reserved flush must be prefetched"
            );
        }
    }

    /// Domain-partitioned reservation must produce exactly the same tuple
    /// multiset, file every sub-segment's tuples in the right bin, and
    /// account every flush as local or remote.
    #[test]
    fn domain_partitioned_expansion_is_exact_and_counts_locality() {
        let a = rmat_square(8, 6, 33);
        let expected = expected_tuples(&a);
        for domains in [2usize, 3] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(4)
                .domains(domains)
                .build()
                .unwrap();
            let cfg = PbConfig::default()
                .with_nbins(8)
                .with_local_bin_bytes(64)
                .with_numa_domains(domains);
            let (tuples, sym, stats) = pool.install(|| run_with_stats(&a, &cfg));
            assert_eq!(sym.domains, domains);
            assert_eq!(tuples.flop() as u64, sym.flop);
            assert_eq!(collect_tuples(&tuples), expected, "domains = {domains}");
            for b in 0..tuples.nbins() {
                assert_eq!(tuples.bin(b).len() as u64, sym.bin_flop[b]);
                for e in tuples.bin(b) {
                    let (r, _) = tuples.layout.unpack(b, e.key);
                    assert_eq!(tuples.layout.bin_of(r), b);
                }
            }
            // Every flush is accounted exactly once as local or remote.
            assert_eq!(stats.local_flushes + stats.remote_flushes, stats.flushes);
            assert_eq!(
                stats.local_flushed_tuples + stats.remote_flushed_tuples,
                stats.flushed_tuples
            );
            assert_eq!(stats.flushed_tuples, sym.flop);
            assert!(stats.local_flushes > 0, "some flushes must be domain-local");
        }
    }

    /// On a single-thread pool the domain-partitioned schedule runs the
    /// column ranges in ascending order, so the buffer content — not just
    /// the multiset — matches the single-domain run exactly.
    #[test]
    fn forced_domains_on_one_thread_are_bufferwise_identical() {
        let a = rmat_square(7, 6, 5);
        let single_pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .domains(1)
            .build()
            .unwrap();
        let base = PbConfig::default().with_nbins(4);
        let (single, _) = single_pool.install(|| run(&a, &base.clone().with_numa_domains(1)));
        // resolve_domains clamps to the thread count, so force via a
        // 1-thread pool labelled with 2 domains... which clamps to 1; use
        // the config override plus a wider pool restricted to one claimant
        // instead: a 1-thread pool always runs blocks in order.
        let (two, sym) = single_pool.install(|| {
            let cfg = PbConfig {
                numa_domains: Some(2),
                ..base.clone()
            };
            run(&a, &cfg)
        });
        // With one thread the clamp collapses to a single domain: the
        // partitioned path must not even engage.
        assert_eq!(sym.domains, 1);
        let pairs = |t: &BinnedTuples<f64>| -> Vec<(u64, f64)> {
            t.entries.iter().map(|e| (e.key, e.val)).collect()
        };
        assert_eq!(pairs(&single), pairs(&two));
    }

    #[test]
    fn empty_matrix_expansion() {
        let a: Csr<f64> = Csr::empty(8, 8);
        let (tuples, _) = run(&a, &PbConfig::default());
        assert_eq!(tuples.flop(), 0);
        assert_eq!(tuples.nbins(), 1);
        assert_eq!(tuples.bin(0).len(), 0);
    }

    #[test]
    fn single_bin_configuration() {
        let a = erdos_renyi_square(6, 4, 2);
        let cfg = PbConfig::default().with_nbins(1);
        let (tuples, _) = run(&a, &cfg);
        assert_eq!(tuples.nbins(), 1);
        assert_eq!(collect_tuples(&tuples), expected_tuples(&a));
    }
}
