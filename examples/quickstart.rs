//! Quickstart: build a sparse matrix, square it with PB-SpGEMM, and compare
//! against the column SpGEMM baselines and the reference implementation.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use pb_spgemm_suite::prelude::*;

fn main() {
    // ---------------------------------------------------------------------
    // 1. Build a matrix.  Any of the pb-gen generators works; here we use a
    //    Graph500 R-MAT matrix with 2^12 rows and ~8 nonzeros per row.
    // ---------------------------------------------------------------------
    let a: Csr<f64> = rmat_square(12, 8, 42);
    let stats = MultiplyStats::compute(&a, &a);
    println!(
        "matrix: {} x {}, nnz = {}, avg degree = {:.2}",
        a.nrows(),
        a.ncols(),
        a.nnz(),
        a.avg_degree()
    );
    println!(
        "squaring it needs {} multiplications, produces {} nonzeros (cf = {:.2})\n",
        stats.flop, stats.nnz_c, stats.cf
    );

    // ---------------------------------------------------------------------
    // 2. Multiply with PB-SpGEMM.  A is passed column-wise (CSC), B row-wise
    //    (CSR); the default configuration auto-sizes the propagation bins.
    // ---------------------------------------------------------------------
    let engine = SpGemm::pb().config(PbConfig::default());
    let (c, profile) = engine.multiply_with_profile::<PlusTimes<f64>>(&a, &a);
    println!("PB-SpGEMM: {}", profile.summary());

    // ---------------------------------------------------------------------
    // 3. Compare against the column SpGEMM baselines.
    // ---------------------------------------------------------------------
    for baseline in Baseline::paper_set() {
        let t = std::time::Instant::now();
        let c_other = baseline.multiply(&a, &a);
        let dt = t.elapsed().as_secs_f64();
        let agree = reference::csr_approx_eq(&c, &c_other, 1e-9);
        println!(
            "{:>15}: {:7.1} ms, {:6.0} MFLOPS, agrees with PB-SpGEMM: {}",
            baseline.name(),
            dt * 1e3,
            stats.flop as f64 / dt / 1e6,
            agree
        );
    }

    // ---------------------------------------------------------------------
    // 4. Sanity-check against the slow reference implementation.
    // ---------------------------------------------------------------------
    let expected = reference::multiply_csr(&a, &a);
    assert!(reference::csr_approx_eq(&c, &expected, 1e-9));
    println!("\nresult verified against the reference implementation ✔");
}
