//! The unified SpGEMM engine: one blessed entry point for every
//! multiplication in the workspace.
//!
//! [`SpGemm`] is a builder-style handle that owns the *what* (which
//! algorithm: the planner's choice, PB-SpGEMM, a column baseline, or the
//! sequential reference) and the *how* (a [`PbConfig`], an optional shared
//! [`Workspace`], an optional [`ProfileSink`]).  Graph kernels, benchmarks,
//! the CLI and tests all multiply through it; the historical free functions
//! (`multiply`, `multiply_with`, `multiply_reusing`, …) were removed after
//! their one-release deprecation window — `docs/API.md` keeps the
//! old-to-new mapping for reference.
//!
//! ```
//! use pb_spgemm::SpGemm;
//! use pb_sparse::{Coo, Csr};
//!
//! let a: Csr<f64> = Coo::from_entries(4, 4, vec![
//!     (0, 1, 2.0), (1, 2, 3.0), (2, 3, 4.0), (3, 0, 5.0),
//! ]).unwrap().to_csr();
//!
//! // Forced kernel:
//! let c = SpGemm::pb().multiply(&a, &a);
//! assert_eq!(c.get(0, 2), Some(6.0));
//!
//! // Planned kernel (the telemetry-driven default of `PB_ALGORITHM=auto`):
//! let c = SpGemm::auto().multiply(&a, &a);
//! assert_eq!(c.get(0, 2), Some(6.0));
//! ```

use std::sync::{Arc, Mutex};
use std::time::Instant;

use pb_baseline::{Baseline, Kernel};
use pb_sparse::binfmt::BinaryScalar;
use pb_sparse::ops::mask_by_pattern;
use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::{reference, Csc, Csr, Scalar};

use crate::config::PbConfig;
use crate::error::PbError;
use crate::planner::{PlannedKernel, Planner, Signals};
use crate::profile::{PhaseTimings, SpGemmProfile};
use crate::tiled::{TiledConfig, TiledReport};
use crate::workspace::Workspace;

/// Environment variable selecting the default algorithm of
/// [`SpGemm::from_env`] / [`SpGemm::new`] (`auto`, `pb`, `heap`, `hash`,
/// `hashvec`, `spa`, `esc`, `outer-heap`, `reference`).
pub const ALGORITHM_ENV: &str = "PB_ALGORITHM";

/// Which implementation a [`SpGemm`] engine dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Let the [`Planner`] pick per multiply from the decision signals and
    /// the calibration table.
    Auto,
    /// The paper's propagation-blocking outer-product algorithm.
    Pb,
    /// A fixed column-SpGEMM baseline.
    Baseline(Baseline),
    /// The sequential Gustavson reference — the correctness oracle.
    Reference,
}

impl Algorithm {
    /// Parses an algorithm name as accepted by [`ALGORITHM_ENV`] and the
    /// CLI's `--algorithm` flag.
    pub fn parse(name: &str) -> Option<Algorithm> {
        match name.to_ascii_lowercase().as_str() {
            "auto" | "planner" => Some(Algorithm::Auto),
            "pb" | "pb-spgemm" | "outer" => Some(Algorithm::Pb),
            "heap" => Some(Algorithm::Baseline(Baseline::Heap)),
            "hash" => Some(Algorithm::Baseline(Baseline::Hash)),
            "hashvec" | "hash-vec" => Some(Algorithm::Baseline(Baseline::HashVec)),
            "spa" => Some(Algorithm::Baseline(Baseline::Spa)),
            "esc" | "esc-column" | "column-esc" => Some(Algorithm::Baseline(Baseline::EscColumn)),
            "outer-heap" | "outerheap" => Some(Algorithm::Baseline(Baseline::OuterHeap)),
            "reference" | "ref" => Some(Algorithm::Reference),
            _ => None,
        }
    }

    /// Reads [`ALGORITHM_ENV`]: `Ok(None)` when unset, `Ok(Some(..))` for a
    /// recognised name, and a typed [`PbError`] for anything else — the
    /// fallible face of the env knob, for resident services that must
    /// reject a bad environment instead of panicking.
    pub fn from_env() -> Result<Option<Algorithm>, PbError> {
        match std::env::var(ALGORITHM_ENV) {
            Err(_) => Ok(None),
            Ok(name) => match Algorithm::parse(&name) {
                Some(alg) => Ok(Some(alg)),
                None => Err(PbError::InvalidEnv {
                    var: ALGORITHM_ENV,
                    value: name,
                    expected: "auto|pb|heap|hash|hashvec|spa|esc|outer-heap|reference",
                }),
            },
        }
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Auto => "Auto",
            Algorithm::Pb => "PB-SpGEMM",
            Algorithm::Baseline(b) => b.name(),
            Algorithm::Reference => "Reference",
        }
    }
}

impl From<Baseline> for Algorithm {
    fn from(b: Baseline) -> Algorithm {
        Algorithm::Baseline(b)
    }
}

/// Captures the profile of the last multiply an engine performed, for
/// callers that use the plain `multiply` surface but still want telemetry
/// (iterating graph kernels, the CLI's `--profile` flag).  Attach with
/// [`SpGemm::profile`]; cheap (`SpGemmProfile` is `Copy`).
#[derive(Debug, Default)]
pub struct ProfileSink {
    latest: Mutex<Option<SpGemmProfile>>,
}

impl ProfileSink {
    /// Creates an empty sink, ready to attach to an engine.
    pub fn new() -> Arc<ProfileSink> {
        Arc::new(ProfileSink::default())
    }

    /// The profile of the most recent multiply, if one has run.
    pub fn latest(&self) -> Option<SpGemmProfile> {
        *self.latest.lock().unwrap()
    }

    fn record(&self, profile: SpGemmProfile) {
        *self.latest.lock().unwrap() = Some(profile);
    }
}

/// The unified SpGEMM engine — see the module docs for a tour.
///
/// Cheap to clone ([`PbConfig`] is scalars plus optional shared `Arc`s, the
/// planner and profile sink are shared handles); equality compares the
/// configuration and handle *identity* (like [`PbConfig`]'s own
/// `PartialEq`).
#[derive(Debug, Clone)]
pub struct SpGemm {
    algorithm: Algorithm,
    config: PbConfig,
    planner: Option<Arc<Planner>>,
    profile_sink: Option<Arc<ProfileSink>>,
}

impl PartialEq for SpGemm {
    fn eq(&self, other: &Self) -> bool {
        self.algorithm == other.algorithm
            && self.config == other.config
            && match (&self.planner, &other.planner) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                (None, None) => true,
                _ => false,
            }
            && match (&self.profile_sink, &other.profile_sink) {
                (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                (None, None) => true,
                _ => false,
            }
    }
}

impl Default for SpGemm {
    /// [`SpGemm::from_env`]: honours `PB_ALGORITHM`, PB-SpGEMM otherwise.
    fn default() -> Self {
        SpGemm::from_env()
    }
}

impl SpGemm {
    fn with_algorithm(algorithm: Algorithm) -> Self {
        SpGemm {
            algorithm,
            config: PbConfig::default(),
            planner: None,
            profile_sink: None,
        }
        .ensure_planner()
    }

    /// The environment-dependent default: the algorithm named by
    /// `PB_ALGORITHM` when set (panicking on an unrecognised name — a
    /// misspelt CI mode must fail loudly, not silently run PB), PB-SpGEMM
    /// otherwise.  Resident services use [`SpGemm::try_from_env`] instead.
    pub fn from_env() -> Self {
        SpGemm::try_from_env().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The fallible face of [`SpGemm::from_env`]: an unrecognised
    /// `PB_ALGORITHM` is a typed [`PbError`] the caller can map to a
    /// refusal (a service's error response, a CLI exit code) instead of a
    /// process abort.
    pub fn try_from_env() -> Result<Self, PbError> {
        Ok(match Algorithm::from_env()? {
            Some(alg) => SpGemm::with_algorithm(alg),
            None => SpGemm::pb(),
        })
    }

    /// Alias for [`SpGemm::from_env`] — the constructor application code
    /// should reach for first.
    pub fn new() -> Self {
        SpGemm::from_env()
    }

    /// PB-SpGEMM with its default configuration.
    pub fn pb() -> Self {
        SpGemm::with_algorithm(Algorithm::Pb)
    }

    /// Telemetry-driven dispatch: a fresh [`Planner`] (preloaded from
    /// `PB_PLANNER_CALIBRATION` when set) picks the kernel per multiply.
    pub fn auto() -> Self {
        SpGemm::with_algorithm(Algorithm::Auto)
    }

    /// A fixed column-SpGEMM baseline.
    pub fn baseline(baseline: Baseline) -> Self {
        SpGemm::with_algorithm(Algorithm::Baseline(baseline))
    }

    /// The sequential Gustavson reference implementation.
    pub fn reference() -> Self {
        SpGemm::with_algorithm(Algorithm::Reference)
    }

    /// PB-SpGEMM with a fresh persistent [`Workspace`] attached: every
    /// multiply reuses the same expand buffer, sort scratch and staging
    /// vectors.
    pub fn with_workspace() -> Self {
        SpGemm::pb().workspace(Arc::new(Workspace::new()))
    }

    /// A representative set of engines for application-level sweeps:
    /// PB-SpGEMM plus the three baselines the paper plots.
    pub fn paper_set() -> Vec<SpGemm> {
        let mut engines = vec![SpGemm::pb()];
        engines.extend(Baseline::paper_set().iter().map(|&b| SpGemm::baseline(b)));
        engines
    }

    /// Sets the algorithm (creating a planner if `Auto` needs one).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self.ensure_planner()
    }

    /// Replaces the PB configuration (bin mapping, thread count, NUMA
    /// domains, autotuner, workspace, …).
    pub fn config(mut self, config: PbConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a shared [`Workspace`] so repeated multiplies recycle their
    /// working memory.
    pub fn workspace(mut self, workspace: Arc<Workspace>) -> Self {
        self.config = self.config.with_workspace(workspace);
        self
    }

    /// Runs every multiply on a dedicated pool of `threads` workers.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config = self.config.with_threads(threads);
        self
    }

    /// Attaches a [`ProfileSink`] recording the profile of every multiply.
    pub fn profile(mut self, sink: Arc<ProfileSink>) -> Self {
        self.profile_sink = Some(sink);
        self
    }

    /// Shares a [`Planner`] (and everything it has learned) with this
    /// engine; only consulted when the algorithm is [`Algorithm::Auto`].
    pub fn planner(mut self, planner: Arc<Planner>) -> Self {
        self.planner = Some(planner);
        self
    }

    fn ensure_planner(mut self) -> Self {
        if self.algorithm == Algorithm::Auto && self.planner.is_none() {
            self.planner = Some(Arc::new(Planner::from_env()));
        }
        self
    }

    /// Attaches a fresh [`Workspace`] to a PB-capable engine (PB or Auto —
    /// the planner may pick PB) that does not already carry one; baselines
    /// and the reference engine pass through untouched.  Iterating kernels
    /// call this once before their loop.
    pub fn with_iteration_workspace(self) -> Self {
        match self.algorithm {
            Algorithm::Pb | Algorithm::Auto if self.config.workspace().is_none() => {
                let ws = Arc::new(Workspace::new());
                self.workspace(ws)
            }
            _ => self,
        }
    }

    /// Which algorithm this engine dispatches to.
    pub fn kind(&self) -> Algorithm {
        self.algorithm
    }

    /// The engine's PB configuration.
    pub fn pb_config(&self) -> &PbConfig {
        &self.config
    }

    /// This engine's shared workspace, when it carries one.
    pub fn workspace_handle(&self) -> Option<&Arc<Workspace>> {
        self.config.workspace()
    }

    /// The engine's planner, when the algorithm is [`Algorithm::Auto`].
    pub fn planner_handle(&self) -> Option<&Arc<Planner>> {
        self.planner.as_ref()
    }

    /// Human-readable name used in reports.
    pub fn name(&self) -> &'static str {
        self.algorithm.name()
    }

    /// Starts a masked multiply: the product is kept only at the stored
    /// coordinates of `mask`.  The PB kernel filters the binned tuples
    /// in-pipeline; other kernels multiply and filter
    /// (`mask_by_pattern`-style), so every algorithm yields the same masked
    /// product.
    pub fn mask<'a, M: Scalar>(&'a self, mask: &'a Csr<M>) -> Masked<'a, M> {
        Masked { engine: self, mask }
    }

    /// Computes `A·B` under an arbitrary semiring with this engine,
    /// returning the per-phase profile.
    ///
    /// Operands are CSR; the PB kernel converts `A` to CSC internally (its
    /// outer-product formulation needs column access) and that conversion
    /// is charged to the profile of a planned run.  Non-PB kernels report
    /// their whole runtime as the `expand` phase (they have no phase
    /// breakdown); a planned run additionally stamps
    /// [`planned_algorithm`](crate::PhaseStats::planned_algorithm) and the
    /// decision signals into the telemetry.
    pub fn multiply_with_profile<S: Semiring>(
        &self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
    ) -> (Csr<S::Elem>, SpGemmProfile)
    where
        S::Elem: Default,
    {
        let _span = crate::trace::span(crate::trace::SpanName::EngineMultiply);
        let (c, profile) = match &self.algorithm {
            Algorithm::Pb => crate::pb_multiply_with_profile::<S>(&a.to_csc(), b, &self.config),
            Algorithm::Baseline(baseline) => {
                let t = Instant::now();
                let c = baseline.multiply_with::<S>(a, b);
                let profile = synthetic_profile::<S>(a, b, &c, t.elapsed().as_secs_f64());
                (c, profile)
            }
            Algorithm::Reference => {
                let t = Instant::now();
                let c = reference::multiply_csr_with::<S>(a, b);
                let profile = synthetic_profile::<S>(a, b, &c, t.elapsed().as_secs_f64());
                (c, profile)
            }
            Algorithm::Auto => {
                let planner = self
                    .planner
                    .as_ref()
                    .expect("Auto engine carries a planner");
                let signals = Signals::measure(a, b, &self.config);
                let kernel = planner.decide(&signals);
                let t = Instant::now();
                let (c, mut profile) = match kernel.baseline() {
                    None => crate::pb_multiply_with_profile::<S>(&a.to_csc(), b, &self.config),
                    Some(baseline) => {
                        let c = baseline.multiply_with::<S>(a, b);
                        let p = synthetic_profile::<S>(a, b, &c, t.elapsed().as_secs_f64());
                        (c, p)
                    }
                };
                planner.observe(kernel, &signals, t.elapsed().as_secs_f64());
                stamp_plan(&mut profile, kernel, &signals);
                (c, profile)
            }
        };
        if let Some(sink) = &self.profile_sink {
            sink.record(profile);
        }
        (c, profile)
    }

    /// Computes `A·B` under an arbitrary semiring.
    pub fn multiply_with<S: Semiring>(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
    where
        S::Elem: Default,
    {
        self.multiply_with_profile::<S>(a, b).0
    }

    /// Computes `A·B` with ordinary `+`/`×` over a numeric type.
    pub fn multiply<T: Numeric + Default>(&self, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
        self.multiply_with::<PlusTimes<T>>(a, b)
    }

    /// The CSC fast path: `A` already in the PB kernel's native column
    /// layout, profile returned.
    ///
    /// A PB or Auto engine runs the PB pipeline directly — planning is
    /// skipped (this entry exists precisely because the caller committed to
    /// PB's layout), so the profile reports
    /// [`PlannedKernel::Unplanned`](crate::PlannedKernel).  A forced
    /// baseline or reference engine transposes `A` back to CSR first.
    pub fn multiply_csc_with_profile<S: Semiring>(
        &self,
        a: &Csc<S::Elem>,
        b: &Csr<S::Elem>,
    ) -> (Csr<S::Elem>, SpGemmProfile)
    where
        S::Elem: Default,
    {
        let _span = crate::trace::span(crate::trace::SpanName::EngineMultiplyCsc);
        let (c, profile) = match &self.algorithm {
            Algorithm::Pb | Algorithm::Auto => {
                crate::pb_multiply_with_profile::<S>(a, b, &self.config)
            }
            Algorithm::Baseline(baseline) => {
                let a_csr = a.to_csr();
                let t = Instant::now();
                let c = baseline.multiply_with::<S>(&a_csr, b);
                let profile = synthetic_profile::<S>(&a_csr, b, &c, t.elapsed().as_secs_f64());
                (c, profile)
            }
            Algorithm::Reference => {
                let a_csr = a.to_csr();
                let t = Instant::now();
                let c = reference::multiply_csr_with::<S>(&a_csr, b);
                let profile = synthetic_profile::<S>(&a_csr, b, &c, t.elapsed().as_secs_f64());
                (c, profile)
            }
        };
        if let Some(sink) = &self.profile_sink {
            sink.record(profile);
        }
        (c, profile)
    }

    /// The CSC fast path under an arbitrary semiring.
    pub fn multiply_csc_with<S: Semiring>(&self, a: &Csc<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
    where
        S::Elem: Default,
    {
        self.multiply_csc_with_profile::<S>(a, b).0
    }

    /// The CSC fast path with ordinary `+`/`×` over a numeric type.
    pub fn multiply_csc<T: Numeric + Default>(&self, a: &Csc<T>, b: &Csr<T>) -> Csr<T> {
        self.multiply_csc_with::<PlusTimes<T>>(a, b)
    }

    /// Computes `A·B` out of core under an arbitrary semiring: operands
    /// are cut into a flop-balanced tile grid, every tile pair runs
    /// through this engine, partial products merge via a second
    /// propagation-blocking pass, and tiles spill to a memory-mapped
    /// scratch file once `cfg`'s byte budget is exceeded (see
    /// [`crate::tiled`]).  Returns the product and the run's
    /// [`TiledReport`].
    pub fn multiply_tiled_with<S: Semiring>(
        &self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        cfg: &TiledConfig,
    ) -> Result<(Csr<S::Elem>, TiledReport), PbError>
    where
        S::Elem: Default + BinaryScalar,
    {
        crate::tiled::multiply_tiled_impl::<S, S::Elem>(self, a, b, None, cfg)
    }

    /// Computes `A·B` out of core with ordinary `+`/`×` over a numeric
    /// type (see [`multiply_tiled_with`](Self::multiply_tiled_with)).
    pub fn multiply_tiled<T: Numeric + Default + BinaryScalar>(
        &self,
        a: &Csr<T>,
        b: &Csr<T>,
        cfg: &TiledConfig,
    ) -> Result<(Csr<T>, TiledReport), PbError> {
        self.multiply_tiled_with::<PlusTimes<T>>(a, b, cfg)
    }
}

impl Kernel for SpGemm {
    fn kernel_name(&self) -> &'static str {
        self.name()
    }

    fn multiply_with<S: Semiring>(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
    where
        S::Elem: Default,
    {
        SpGemm::multiply_with::<S>(self, a, b)
    }
}

/// A masked multiply in flight: built by [`SpGemm::mask`], executes on the
/// borrowed engine with the borrowed mask.
#[derive(Debug, Clone, Copy)]
pub struct Masked<'a, M: Scalar> {
    engine: &'a SpGemm,
    mask: &'a Csr<M>,
}

impl<M: Scalar> Masked<'_, M> {
    /// Computes `(A·B) ∘ pattern(mask)` under an arbitrary semiring.
    pub fn multiply_with<S: Semiring>(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
    where
        S::Elem: Default,
    {
        match &self.engine.algorithm {
            Algorithm::Pb => crate::masked::pb_multiply_masked_with::<S, M>(
                &a.to_csc(),
                b,
                self.mask,
                &self.engine.config,
            ),
            Algorithm::Baseline(baseline) => {
                mask_by_pattern(&baseline.multiply_with::<S>(a, b), self.mask)
            }
            Algorithm::Reference => {
                mask_by_pattern(&reference::multiply_csr_with::<S>(a, b), self.mask)
            }
            Algorithm::Auto => {
                let planner = self
                    .engine
                    .planner
                    .as_ref()
                    .expect("Auto engine carries a planner");
                let signals = Signals::measure(a, b, &self.engine.config);
                let kernel = planner.decide(&signals);
                let t = Instant::now();
                let c = match kernel.baseline() {
                    None => crate::masked::pb_multiply_masked_with::<S, M>(
                        &a.to_csc(),
                        b,
                        self.mask,
                        &self.engine.config,
                    ),
                    Some(baseline) => {
                        mask_by_pattern(&baseline.multiply_with::<S>(a, b), self.mask)
                    }
                };
                planner.observe(kernel, &signals, t.elapsed().as_secs_f64());
                c
            }
        }
    }

    /// Computes `(A·B) ∘ pattern(mask)` with ordinary `+`/`×`.
    pub fn multiply<T: Numeric + Default>(&self, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
        self.multiply_with::<PlusTimes<T>>(a, b)
    }

    /// The masked CSC fast path (PB-native masking; a forced baseline or
    /// reference engine transposes and post-filters).
    pub fn multiply_csc_with<S: Semiring>(&self, a: &Csc<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
    where
        S::Elem: Default,
    {
        match &self.engine.algorithm {
            Algorithm::Pb | Algorithm::Auto => {
                crate::masked::pb_multiply_masked_with::<S, M>(a, b, self.mask, &self.engine.config)
            }
            Algorithm::Baseline(baseline) => {
                mask_by_pattern(&baseline.multiply_with::<S>(&a.to_csr(), b), self.mask)
            }
            Algorithm::Reference => mask_by_pattern(
                &reference::multiply_csr_with::<S>(&a.to_csr(), b),
                self.mask,
            ),
        }
    }

    /// The masked CSC fast path with ordinary `+`/`×`.
    pub fn multiply_csc<T: Numeric + Default>(&self, a: &Csc<T>, b: &Csr<T>) -> Csr<T> {
        self.multiply_csc_with::<PlusTimes<T>>(a, b)
    }

    /// Computes `(A·B) ∘ pattern(mask)` out of core: the mask is cut
    /// along the same output-tile boundaries and applied per accumulated
    /// tile, which is equivalent to masking the assembled product.
    pub fn multiply_tiled_with<S: Semiring>(
        &self,
        a: &Csr<S::Elem>,
        b: &Csr<S::Elem>,
        cfg: &TiledConfig,
    ) -> Result<(Csr<S::Elem>, TiledReport), PbError>
    where
        S::Elem: Default + BinaryScalar,
    {
        crate::tiled::multiply_tiled_impl::<S, M>(self.engine, a, b, Some(self.mask), cfg)
    }

    /// The masked out-of-core multiply with ordinary `+`/`×`.
    pub fn multiply_tiled<T: Numeric + Default + BinaryScalar>(
        &self,
        a: &Csr<T>,
        b: &Csr<T>,
        cfg: &TiledConfig,
    ) -> Result<(Csr<T>, TiledReport), PbError> {
        self.multiply_tiled_with::<PlusTimes<T>>(a, b, cfg)
    }
}

/// Profile for a kernel without a phase breakdown: the whole runtime is
/// reported as the expand phase, the size facts are exact.
fn synthetic_profile<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    c: &Csr<S::Elem>,
    seconds: f64,
) -> SpGemmProfile {
    SpGemmProfile {
        timings: PhaseTimings {
            expand: std::time::Duration::from_secs_f64(seconds),
            ..PhaseTimings::default()
        },
        flop: pb_sparse::stats::flop_csr(a, b),
        nnz_a: a.nnz(),
        nnz_b: b.nnz(),
        nnz_c: c.nnz(),
        nbins: 1,
        key_bytes: 0,
        tuple_bytes: crate::bins::BinnedTuples::<S::Elem>::tuple_bytes(),
        coo_bytes: pb_sparse::stats::bytes_per_tuple::<S::Elem>(),
        stats: crate::profile::PhaseStats::default(),
    }
}

fn stamp_plan(profile: &mut SpGemmProfile, kernel: PlannedKernel, signals: &Signals) {
    profile.stats.planned_algorithm = kernel;
    profile.stats.planned_cf_estimate = signals.cf_estimate;
    profile.stats.planned_row_skew = signals.row_skew;
    profile.stats.planned_bin_skew = signals.bin_skew;
    profile.stats.planned_flop_per_nnz = signals.flop_per_nnz;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::{erdos_renyi_square, rmat_square};
    use pb_sparse::reference::csr_approx_eq;
    use pb_sparse::semiring::OrAnd;

    #[test]
    fn every_engine_computes_the_same_product() {
        let a = rmat_square(7, 5, 3);
        let expected = reference::multiply_csr(&a, &a);
        for engine in SpGemm::paper_set() {
            let c = engine.multiply(&a, &a);
            assert!(
                csr_approx_eq(&c, &expected, 1e-9),
                "{} disagrees",
                engine.name()
            );
        }
        for engine in [SpGemm::reference(), SpGemm::auto()] {
            let c = engine.multiply(&a, &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9), "{}", engine.name());
        }
    }

    #[test]
    fn auto_engine_records_its_decision_in_the_profile() {
        let a = erdos_renyi_square(8, 6, 7);
        let sink = ProfileSink::new();
        let engine = SpGemm::auto().profile(Arc::clone(&sink));
        let expected = reference::multiply_csr(&a, &a);
        let c = engine.multiply(&a, &a);
        assert!(csr_approx_eq(&c, &expected, 1e-9));
        let profile = sink.latest().expect("sink captured the multiply");
        let stats = profile.stats;
        assert_ne!(stats.planned_algorithm, PlannedKernel::Unplanned);
        assert!(stats.planned_cf_estimate >= 1.0);
        assert!(stats.planned_row_skew > 0.0);
        assert!(stats.planned_flop_per_nnz > 0.0);
        let planner = engine.planner_handle().unwrap();
        assert_eq!(planner.decisions(), 1);
        assert_eq!(planner.observations(), 1);
        // A forced engine reports Unplanned.
        let (_, p) = SpGemm::pb().multiply_with_profile::<PlusTimes<f64>>(&a, &a);
        assert_eq!(p.stats.planned_algorithm, PlannedKernel::Unplanned);
    }

    #[test]
    fn forced_baseline_profile_reports_exact_sizes_and_elapsed_time() {
        let a = erdos_renyi_square(7, 4, 9);
        let (c, p) =
            SpGemm::baseline(Baseline::Hash).multiply_with_profile::<PlusTimes<f64>>(&a, &a);
        assert_eq!(p.nnz_c, c.nnz());
        assert_eq!(p.flop, pb_sparse::stats::flop_csr(&a, &a));
        assert!(p.timings.total() > std::time::Duration::ZERO);
        assert_eq!(p.timings.total(), p.timings.expand);
        assert!(p.gflops() > 0.0);
    }

    #[test]
    fn csc_fast_path_matches_the_csr_entry_for_every_algorithm() {
        let a = rmat_square(7, 6, 5);
        let a_csc = a.to_csc();
        for engine in [
            SpGemm::pb(),
            SpGemm::auto(),
            SpGemm::baseline(Baseline::Heap),
            SpGemm::reference(),
        ] {
            let via_csc = engine.multiply_csc(&a_csc, &a);
            let via_csr = engine.multiply(&a, &a);
            assert!(
                csr_approx_eq(&via_csc, &via_csr, 1e-12),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn masked_products_agree_across_all_engines() {
        let a = rmat_square(7, 6, 11);
        let expected = mask_by_pattern(&reference::multiply_csr(&a, &a), &a);
        for engine in [
            SpGemm::pb(),
            SpGemm::auto(),
            SpGemm::baseline(Baseline::Hash),
            SpGemm::baseline(Baseline::Spa),
            SpGemm::reference(),
        ] {
            let c = engine.mask(&a).multiply(&a, &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9), "{}", engine.name());
            let c = engine.mask(&a).multiply_csc(&a.to_csc(), &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9), "csc {}", engine.name());
        }
    }

    #[test]
    fn workspace_engine_reuses_buffers_across_multiplies() {
        let a = rmat_square(7, 6, 17);
        let engine = SpGemm::with_workspace();
        let ws = engine
            .workspace_handle()
            .cloned()
            .expect("workspace attached");
        let expected = reference::multiply_csr(&a, &a);
        for _ in 0..3 {
            let c = engine.multiply(&a, &a);
            assert!(csr_approx_eq(&c, &expected, 1e-9));
        }
        assert!(ws.total_bytes_reused() > 0, "repeat multiplies must reuse");
        assert_eq!(ws.leases(), 3);
    }

    #[test]
    fn iteration_workspace_wraps_only_pb_capable_engines() {
        let wrapped = SpGemm::pb().with_iteration_workspace();
        assert!(wrapped.workspace_handle().is_some());
        let ws = wrapped.workspace_handle().cloned().unwrap();
        let again = wrapped.with_iteration_workspace();
        assert!(Arc::ptr_eq(again.workspace_handle().unwrap(), &ws));
        // Auto may choose PB, so it gains one too...
        assert!(SpGemm::auto()
            .with_iteration_workspace()
            .workspace_handle()
            .is_some());
        // ...while pure column kernels and the reference never do.
        let baseline = SpGemm::baseline(Baseline::Hash).with_iteration_workspace();
        assert!(baseline.workspace_handle().is_none());
        assert!(SpGemm::reference()
            .with_iteration_workspace()
            .workspace_handle()
            .is_none());
    }

    #[test]
    fn engines_sharing_a_planner_pool_their_observations() {
        let planner = Arc::new(Planner::new());
        let a = erdos_renyi_square(7, 4, 21);
        let e1 = SpGemm::auto().planner(Arc::clone(&planner));
        let e2 = SpGemm::auto().planner(Arc::clone(&planner));
        let _ = e1.multiply(&a, &a);
        let _ = e2.multiply(&a, &a);
        assert_eq!(planner.observations(), 2);
        // Identical inputs through a shared planner decide identically.
        let s = Signals::measure(&a, &a, &PbConfig::default());
        assert_eq!(planner.decide(&s), planner.decide(&s));
    }

    #[test]
    fn semiring_products_agree_across_engines() {
        let a = rmat_square(6, 4, 9).map_values(|_| true);
        let expected = reference::multiply_csr_with::<OrAnd>(&a, &a);
        for engine in [
            SpGemm::pb(),
            SpGemm::auto(),
            SpGemm::baseline(Baseline::Heap),
        ] {
            let c = engine.multiply_with::<OrAnd>(&a, &a);
            assert_eq!(c.rowptr(), expected.rowptr(), "{}", engine.name());
            assert_eq!(c.colidx(), expected.colidx(), "{}", engine.name());
        }
    }

    #[test]
    fn names_parsing_and_paper_set() {
        assert_eq!(SpGemm::pb().name(), "PB-SpGEMM");
        assert_eq!(SpGemm::auto().name(), "Auto");
        assert_eq!(SpGemm::baseline(Baseline::Hash).name(), "HashSpGEMM");
        assert_eq!(SpGemm::paper_set().len(), 4);
        assert_eq!(Algorithm::parse("auto"), Some(Algorithm::Auto));
        assert_eq!(Algorithm::parse("PB"), Some(Algorithm::Pb));
        assert_eq!(
            Algorithm::parse("hash-vec"),
            Some(Algorithm::Baseline(Baseline::HashVec))
        );
        assert_eq!(Algorithm::parse("reference"), Some(Algorithm::Reference));
        assert_eq!(Algorithm::parse("nonsense"), None);
        assert_eq!(
            Algorithm::from(Baseline::Spa),
            Algorithm::Baseline(Baseline::Spa)
        );
        // Whatever PB_ALGORITHM the test process runs under is one of the
        // recognised CI modes (or unset), so the fallible readers succeed.
        assert!(Algorithm::from_env().is_ok());
        assert!(SpGemm::try_from_env().is_ok());
        assert_eq!(SpGemm::try_from_env().unwrap(), SpGemm::from_env());
    }

    #[test]
    fn kernel_trait_dispatches_through_the_engine() {
        let a = erdos_renyi_square(6, 4, 2);
        let expected = reference::multiply_csr(&a, &a);
        let engine = SpGemm::pb();
        let c = Kernel::multiply(&engine, &a, &a);
        assert!(csr_approx_eq(&c, &expected, 1e-9));
        assert_eq!(engine.kernel_name(), "PB-SpGEMM");
    }
}
