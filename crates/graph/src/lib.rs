//! # pb-graph — graph analytics on top of PB-SpGEMM
//!
//! The paper motivates SpGEMM with a list of graph and data-analytics
//! workloads: triangle counting and clustering coefficients, multi-source
//! breadth-first search, Markov clustering, betweenness centrality, algebraic
//! multigrid and cycle detection.  This crate implements those kernels in
//! terms of the workspace's SpGEMM engines so they double as end-to-end,
//! application-level exercises of the public API.
//!
//! Every kernel takes a unified [`SpGemm`] engine, so the same application
//! code can run on PB-SpGEMM, on any of the column-SpGEMM baselines, or
//! under the telemetry-driven planner (`SpGemm::auto()`) — which is how the
//! application-level benchmarks compare them.
//!
//! The preferred entry points are the builders in [`builders`]
//! (`Mcl::new().engine(e).inflation(r).run(&m)` and friends); the original
//! free functions remain as thin wrappers over them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod amg;
pub mod apsp;
pub mod bc;
pub mod bfs;
pub mod builders;
pub mod cycles;
pub mod mcl;
pub mod triangles;

pub use amg::{aggregate_coarsening, coarsen, galerkin_product, AmgLevel};
pub use apsp::{apsp_minplus, APSP_DENSE_LIMIT};
pub use bc::betweenness_centrality;
pub use bfs::{multi_source_bfs, single_source_bfs, BfsResult};
pub use builders::{Apsp, Bc, Bfs, Mcl, Triangles};
pub use cycles::{count_closed_walks, has_cycle_of_length};
pub use mcl::{markov_cluster, MclConfig, MclResult};
pub use pb_spgemm::SpGemm;
pub use triangles::{clustering_coefficients, count_triangles, triangle_counts_per_vertex};
