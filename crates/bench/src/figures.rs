//! Shared implementations of the paper's performance figures, used both by
//! the standalone figure binaries and by the `figures` smoke bench.

use pb_spgemm::{PbConfig, Phase};
use serde::Serialize;

use crate::report::{fmt, Table};
use crate::runner::{measure, measure_pb_profile, Algorithm, Measurement};
use crate::workloads::{er_matrix, fig7_grid, rmat_matrix, standin_matrix, Workload};

/// The two random-matrix families of Figs. 7–10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum MatrixFamily {
    /// Erdős–Rényi matrices (Figs. 7 and 8).
    Er,
    /// Graph500 R-MAT matrices (Figs. 9 and 10).
    Rmat,
}

impl MatrixFamily {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            MatrixFamily::Er => "ER",
            MatrixFamily::Rmat => "RMAT",
        }
    }

    /// Builds the squaring workload for a scale / edge-factor point.
    pub fn workload(&self, scale: u32, edge_factor: u32, seed: u64) -> Workload {
        match self {
            MatrixFamily::Er => er_matrix(scale, edge_factor, seed),
            MatrixFamily::Rmat => rmat_matrix(scale, edge_factor, seed),
        }
    }
}

/// Output of one performance figure: the MFLOPS table (Fig. 7a/9a), the
/// PB-SpGEMM bandwidth table (Fig. 7b/9b) and the raw measurements.
#[derive(Debug)]
pub struct PerformanceFigure {
    /// MFLOPS of every algorithm on every workload.
    pub performance: Table,
    /// Sustained bandwidth of each PB-SpGEMM phase on every workload.
    pub bandwidth: Table,
    /// Raw measurements (for JSON dumps).
    pub measurements: Vec<Measurement>,
}

/// Figs. 7a/7b (ER) and 9a/9b (RMAT): performance and sustained bandwidth
/// across scales and edge factors.
pub fn performance_vs_scale(family: MatrixFamily, quick: bool, reps: usize) -> PerformanceFigure {
    let algorithms = Algorithm::paper_set();
    let mut performance = Table::new(
        format!(
            "{} matrices — achieved MFLOPS (higher is better)",
            family.name()
        ),
        &[
            "workload",
            "flop",
            "cf",
            "PB-SpGEMM",
            "HeapSpGEMM",
            "HashSpGEMM",
            "HashVecSpGEMM",
        ],
    );
    let mut bandwidth = Table::new(
        format!(
            "{} matrices — PB-SpGEMM sustained bandwidth (GB/s)",
            family.name()
        ),
        &["workload", "expand", "sort", "compress", "overall"],
    );
    let mut measurements = Vec::new();

    for (scale, ef) in fig7_grid(quick) {
        let w = family.workload(scale, ef, 1000 + scale as u64 * 31 + ef as u64);
        let mut row = vec![
            w.name.clone(),
            format!("{:.1}M", w.stats.flop as f64 / 1e6),
            fmt(w.stats.cf, 2),
        ];
        for algo in &algorithms {
            let m = measure(&w, algo, reps, None);
            row.push(fmt(m.mflops, 0));
            measurements.push(m);
        }
        performance.push_row(row);

        let p = measure_pb_profile(&w, &PbConfig::default());
        bandwidth.push_row(vec![
            w.name.clone(),
            fmt(p.phase_bandwidth_gbps(Phase::Expand), 2),
            fmt(p.phase_bandwidth_gbps(Phase::Sort), 2),
            fmt(p.phase_bandwidth_gbps(Phase::Compress), 2),
            fmt(p.overall_bandwidth_gbps(), 2),
        ]);
    }

    PerformanceFigure {
        performance,
        bandwidth,
        measurements,
    }
}

/// Fig. 11: squaring the Table VI matrices, sorted by ascending compression
/// factor.
pub fn real_matrices(fraction: f64, reps: usize) -> PerformanceFigure {
    let algorithms = Algorithm::paper_set();
    let mut workloads: Vec<Workload> = pb_gen::standin_names()
        .iter()
        .map(|name| standin_matrix(name, fraction, 77))
        .collect();
    workloads.sort_by(|a, b| a.stats.cf.partial_cmp(&b.stats.cf).unwrap());

    let mut performance = Table::new(
        "Real matrices (stand-ins, ascending cf) — achieved MFLOPS",
        &[
            "matrix",
            "cf",
            "PB-SpGEMM",
            "HeapSpGEMM",
            "HashSpGEMM",
            "HashVecSpGEMM",
            "winner",
        ],
    );
    let mut bandwidth = Table::new(
        "Real matrices — PB-SpGEMM sustained bandwidth (GB/s)",
        &["matrix", "expand", "sort", "compress", "overall"],
    );
    let mut measurements = Vec::new();

    for w in &workloads {
        let mut row = vec![w.name.clone(), fmt(w.stats.cf, 2)];
        let mut best: Option<(String, f64)> = None;
        for algo in &algorithms {
            let m = measure(w, algo, reps, None);
            row.push(fmt(m.mflops, 0));
            if best.as_ref().is_none_or(|(_, v)| m.mflops > *v) {
                best = Some((m.algorithm.clone(), m.mflops));
            }
            measurements.push(m);
        }
        row.push(best.map(|(n, _)| n).unwrap_or_default());
        performance.push_row(row);

        let p = measure_pb_profile(w, &PbConfig::default());
        bandwidth.push_row(vec![
            w.name.clone(),
            fmt(p.phase_bandwidth_gbps(Phase::Expand), 2),
            fmt(p.phase_bandwidth_gbps(Phase::Sort), 2),
            fmt(p.phase_bandwidth_gbps(Phase::Compress), 2),
            fmt(p.overall_bandwidth_gbps(), 2),
        ]);
    }

    PerformanceFigure {
        performance,
        bandwidth,
        measurements,
    }
}

/// Fig. 12: strong scaling of every algorithm over thread counts, on ER and
/// RMAT matrices of the same scale / edge factor.
pub fn scaling(quick: bool, reps: usize) -> (Table, Vec<Measurement>) {
    let (scale, ef) = if quick { (11, 8) } else { (14, 16) };
    // Sweep up to the real pool size (honours PB_RAYON_THREADS); each point
    // runs on a dedicated pool of exactly that many threads.
    let threads = crate::baseline::thread_sweep(rayon::current_num_threads());

    let algorithms = Algorithm::paper_set();
    let mut table = Table::new(
        format!("Strong scaling (scale {scale}, edge factor {ef}) — MFLOPS per thread count"),
        &[
            "family",
            "algorithm",
            "threads",
            "MFLOPS",
            "speedup vs 1 thread",
        ],
    );
    let mut measurements = Vec::new();

    for family in [MatrixFamily::Er, MatrixFamily::Rmat] {
        let w = family.workload(scale, ef, 4242);
        for algo in &algorithms {
            let mut base = None;
            for &t in &threads {
                let m = measure(&w, algo, reps, Some(t));
                let speedup = match base {
                    None => {
                        base = Some(m.seconds);
                        1.0
                    }
                    Some(b) => b / m.seconds,
                };
                table.push_row(vec![
                    family.name().to_string(),
                    m.algorithm.clone(),
                    t.to_string(),
                    fmt(m.mflops, 0),
                    fmt(speedup, 2),
                ]);
                measurements.push(m);
            }
        }
    }
    (table, measurements)
}

/// Fig. 13: per-phase scaling breakdown of PB-SpGEMM.
pub fn scaling_breakdown(quick: bool) -> Table {
    let (scale, ef) = if quick { (11, 8) } else { (14, 16) };
    let threads = crate::baseline::thread_sweep(rayon::current_num_threads());

    let mut table = Table::new(
        format!("PB-SpGEMM per-phase times (ms), scale {scale} edge factor {ef}"),
        &[
            "family", "threads", "symbolic", "expand", "sort", "compress", "assemble", "total",
        ],
    );
    for family in [MatrixFamily::Er, MatrixFamily::Rmat] {
        let w = family.workload(scale, ef, 999);
        for &t in &threads {
            let cfg = PbConfig::default().with_threads(t);
            let p = measure_pb_profile(&w, &cfg);
            let ms = |d: std::time::Duration| fmt(d.as_secs_f64() * 1e3, 2);
            table.push_row(vec![
                family.name().to_string(),
                t.to_string(),
                ms(p.timings.symbolic),
                ms(p.timings.expand),
                ms(p.timings.sort),
                ms(p.timings.compress),
                ms(p.timings.assemble),
                ms(p.timings.total()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_helpers() {
        assert_eq!(MatrixFamily::Er.name(), "ER");
        assert_eq!(MatrixFamily::Rmat.name(), "RMAT");
        let w = MatrixFamily::Rmat.workload(7, 4, 1);
        assert!(w.name.contains("RMAT"));
        assert_eq!(w.a.nrows(), 128);
    }
}
