//! Out-of-core tiled PB-SpGEMM vs the resident engine: on unit-valued
//! inputs every grid must reproduce the resident product bit-for-bit (the
//! tile accumulator's semiring adds commute exactly on small integers), a
//! starvation budget must spill to scratch while honouring the resident
//! bound, masked products must funnel through the same tiles, and the whole
//! pipeline must be deterministic under threads and NUMA domains.

use pb_spgemm_suite::gen::{erdos_renyi_square, rmat_square};
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::spgemm::{PbConfig, TiledConfig};

/// Strips a matrix to unit values so products are exact in f64.
fn unit_valued(a: &Csr<f64>) -> Csr<f64> {
    a.map_values(|_| 1.0)
}

/// Asserts two CSRs are bit-identical (structure and values).
fn assert_csr_exact(c: &Csr<f64>, expected: &Csr<f64>, context: &str) {
    assert_eq!(c.shape(), expected.shape(), "{context}: shape");
    assert_eq!(c.rowptr(), expected.rowptr(), "{context}: rowptr");
    assert_eq!(c.colidx(), expected.colidx(), "{context}: colidx");
    let exact = c
        .values()
        .iter()
        .zip(expected.values())
        .all(|(x, y)| x.to_bits() == y.to_bits());
    assert!(exact, "{context}: values differ in bits");
}

#[test]
fn tiled_is_bit_identical_to_resident_across_grids() {
    let a = unit_valued(&rmat_square(8, 8, 21));
    let b = unit_valued(&erdos_renyi_square(8, 6, 4));
    let engine = SpGemm::pb();
    let resident = engine.multiply(&a, &b);
    for (p, q, r) in [(1, 1, 1), (2, 2, 2), (4, 1, 1), (1, 4, 2), (3, 5, 3)] {
        let cfg = TiledConfig::default().with_grid(p, q, r);
        let (tiled, report) = engine
            .multiply_tiled(&a, &b, &cfg)
            .expect("tiled multiply succeeds");
        assert_csr_exact(&tiled, &resident, &format!("grid {p}x{q}x{r}"));
        assert!(report.tiles_processed >= 1);
        assert!(
            report.tiles_processed <= (p * q * r) as u64,
            "grid {p}x{q}x{r}: more tile multiplies than grid cells"
        );
        assert_eq!(report.grid, (p, q, r));
    }
}

#[test]
fn starvation_budget_spills_and_respects_the_resident_bound() {
    let a = unit_valued(&rmat_square(8, 8, 5));
    let engine = SpGemm::pb();
    let resident = engine.multiply(&a, &a);

    let scratch = std::env::temp_dir().join("pb_tiled_ooc_test");
    std::fs::create_dir_all(&scratch).unwrap();
    // 4 KiB cannot hold one tile of a scale-8 product: every insert evicts,
    // every reuse refetches from the scratch file.
    let cfg = TiledConfig::new(4 * 1024)
        .with_grid(4, 4, 4)
        .with_scratch_dir(&scratch);
    let (tiled, report) = engine.multiply_tiled(&a, &a, &cfg).unwrap();
    assert_csr_exact(&tiled, &resident, "starved 4x4x4");
    assert!(report.spill_bytes > 0, "{report:?}");
    assert!(report.spilled_tiles > 0, "{report:?}");
    assert!(report.spill_fetches > 0, "{report:?}");
    assert!(
        report.within_budget_slack(),
        "resident high water {} exceeds budget {} + one tile {}",
        report.resident_high_water,
        report.budget_bytes,
        report.max_tile_bytes
    );

    // The scratch file is unlinked once the multiply's store is dropped.
    let leftovers: Vec<_> = std::fs::read_dir(&scratch)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name())
        .collect();
    assert!(leftovers.is_empty(), "scratch not cleaned: {leftovers:?}");
}

#[test]
fn masked_tiled_matches_masked_resident() {
    let a = unit_valued(&rmat_square(7, 8, 9));
    let mask = unit_valued(&erdos_renyi_square(7, 10, 2));
    let engine = SpGemm::pb();
    let resident = engine.mask(&mask).multiply(&a, &a);
    for (p, q, r) in [(1, 1, 1), (2, 2, 2), (4, 1, 1)] {
        let cfg = TiledConfig::default().with_grid(p, q, r);
        let (tiled, _) = engine.mask(&mask).multiply_tiled(&a, &a, &cfg).unwrap();
        assert_csr_exact(&tiled, &resident, &format!("masked grid {p}x{q}x{r}"));
    }
}

#[test]
fn threads_and_numa_domains_do_not_change_a_single_bit() {
    let a = unit_valued(&erdos_renyi_square(8, 8, 17));
    let reference = SpGemm::pb().multiply(&a, &a);
    let cfg = TiledConfig::new(64 * 1024).with_grid(2, 3, 2);
    for (threads, domains) in [(1, 1), (2, 1), (4, 2)] {
        let engine = SpGemm::pb().config(
            PbConfig::default()
                .with_threads(threads)
                .with_numa_domains(domains),
        );
        let (tiled, report) = engine.multiply_tiled(&a, &a, &cfg).unwrap();
        assert_csr_exact(
            &tiled,
            &reference,
            &format!("threads={threads} domains={domains}"),
        );
        assert!(report.within_budget_slack());
    }
}

#[test]
fn determinism_hammer_repeats_are_identical() {
    // The same starved multiply, repeated: spill/fetch scheduling must
    // never leak into the numerics, and the report's grid and tile counts
    // are a function of the inputs alone.
    let a = unit_valued(&rmat_square(7, 6, 33));
    let engine = SpGemm::pb().config(PbConfig::default().with_threads(4));
    let cfg = TiledConfig::new(8 * 1024).with_grid(3, 2, 3);
    let (first, first_report) = engine.multiply_tiled(&a, &a, &cfg).unwrap();
    for round in 0..5 {
        let (again, report) = engine.multiply_tiled(&a, &a, &cfg).unwrap();
        assert_csr_exact(&again, &first, &format!("round {round}"));
        assert_eq!(report.grid, first_report.grid);
        assert_eq!(report.tiles_processed, first_report.tiles_processed);
        assert_eq!(report.accumulated_tuples, first_report.accumulated_tuples);
    }
}

#[test]
fn derived_grids_scale_with_the_budget() {
    // With no explicit grid the driver derives one from the operand bytes:
    // a generous budget runs resident in one tile, a tight one tiles up.
    let a = unit_valued(&erdos_renyi_square(9, 8, 3));
    let engine = SpGemm::pb();
    let resident = engine.multiply(&a, &a);

    let (one_tile, roomy) = engine
        .multiply_tiled(&a, &a, &TiledConfig::default())
        .unwrap();
    assert_eq!(roomy.grid, (1, 1, 1), "256 MiB budget should not tile");
    assert_csr_exact(&one_tile, &resident, "roomy budget");

    let (tiled, tight) = engine
        .multiply_tiled(&a, &a, &TiledConfig::new(64 * 1024))
        .unwrap();
    assert!(tight.grid.0 > 1, "64 KiB budget must tile: {tight:?}");
    assert_csr_exact(&tiled, &resident, "tight budget");
}
