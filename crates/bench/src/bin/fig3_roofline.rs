//! Fig. 3: the Roofline model for SpGEMM on this machine.
//!
//! Measures the STREAM bandwidth `β`, then prints the attainable-performance
//! diagonal `β·AI` together with the three AI markers for ER matrices
//! (cf = 1): the column-SpGEMM lower bound (Eq. 3), the outer-product lower
//! bound (Eq. 4) and the overall upper bound (Eq. 1).

use pb_bench::{fmt, print_table, quick_mode, write_json, Table};
use pb_model::roofline::RooflineModel;
use pb_model::stream::{run, StreamConfig};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let stream_cfg = if quick_mode() {
        StreamConfig::quick()
    } else {
        StreamConfig::default()
    };
    let stream = run(&stream_cfg);
    let beta = stream.beta_gbps();
    let model = RooflineModel::new(beta);

    println!("measured STREAM Triad bandwidth beta = {beta:.2} GB/s\n");

    let mut curve_table = Table::new(
        "Fig. 3 — attainable performance vs arithmetic intensity (beta * AI)",
        &["AI (flop/byte)", "attainable GFLOPS"],
    );
    let curve = model.curve(1.0 / 128.0, 0.25, 9);
    for p in &curve {
        curve_table.push_row(vec![format!("1/{:.0}", 1.0 / p.ai), fmt(p.gflops, 3)]);
    }
    print_table(&curve_table);

    let mut marker_table = Table::new(
        "Fig. 3 — AI markers for ER matrices (cf = 1, b = 16 bytes)",
        &["bound", "AI", "attainable GFLOPS"],
    );
    let cf = 1.0;
    let rows = [
        (
            "Column SpGEMM lower bound (Eq. 3)",
            model.ai_column_lower_bound(cf),
        ),
        (
            "Outer SpGEMM lower bound (Eq. 4)",
            model.ai_outer_lower_bound(cf),
        ),
        ("SpGEMM upper bound (Eq. 1)", model.ai_upper_bound(cf)),
    ];
    for (name, ai) in rows {
        marker_table.push_row(vec![
            name.to_string(),
            format!("1/{:.0}", 1.0 / ai),
            fmt(model.attainable_gflops(ai), 3),
        ]);
    }
    print_table(&marker_table);

    write_json("fig3_roofline", &(beta, curve, model.markers(cf)));
    println!(
        "paper (50 GB/s Skylake socket): upper bound 3.13 GFLOPS, outer bound 0.625 GFLOPS; \
         the same ratios apply at beta = {beta:.1} GB/s."
    );
}
