//! Minimal stand-in for the [criterion] benchmark harness.
//!
//! The build environment has no network access to crates.io, so the real
//! criterion cannot be fetched. This shim supports the subset the
//! workspace's `harness = false` benches use — `criterion_group!`/
//! `criterion_main!`, `Criterion::benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId` and `Bencher::iter`
//! — and reports a simple mean wall-clock time per benchmark to stdout.
//! It performs no statistical analysis, produces no HTML reports, and
//! keeps iteration counts small so `cargo test`/`cargo bench` stay fast.
//!
//! [criterion]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Opaque identity function that hinders constant-folding, like
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id, rendered `function/parameter` like criterion's.
    pub fn new<F: std::fmt::Display, P: std::fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id consisting only of a parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` for the group's configured number of samples (one
    /// call per sample in the shim) and records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up call.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for API compatibility; the shim ignores throughput.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        report(&self.name, &id.id, &bencher);
        self
    }

    /// Runs one benchmark with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher, input);
        report(&self.name, &id.id, &bencher);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

fn report(group: &str, id: &str, bencher: &Bencher) {
    if bencher.iterations == 0 {
        println!("{group}/{id}: no samples");
        return;
    }
    let mean = bencher.total.as_secs_f64() / bencher.iterations as f64;
    println!(
        "{group}/{id}: mean {:.3} ms over {} samples",
        mean * 1e3,
        bencher.iterations
    );
}

/// Throughput declaration; accepted and ignored by the shim.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The shim's top-level harness state.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Parses criterion-style CLI arguments; the shim accepts and ignores
    /// them (cargo passes `--bench`/filters when running bench targets).
    pub fn configure_from_args(mut self) -> Self {
        self.default_sample_size = 10;
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        let mut bencher = Bencher {
            samples,
            total: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        report("bench", name, &bencher);
        self
    }

    /// Final summary hook; no-op in the shim.
    pub fn final_summary(&mut self) {}
}

/// Declares a group function that runs each target, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default().configure_from_args();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut calls = 0u32;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| calls += 1);
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }
}
