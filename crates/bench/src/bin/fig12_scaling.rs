//! Fig. 12: strong scaling of PB-SpGEMM and the column baselines on ER and
//! R-MAT matrices.

use pb_bench::figures::scaling;
use pb_bench::{print_table, quick_mode, repetitions, write_json};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let (table, measurements) = scaling(quick_mode(), repetitions());
    print_table(&table);
    write_json("fig12_scaling", &measurements);
    println!(
        "expected shape (paper Fig. 12): all algorithms scale within a socket; PB-SpGEMM leads \
         at every thread count, with weaker scaling on R-MAT because skewed rows unbalance the \
         bins."
    );
}
