//! Criterion micro-benchmarks of the in-bin sorting ablation: LSD radix vs
//! American-flag vs comparison sort, at the key widths produced by the
//! paper's key-compression optimisation (4-byte keys) and without it
//! (8-byte keys) — plus the SIMD dispatch ablation, pinning each radix
//! sorter to every ISA level the host supports so the vectorised histogram
//! and prefetched scatter show up as a per-level delta on the same data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pb_gen::Xoshiro256pp;
use pb_spgemm::sort::{sort_slice, sort_slice_with};
use pb_spgemm::{simd, Entry, SortAlgorithm};

fn make_entries(n: usize, key_bits: u32, seed: u64) -> Vec<Entry<f64>> {
    let mut rng = Xoshiro256pp::new(seed);
    (0..n)
        .map(|_| Entry {
            key: rng.next_u64() & ((1u64 << key_bits) - 1),
            val: rng.next_f64(),
        })
        .collect()
}

fn bench_sorters(c: &mut Criterion) {
    let mut group = c.benchmark_group("bin_sort");
    group.sample_size(20);
    // 16K tuples of 16 bytes = 256 KiB: the in-L2 bin size the paper targets.
    let n = 16 * 1024;
    for &(label, bits) in &[("packed_30bit_keys", 30u32), ("full_60bit_keys", 60u32)] {
        let data = make_entries(n, bits, bits as u64);
        let key_bytes = (bits as usize).div_ceil(8);
        for (name, algo) in [
            ("lsd_radix", SortAlgorithm::LsdRadix),
            ("american_flag", SortAlgorithm::AmericanFlag),
            ("comparison", SortAlgorithm::Comparison),
        ] {
            group.bench_with_input(BenchmarkId::new(name, label), &data, |bench, data| {
                bench.iter(|| {
                    let mut copy = data.clone();
                    sort_slice(&mut copy, key_bytes, algo);
                    black_box(copy.len())
                });
            });
        }
    }
    group.finish();
}

/// The SIMD ablation: the same L2-sized bin sorted by each radix algorithm
/// at every dispatch level the host supports (scalar is always in the set,
/// so the ISA delta is read directly off the group).
fn bench_isa_levels(c: &mut Criterion) {
    let mut group = c.benchmark_group("bin_sort_isa");
    group.sample_size(20);
    let n = 16 * 1024;
    let data = make_entries(n, 30, 7);
    let key_bytes = 4usize;
    for isa in simd::Isa::supported() {
        for (name, algo) in [
            ("lsd_radix", SortAlgorithm::LsdRadix),
            ("american_flag", SortAlgorithm::AmericanFlag),
        ] {
            group.bench_with_input(BenchmarkId::new(name, isa.name()), &data, |bench, data| {
                bench.iter(|| {
                    let mut copy = data.clone();
                    sort_slice_with(&mut copy, key_bytes, algo, isa);
                    black_box(copy.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sorters, bench_isa_levels);
criterion_main!(benches);
