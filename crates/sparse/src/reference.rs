//! Slow, obviously-correct reference kernels.
//!
//! Every SpGEMM implementation in the workspace (the PB-SpGEMM core and all
//! column baselines) is differentially tested against these routines.  They
//! favour clarity over speed: a `BTreeMap` accumulator per output row keeps
//! results deterministic and sorted.

use std::collections::BTreeMap;

use crate::csr::Csr;
use crate::dense::Dense;
use crate::semiring::{Numeric, PlusTimes, Semiring};
use crate::{Index, Scalar};

/// Reference SpGEMM: `C = A ⊗ B` with both operands and the result in CSR,
/// using a `BTreeMap` accumulator per row (row-wise Gustavson).
///
/// # Panics
/// Panics if `a.ncols() != b.nrows()`.
pub fn multiply_csr_with<S>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
where
    S: Semiring,
{
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "reference multiply shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let mut rowptr = Vec::with_capacity(a.nrows() + 1);
    rowptr.push(0usize);
    let mut colidx: Vec<Index> = Vec::new();
    let mut values: Vec<S::Elem> = Vec::new();
    let mut acc: BTreeMap<Index, S::Elem> = BTreeMap::new();
    for i in 0..a.nrows() {
        acc.clear();
        let (a_cols, a_vals) = a.row(i);
        for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                let product = S::mul(a_ik, b_kj);
                acc.entry(j)
                    .and_modify(|cur| *cur = S::add(*cur, product))
                    .or_insert(product);
            }
        }
        for (&j, &v) in &acc {
            colidx.push(j);
            values.push(v);
        }
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(a.nrows(), b.ncols(), rowptr, colidx, values)
}

/// Reference SpGEMM with ordinary `+`/`×`.
pub fn multiply_csr<T: Numeric>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    multiply_csr_with::<PlusTimes<T>>(a, b)
}

/// Reference SpGEMM computed through dense matrices.  Only suitable for tiny
/// matrices; used to cross-check the sparse reference itself.
pub fn multiply_dense_with<S>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Dense<S::Elem>
where
    S: Semiring,
{
    let da = csr_to_dense_with_zero::<S>(a);
    let db = csr_to_dense_with_zero::<S>(b);
    da.multiply_with::<S>(&db)
}

fn csr_to_dense_with_zero<S: Semiring>(m: &Csr<S::Elem>) -> Dense<S::Elem> {
    let mut d = Dense::filled(m.nrows(), m.ncols(), S::zero());
    for (r, c, v) in m.iter() {
        d[(r as usize, c as usize)] = v;
    }
    d
}

/// Element-wise sum of two CSR matrices with the same shape.
pub fn add_csr_with<S>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
where
    S: Semiring,
{
    assert_eq!(
        a.shape(),
        b.shape(),
        "element-wise add requires equal shapes"
    );
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for i in 0..a.nrows() {
        let mut acc: BTreeMap<Index, S::Elem> = BTreeMap::new();
        for (m, _) in [(a, 0), (b, 1)] {
            let (cols, vals) = m.row(i);
            for (&c, &v) in cols.iter().zip(vals) {
                acc.entry(c)
                    .and_modify(|cur| *cur = S::add(*cur, v))
                    .or_insert(v);
            }
        }
        for (&c, &v) in &acc {
            colidx.push(c);
            values.push(v);
        }
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(a.nrows(), a.ncols(), rowptr, colidx, values)
}

/// Element-wise (Hadamard) product of two CSR matrices with the same shape.
/// Only coordinates stored in **both** inputs appear in the output.
pub fn hadamard_csr_with<S>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem>
where
    S: Semiring,
{
    assert_eq!(
        a.shape(),
        b.shape(),
        "hadamard product requires equal shapes"
    );
    let mut rowptr = vec![0usize];
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    for i in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(i);
        for (&c, &av) in a_cols.iter().zip(a_vals) {
            if let Some(bv) = b.get(i, c as usize) {
                colidx.push(c);
                values.push(S::mul(av, bv));
            }
        }
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(a.nrows(), a.ncols(), rowptr, colidx, values)
}

/// Sums every stored value of a CSR matrix with the semiring's `add`.
pub fn sum_values_with<S>(m: &Csr<S::Elem>) -> S::Elem
where
    S: Semiring,
{
    m.values().iter().fold(S::zero(), |acc, &v| S::add(acc, v))
}

/// Structural equality plus element-wise value comparison within an absolute
/// tolerance.  Both matrices must be in canonical (sorted, deduplicated)
/// form; entries are compared coordinate by coordinate.
pub fn csr_approx_eq(a: &Csr<f64>, b: &Csr<f64>, tol: f64) -> bool {
    if a.shape() != b.shape() || a.nnz() != b.nnz() {
        return false;
    }
    if a.rowptr() != b.rowptr() || a.colidx() != b.colidx() {
        return false;
    }
    a.values()
        .iter()
        .zip(b.values())
        .all(|(x, y)| (x - y).abs() <= tol * x.abs().max(y.abs()).max(1.0))
}

/// Like [`csr_approx_eq`] but ignores explicitly stored zeros, so outputs of
/// algorithms that do or do not prune numerical zeros still compare equal.
pub fn csr_approx_eq_ignoring_zeros(a: &Csr<f64>, b: &Csr<f64>, tol: f64) -> bool {
    let a = a.prune(|_, _, v| v.abs() > 0.0);
    let b = b.prune(|_, _, v| v.abs() > 0.0);
    csr_approx_eq(&a, &b, tol)
}

/// Exact structural and value equality for matrices over any scalar type.
pub fn csr_exact_eq<T: Scalar>(a: &Csr<T>, b: &Csr<T>) -> bool {
    a.shape() == b.shape()
        && a.rowptr() == b.rowptr()
        && a.colidx() == b.colidx()
        && a.values() == b.values()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::semiring::{MinPlus, OrAnd};

    fn small_a() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        Coo::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    fn small_b() -> Csr<f64> {
        // [ 0 1 0 ]
        // [ 2 0 0 ]
        // [ 0 0 3 ]
        Coo::from_entries(3, 3, vec![(0, 1, 1.0), (1, 0, 2.0), (2, 2, 3.0)])
            .unwrap()
            .to_csr()
    }

    #[test]
    fn sparse_reference_matches_dense_reference() {
        let a = small_a();
        let b = small_b();
        let sparse = multiply_csr(&a, &b);
        let dense = multiply_dense_with::<PlusTimes<f64>>(&a, &b);
        assert!(sparse.to_dense().approx_eq(&dense, 1e-12));
    }

    #[test]
    fn multiply_by_identity_is_identity_operation() {
        let a = small_a();
        let id = Csr::<f64>::identity(3);
        assert!(csr_approx_eq(&multiply_csr(&a, &id), &a, 1e-12));
        assert!(csr_approx_eq(&multiply_csr(&id, &a), &a, 1e-12));
    }

    #[test]
    fn multiply_rectangular_shapes() {
        // 2x3 times 3x2.
        let a = Coo::from_entries(2, 3, vec![(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)])
            .unwrap()
            .to_csr();
        let b = Coo::from_entries(3, 2, vec![(0, 1, 1.0), (1, 0, 1.0), (2, 0, 4.0)])
            .unwrap()
            .to_csr();
        let c = multiply_csr(&a, &b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.get(0, 0), Some(8.0));
        assert_eq!(c.get(0, 1), Some(1.0));
        assert_eq!(c.get(1, 0), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn multiply_rejects_mismatched_shapes() {
        let a = small_a();
        let b = Coo::<f64>::from_entries(2, 2, vec![]).unwrap().to_csr();
        let _ = multiply_csr(&a, &b);
    }

    #[test]
    fn boolean_semiring_computes_pattern() {
        let a = small_a().map_values(|_| true);
        let b = small_b().map_values(|_| true);
        let pattern = multiply_csr_with::<OrAnd>(&a, &b);
        let numeric = multiply_csr(&small_a(), &small_b());
        assert_eq!(pattern.rowptr(), numeric.rowptr());
        assert_eq!(pattern.colidx(), numeric.colidx());
        assert!(pattern.values().iter().all(|&v| v));
    }

    #[test]
    fn min_plus_two_hop_distances() {
        // Chain 0 -> 1 -> 2 with weights 1.5 and 2.5.
        let a = Coo::from_entries(3, 3, vec![(0, 1, 1.5), (1, 2, 2.5)])
            .unwrap()
            .to_csr();
        let c = multiply_csr_with::<MinPlus>(&a, &a);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 2), Some(4.0));
    }

    #[test]
    fn add_and_hadamard() {
        let a = small_a();
        let b = small_b();
        let sum = add_csr_with::<PlusTimes<f64>>(&a, &b);
        assert_eq!(sum.get(0, 1), Some(1.0));
        assert_eq!(sum.get(0, 0), Some(1.0));
        // A and B overlap only at (2, 2): 5 + 3 - 1 stored coordinates.
        assert_eq!(sum.nnz(), 7);
        assert_eq!(sum.get(2, 2), Some(8.0));

        let had = hadamard_csr_with::<PlusTimes<f64>>(&a, &a);
        assert_eq!(had.nnz(), a.nnz());
        assert_eq!(had.get(2, 2), Some(25.0));

        // A and B only share the coordinate (2, 2), so their Hadamard
        // product has a single entry.
        let had2 = hadamard_csr_with::<PlusTimes<f64>>(&a, &b);
        assert_eq!(had2.nnz(), 1);
        assert_eq!(had2.get(2, 2), Some(15.0));
    }

    #[test]
    fn sum_values_accumulates_all_entries() {
        let a = small_a();
        let total = sum_values_with::<PlusTimes<f64>>(&a);
        assert!((total - 15.0).abs() < 1e-12);
    }

    #[test]
    fn approx_eq_detects_structure_and_value_differences() {
        let a = small_a();
        let mut b = small_a();
        assert!(csr_approx_eq(&a, &b, 1e-12));
        b.values_mut()[0] += 1e-3;
        assert!(!csr_approx_eq(&a, &b, 1e-9));
        assert!(csr_approx_eq(&a, &b, 1e-2));
        let c = small_b();
        assert!(!csr_approx_eq(&a, &c, 1.0));
    }

    #[test]
    fn approx_eq_ignoring_zeros() {
        let a = small_a();
        // Same matrix but with an explicitly stored zero entry added.
        let mut entries: Vec<(usize, usize, f64)> = a
            .iter()
            .map(|(r, c, v)| (r as usize, c as usize, v))
            .collect();
        entries.push((1, 2, 0.0));
        let b = Coo::from_entries(3, 3, entries).unwrap().to_csr();
        assert!(!csr_approx_eq(&a, &b, 1e-12));
        assert!(csr_approx_eq_ignoring_zeros(&a, &b, 1e-12));
    }

    #[test]
    fn multiply_with_empty_matrices() {
        let a: Csr<f64> = Csr::empty(3, 4);
        let b: Csr<f64> = Csr::empty(4, 2);
        let c = multiply_csr(&a, &b);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.nnz(), 0);
    }
}
