//! Row-parallel CSR SpMV.
//!
//! The textbook kernel: every output element `y[i]` is the dot product of row
//! `i` of `A` with `x`.  Reads of `A` (values and column indices) stream
//! perfectly; reads of `x` are indexed by the column pattern of the row, so
//! for unstructured matrices they are effectively random — the same
//! irregular-gather weakness the paper attributes to column SpGEMM.

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::Csr;
use rayon::prelude::*;

/// Computes `y = A·x` under a semiring, returning a freshly allocated `y`.
pub fn csr_spmv_with<S: Semiring>(a: &Csr<S::Elem>, x: &[S::Elem]) -> Vec<S::Elem> {
    let mut y = vec![S::zero(); a.nrows()];
    csr_spmv_into_with::<S>(a, x, &mut y);
    y
}

/// Computes `y = A·x` under a semiring into a caller-provided buffer.
///
/// `y` must have exactly `a.nrows()` elements; it is overwritten (not
/// accumulated into).
pub fn csr_spmv_into_with<S: Semiring>(a: &Csr<S::Elem>, x: &[S::Elem], y: &mut [S::Elem]) {
    assert_eq!(
        x.len(),
        a.ncols(),
        "x must have one element per matrix column"
    );
    assert_eq!(y.len(), a.nrows(), "y must have one element per matrix row");
    y.par_iter_mut().enumerate().for_each(|(i, yi)| {
        let (cols, vals) = a.row(i);
        let mut acc = S::zero();
        for (&c, &v) in cols.iter().zip(vals) {
            acc = S::add(acc, S::mul(v, x[c as usize]));
        }
        *yi = acc;
    });
}

/// Computes `y = A·x` with ordinary `+`/`×` over a numeric type.
pub fn csr_spmv<T: Numeric>(a: &Csr<T>, x: &[T]) -> Vec<T> {
    csr_spmv_with::<PlusTimes<T>>(a, x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::erdos_renyi_square;
    use pb_sparse::semiring::{MinPlus, OrAnd};
    use pb_sparse::Coo;

    fn small() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        Coo::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    /// O(n·nnz) dense-gather oracle.
    fn dense_oracle(a: &Csr<f64>, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; a.nrows()];
        for (r, c, v) in a.iter() {
            y[r as usize] += v * x[c as usize];
        }
        y
    }

    #[test]
    fn small_matrix_by_hand() {
        let a = small();
        let y = csr_spmv(&a, &[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn identity_is_a_no_op() {
        let id = Csr::<f64>::identity(10);
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(csr_spmv(&id, &x), x);
    }

    #[test]
    fn matches_dense_oracle_on_random_matrices() {
        for seed in 0..3u64 {
            let a = erdos_renyi_square(7, 5, seed);
            let x: Vec<f64> = (0..a.ncols())
                .map(|i| ((i * 7 + 3) % 11) as f64 - 5.0)
                .collect();
            let y = csr_spmv(&a, &x);
            let expected = dense_oracle(&a, &x);
            for (p, q) in y.iter().zip(&expected) {
                assert!((p - q).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn into_variant_overwrites_previous_contents() {
        let a = small();
        let mut y = vec![99.0; 3];
        csr_spmv_into_with::<PlusTimes<f64>>(&a, &[0.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    fn boolean_semiring_computes_reachability() {
        let a = small().map_values(|_| true);
        let frontier = vec![true, false, false];
        let next = csr_spmv_with::<OrAnd>(&a, &frontier);
        // Rows with a stored entry in column 0 become reachable.
        assert_eq!(next, vec![true, false, true]);
    }

    #[test]
    fn min_plus_semiring_relaxes_distances() {
        let a = small();
        let dist = vec![0.0, f64::INFINITY, f64::INFINITY];
        let relaxed = csr_spmv_with::<MinPlus>(&a, &dist);
        assert_eq!(relaxed[0], 1.0); // A(0,0) + dist[0]
        assert_eq!(relaxed[1], f64::INFINITY);
        assert_eq!(relaxed[2], 4.0); // A(2,0) + dist[0]
    }

    #[test]
    fn empty_matrix_yields_zero_vector() {
        let a = Csr::<f64>::empty(4, 6);
        assert_eq!(csr_spmv(&a, &[1.0; 6]), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "one element per matrix column")]
    fn wrong_x_length_panics() {
        let a = small();
        let _ = csr_spmv(&a, &[1.0, 2.0]);
    }
}
