//! Concurrency stress tests: with the vendored rayon pool running *real*
//! threads, every expand strategy must assemble the identical CSR product
//! (sorted columns, duplicates merged) at every thread count, and the
//! lock-free `Reserved` flushes must agree with both the safe `ThreadLocal`
//! fallback and the sequential reference oracle.
//!
//! Integer-valued inputs make the comparison *exact*: semiring adds then
//! commute bit-for-bit, so any divergence is a real race, not float
//! reassociation.  A second layer checks random-valued inputs with the
//! usual tolerance, and a proptest layer sweeps random R-MAT/ER-style
//! matrices at >1 thread.

use proptest::prelude::*;

use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::reference::{csr_approx_eq, multiply_csr as reference_multiply};
use pb_spgemm_suite::spgemm::{CompressSplit, ExpandStrategy, PbConfig};

/// Engine-backed stand-in for the retired `pb_spgemm::multiply` free
/// function: call sites stay unchanged while routing through the unified
/// [`SpGemm`] engine.
fn multiply(a: &Csc<f64>, b: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb().config(cfg.clone()).multiply_csc(a, b)
}

/// The thread counts every differential test sweeps.  8 exceeds this
/// container's core count on purpose: oversubscription maximises
/// interleavings around the `fetch_add` flush reservations.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Strips a matrix to unit values so products are exact in f64.
fn unit_valued(a: &Csr<f64>) -> Csr<f64> {
    a.map_values(|_| 1.0)
}

/// Asserts two CSRs are bit-identical (structure and values).
fn assert_csr_exact(c: &Csr<f64>, expected: &Csr<f64>, context: &str) {
    assert_eq!(c.shape(), expected.shape(), "{context}: shape");
    assert_eq!(c.rowptr(), expected.rowptr(), "{context}: rowptr");
    assert_eq!(c.colidx(), expected.colidx(), "{context}: colidx");
    assert_eq!(c.values(), expected.values(), "{context}: values");
}

#[test]
fn expand_strategies_agree_exactly_across_thread_counts() {
    // Unit-valued inputs: every merged duplicate is a small integer sum, so
    // Reserved, ThreadLocal and the reference must match bit-for-bit.
    let inputs = [
        ("rmat", unit_valued(&rmat_square(9, 8, 7))),
        ("er", unit_valued(&erdos_renyi_square(9, 6, 11))),
    ];
    for (name, a) in &inputs {
        let expected = reference_multiply(a, a);
        let a_csc = a.to_csc();
        for &t in &THREADS {
            for strategy in [ExpandStrategy::Reserved, ExpandStrategy::ThreadLocal] {
                let cfg = PbConfig::default()
                    .with_expand(strategy)
                    .with_threads(t)
                    // Small local bins force frequent concurrent flushes.
                    .with_local_bin_bytes(64);
                let c = multiply(&a_csc, a, &cfg);
                assert_csr_exact(&c, &expected, &format!("{name}/{strategy:?}/threads={t}"));
            }
        }
    }
}

#[test]
fn random_values_agree_with_reference_across_thread_counts() {
    // Random values: compare with tolerance (parallel merge order can
    // reassociate float adds) against the oracle and across strategies.
    let a = rmat_square(9, 8, 13);
    let a_csc = a.to_csc();
    let expected = reference_multiply(&a, &a);
    for &t in &THREADS {
        let reserved = multiply(
            &a_csc,
            &a,
            &PbConfig::default()
                .with_expand(ExpandStrategy::Reserved)
                .with_threads(t),
        );
        let thread_local = multiply(
            &a_csc,
            &a,
            &PbConfig::default()
                .with_expand(ExpandStrategy::ThreadLocal)
                .with_threads(t),
        );
        assert!(
            csr_approx_eq(&reserved, &expected, 1e-9),
            "Reserved vs reference at {t} threads"
        );
        assert!(
            csr_approx_eq(&thread_local, &expected, 1e-9),
            "ThreadLocal vs reference at {t} threads"
        );
        // Structure must match exactly regardless of value tolerance.
        assert_eq!(reserved.rowptr(), thread_local.rowptr(), "threads = {t}");
        assert_eq!(reserved.colidx(), thread_local.colidx(), "threads = {t}");
    }
}

#[test]
fn baselines_agree_under_a_shared_parallel_pool() {
    // The column baselines parallelise over rows; run them all inside one
    // dedicated 4-thread pool and diff against the sequential oracle.
    let a = rmat_square(9, 6, 17);
    let expected = reference_multiply(&a, &a);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    pool.install(|| {
        for baseline in Baseline::all() {
            let c = baseline.multiply(&a, &a);
            assert!(
                csr_approx_eq(&c, &expected, 1e-9),
                "{} in a 4-thread pool disagrees with the reference",
                baseline.name()
            );
        }
    });
}

#[test]
fn split_bin_compress_is_bit_exact_across_thread_counts() {
    // The compress phase's in-bin split schedule must produce the identical
    // CSR — structure AND values — as the paper's per-bin schedule and as
    // the reference oracle, at 1 and 4 threads (CI re-runs this whole suite
    // under PB_RAYON_THREADS=4 as well, covering the global-pool paths).
    // Unit values make the comparison exact; single-bin and few-bin
    // configurations force bins big enough to actually split.
    let inputs = [
        ("rmat", unit_valued(&rmat_square(9, 8, 29))),
        ("er", unit_valued(&erdos_renyi_square(9, 8, 31))),
    ];
    for (name, a) in &inputs {
        let expected = reference_multiply(a, a);
        let a_csc = a.to_csc();
        for &t in &[1usize, 4] {
            for nbins in [1usize, 2] {
                let base = PbConfig::default().with_threads(t).with_nbins(nbins);
                let split = multiply(
                    &a_csc,
                    a,
                    &base.clone().with_compress_split(CompressSplit::Always),
                );
                let unsplit = multiply(
                    &a_csc,
                    a,
                    &base.clone().with_compress_split(CompressSplit::Never),
                );
                let context = format!("{name}/threads={t}/nbins={nbins}");
                assert_csr_exact(&split, &unsplit, &context);
                assert_csr_exact(&split, &expected, &context);

                // Auto mode (the default) must agree with both.
                let auto = multiply(&a_csc, a, &base);
                assert_csr_exact(&auto, &expected, &format!("{context}/auto"));
            }
        }
    }
}

#[test]
fn auto_tuned_config_is_race_free_and_correct_under_threads() {
    // The AutoTune feedback loop mutates shared state between multiplies;
    // hammer it from a deliberately tiny width at 4 threads and require
    // every product to stay exact while the width only ever grows here.
    let a = unit_valued(&rmat_square(8, 8, 37));
    let a_csc = a.to_csc();
    let expected = reference_multiply(&a, &a);
    let cfg = PbConfig::auto_tuned_from_lines(1).with_threads(4);
    let mut last_bytes = cfg.effective_local_bin_bytes();
    for round in 0..6 {
        let c = multiply(&a_csc, &a, &cfg);
        assert_csr_exact(&c, &expected, &format!("auto-tuned round {round}"));
        let bytes = cfg.effective_local_bin_bytes();
        assert!(
            bytes >= last_bytes,
            "width shrank on a pure-growth workload"
        );
        last_bytes = bytes;
    }
    assert!(
        last_bytes > 64,
        "tuner never adapted away from the 1-line start"
    );
}

#[test]
fn domain_partitioned_multiplies_are_bit_identical_to_single_domain() {
    // NUMA-domain partitioning only changes *where* expanded tuples are
    // buffered; the logical bins (and therefore the sorted, compressed,
    // assembled product) must be identical.  Unit values make the
    // comparison exact down to the last bit.
    let inputs = [
        ("rmat", unit_valued(&rmat_square(9, 8, 43))),
        ("er", unit_valued(&erdos_renyi_square(9, 6, 47))),
    ];
    for (name, a) in &inputs {
        let expected = reference_multiply(a, a);
        let a_csc = a.to_csc();
        for &t in &[2usize, 4] {
            let single = multiply(
                &a_csc,
                a,
                &PbConfig::default().with_threads(t).with_numa_domains(1),
            );
            assert_csr_exact(&single, &expected, &format!("{name}/threads={t}/domains=1"));
            for &domains in &[2usize, 4] {
                let cfg = PbConfig::default()
                    .with_threads(t)
                    .with_numa_domains(domains)
                    // Tiny local bins maximise flush frequency, and with it
                    // the chance for any segment-routing race to surface.
                    .with_local_bin_bytes(64);
                let c = multiply(&a_csc, a, &cfg);
                assert_csr_exact(
                    &c,
                    &single,
                    &format!("{name}/threads={t}/domains={domains}"),
                );
            }
        }
    }
}

#[test]
fn domain_partitioned_real_values_are_exact_without_collisions_and_close_with() {
    // A permutation matrix with random weights: every output entry is a
    // single product, so no semiring add ever reorders and the
    // domain-partitioned product must equal the single-domain one
    // bit-for-bit even with real values.
    let n = 512usize;
    let entries: Vec<(usize, usize, f64)> = (0..n)
        .map(|i| (i, (i * 331) % n, 0.5 + (i as f64) * 0.125))
        .collect();
    let perm = Coo::from_entries(n, n, entries).unwrap().to_csr();
    let perm_csc = perm.to_csc();
    let base = PbConfig::default()
        .with_threads(4)
        .with_nbins(8)
        .with_local_bin_bytes(64);
    let single = multiply(&perm_csc, &perm, &base.clone().with_numa_domains(1));
    let parted = multiply(&perm_csc, &perm, &base.clone().with_numa_domains(2));
    assert_csr_exact(&parted, &single, "collision-free real values");
    assert_csr_exact(
        &parted,
        &reference_multiply(&perm, &perm),
        "collision-free vs reference",
    );

    // With duplicate (row, col) keys the accumulation order inside an
    // equal-key run depends on flush interleaving — exactly as it already
    // does between two runs of the *same* single-domain configuration — so
    // real values compare with tolerance while the structure stays exact.
    let a = rmat_square(9, 8, 53);
    let a_csc = a.to_csc();
    let expected = reference_multiply(&a, &a);
    let single = multiply(&a_csc, &a, &base.clone().with_numa_domains(1));
    let parted = multiply(&a_csc, &a, &base.clone().with_numa_domains(2));
    assert_eq!(parted.rowptr(), single.rowptr());
    assert_eq!(parted.colidx(), single.colidx());
    assert!(csr_approx_eq(&parted, &expected, 1e-9));
}

#[test]
fn domain_partitioned_masked_multiply_is_bit_identical() {
    // The masked pipeline shares the expand phase, so domain partitioning
    // must leave it bit-identical too (unit values, mask = input pattern —
    // the triangle-counting shape).
    let a = unit_valued(&rmat_square(9, 6, 59));
    let a_csc = a.to_csc();
    for &t in &[2usize, 4] {
        let base = PbConfig::default().with_threads(t).with_local_bin_bytes(64);
        let single = SpGemm::pb()
            .config(base.clone().with_numa_domains(1))
            .mask(&a)
            .multiply_csc(&a_csc, &a);
        let parted = SpGemm::pb()
            .config(base.clone().with_numa_domains(2))
            .mask(&a)
            .multiply_csc(&a_csc, &a);
        assert_csr_exact(&parted, &single, &format!("masked/threads={t}"));
    }
}

/// The ISSUE's forced-topology determinism hammer: PB_NUMA_DOMAINS=2-style
/// partitioning (forced via the config override, which is exactly what the
/// env variable sets up) on a 4-thread pool, repeated — the assembled CSR
/// must never depend on flush interleaving or on which domain's worker
/// stole whose block.  CI additionally re-runs this whole suite with
/// PB_NUMA_DOMAINS=2 and PB_RAYON_THREADS=4 exported, covering the
/// env-driven global-pool path.
#[test]
fn forced_two_domain_four_thread_runs_are_deterministic() {
    let a = unit_valued(&rmat_square(8, 10, 61));
    let a_csc = a.to_csc();
    let cfg = PbConfig::default()
        .with_threads(4)
        .with_numa_domains(2)
        .with_local_bin_bytes(64);
    let first = multiply(&a_csc, &a, &cfg);
    assert_csr_exact(
        &first,
        &reference_multiply(&a, &a),
        "forced-domain hammer vs reference",
    );
    for round in 0..8 {
        let again = multiply(&a_csc, &a, &cfg);
        assert_csr_exact(&again, &first, &format!("forced-domain round {round}"));
    }
}

#[test]
fn repeated_runs_are_deterministic_at_fixed_thread_count() {
    // The assembled CSR must not depend on flush interleaving: run the same
    // multiplication many times at 4 threads and require identical output.
    let a = unit_valued(&rmat_square(8, 10, 23));
    let a_csc = a.to_csc();
    let cfg = PbConfig::default().with_threads(4).with_local_bin_bytes(64);
    let first = multiply(&a_csc, &a, &cfg);
    for round in 0..8 {
        let again = multiply(&a_csc, &a, &cfg);
        assert_csr_exact(&again, &first, &format!("round {round}"));
    }
}

/// Proptest strategy: a small random square matrix, R-MAT-flavoured or
/// ER-flavoured, with unit values for exact comparison.
fn random_square() -> impl Strategy<Value = Csr<f64>> {
    (
        5u32..=8,   // scale: 32..256 rows
        2u32..=8,   // edge factor
        0u64..1000, // seed
    )
        .prop_map(|(scale, ef, seed)| {
            // Alternate family by seed parity (the shim has no bool strategy).
            let a = if seed % 2 == 0 {
                rmat_square(scale, ef, seed)
            } else {
                erdos_renyi_square(scale, ef, seed)
            };
            a.map_values(|_| 1.0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// At >1 thread, both expand strategies reproduce the reference product
    /// exactly on arbitrary random R-MAT/ER inputs.
    #[test]
    fn parallel_pb_matches_reference_on_random_graphs(
        a in random_square(),
        threads in 2usize..=8,
    ) {
        let expected = reference_multiply(&a, &a);
        let a_csc = a.to_csc();
        for strategy in [ExpandStrategy::Reserved, ExpandStrategy::ThreadLocal] {
            let cfg = PbConfig::default()
                .with_expand(strategy)
                .with_threads(threads)
                .with_local_bin_bytes(64);
            let c = multiply(&a_csc, &a, &cfg);
            prop_assert_eq!(c.rowptr(), expected.rowptr(), "{:?} rowptr", strategy);
            prop_assert_eq!(c.colidx(), expected.colidx(), "{:?} colidx", strategy);
            prop_assert_eq!(c.values(), expected.values(), "{:?} values", strategy);
        }
    }
}
