//! Multiplication statistics: `flop`, `nnz(C)` and the compression factor.
//!
//! These are the quantities the paper's Roofline model is built on
//! (Sec. II-C): for `C = A·B`, `flop` is the number of scalar
//! multiplications, `nnz(C)` the number of output nonzeros, and
//! `cf = flop / nnz(C)` the compression factor.  `flop` only depends on the
//! sparsity structure and can be computed with a cheap streaming pass
//! (Algorithm 3 of the paper); `nnz(C)` requires a symbolic multiplication.

use rayon::prelude::*;

use crate::csc::Csc;
use crate::csr::Csr;
use crate::{Index, Scalar};

/// Summary statistics of a multiplication `C = A·B`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiplyStats {
    /// Rows of `A` (and of `C`).
    pub nrows: usize,
    /// Columns of `B` (and of `C`).
    pub ncols: usize,
    /// Inner dimension (`ncols(A) == nrows(B)`).
    pub inner: usize,
    /// `nnz(A)`.
    pub nnz_a: usize,
    /// `nnz(B)`.
    pub nnz_b: usize,
    /// Number of scalar multiplications (`nnz(Ĉ)` before merging).
    pub flop: u64,
    /// `nnz(C)` after merging duplicates.
    pub nnz_c: usize,
    /// Compression factor `flop / nnz(C)` (1.0 when the product is empty).
    pub cf: f64,
    /// Average nonzeros per column of `A` — the paper's `d`.
    pub d_a: f64,
}

impl MultiplyStats {
    /// Computes all statistics for `C = A·B` with both operands in CSR.
    ///
    /// The `flop` count is a structural streaming pass; `nnz(C)` is obtained
    /// by a row-parallel symbolic multiplication (sort-free, using a dense
    /// boolean scratch vector per thread chunk).
    pub fn compute<T: Scalar, U: Scalar>(a: &Csr<T>, b: &Csr<U>) -> Self {
        assert_eq!(a.ncols(), b.nrows(), "stats require compatible shapes");
        let flop = flop_csr(a, b);
        let nnz_c = symbolic_nnz(a, b);
        let cf = if nnz_c == 0 {
            1.0
        } else {
            flop as f64 / nnz_c as f64
        };
        MultiplyStats {
            nrows: a.nrows(),
            ncols: b.ncols(),
            inner: a.ncols(),
            nnz_a: a.nnz(),
            nnz_b: b.nnz(),
            flop,
            nnz_c,
            cf,
            d_a: a.nnz() as f64 / a.nrows().max(1) as f64,
        }
    }
}

/// Number of scalar multiplications needed for `C = A·B` with both operands
/// in CSR: `Σ_i Σ_{k ∈ A(i,:)} nnz(B(k,:))`.
pub fn flop_csr<T: Scalar, U: Scalar>(a: &Csr<T>, b: &Csr<U>) -> u64 {
    assert_eq!(a.ncols(), b.nrows(), "flop_csr requires compatible shapes");
    let b_rowptr = b.rowptr();
    (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (cols, _) = a.row(i);
            cols.iter()
                .map(|&k| (b_rowptr[k as usize + 1] - b_rowptr[k as usize]) as u64)
                .sum::<u64>()
        })
        .sum()
}

/// Per-row multiplication counts: `flop_rows(A, B)[i]` is the number of
/// expanded tuples whose row index is `i`.  This is exactly what PB-SpGEMM's
/// symbolic phase needs to size each propagation bin.
pub fn flop_rows<T: Scalar, U: Scalar>(a: &Csr<T>, b: &Csr<U>) -> Vec<u64> {
    assert_eq!(a.ncols(), b.nrows(), "flop_rows requires compatible shapes");
    let b_rowptr = b.rowptr();
    (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (cols, _) = a.row(i);
            cols.iter()
                .map(|&k| (b_rowptr[k as usize + 1] - b_rowptr[k as usize]) as u64)
                .sum::<u64>()
        })
        .collect()
}

/// Outer-product flop count with `A` in CSC and `B` in CSR (Algorithm 3 of
/// the paper): `Σ_i nnz(A(:,i)) · nnz(B(i,:))`.
pub fn flop_outer<T: Scalar, U: Scalar>(a: &Csc<T>, b: &Csr<U>) -> u64 {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "flop_outer requires compatible shapes"
    );
    let a_colptr = a.colptr();
    let b_rowptr = b.rowptr();
    (0..a.ncols())
        .into_par_iter()
        .map(|i| {
            let na = (a_colptr[i + 1] - a_colptr[i]) as u64;
            let nb = (b_rowptr[i + 1] - b_rowptr[i]) as u64;
            na * nb
        })
        .sum()
}

/// Exact `nnz(C)` for `C = A·B` via a row-parallel symbolic multiplication.
pub fn symbolic_nnz<T: Scalar, U: Scalar>(a: &Csr<T>, b: &Csr<U>) -> usize {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "symbolic_nnz requires compatible shapes"
    );
    let ncols = b.ncols();
    (0..a.nrows())
        .into_par_iter()
        .map_init(
            || vec![u32::MAX; ncols],
            |mark, i| {
                let marker = i as u32;
                let (a_cols, _) = a.row(i);
                let mut count = 0usize;
                for &k in a_cols {
                    let (b_cols, _) = b.row(k as usize);
                    for &j in b_cols {
                        let slot = &mut mark[j as usize];
                        if *slot != marker {
                            *slot = marker;
                            count += 1;
                        }
                    }
                }
                count
            },
        )
        .sum()
}

/// Exact per-row `nnz(C)` (the symbolic phase column SpGEMM algorithms need
/// to pre-allocate their output).
pub fn symbolic_row_nnz<T: Scalar, U: Scalar>(a: &Csr<T>, b: &Csr<U>) -> Vec<usize> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "symbolic_row_nnz requires compatible shapes"
    );
    let ncols = b.ncols();
    (0..a.nrows())
        .into_par_iter()
        .map_init(
            || vec![u32::MAX; ncols],
            |mark, i| {
                let marker = i as u32;
                let (a_cols, _) = a.row(i);
                let mut count = 0usize;
                for &k in a_cols {
                    let (b_cols, _) = b.row(k as usize);
                    for &j in b_cols {
                        let slot = &mut mark[j as usize];
                        if *slot != marker {
                            *slot = marker;
                            count += 1;
                        }
                    }
                }
                count
            },
        )
        .collect()
}

/// An upper bound on the nonzeros of any single output row: the row flop.
/// Hash-based column algorithms size their per-row tables from this.
pub fn row_flop_upper_bound<T: Scalar, U: Scalar>(a: &Csr<T>, b: &Csr<U>, row: usize) -> usize {
    let (cols, _) = a.row(row);
    cols.iter().map(|&k| b.row_nnz(k as usize)).sum()
}

/// Histogram of row degrees: `hist[d]` is the number of rows with exactly `d`
/// stored entries (rows denser than `max_degree` are clamped into the last
/// bucket).  Used to characterise the skew of R-MAT matrices.
pub fn degree_histogram<T: Scalar>(m: &Csr<T>, max_degree: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max_degree + 1];
    for i in 0..m.nrows() {
        let d = m.row_nnz(i).min(max_degree);
        hist[d] += 1;
    }
    hist
}

/// The Gini coefficient of the row-degree distribution, a scalar measure of
/// load imbalance (0 = perfectly balanced, →1 = extremely skewed).
pub fn degree_gini<T: Scalar>(m: &Csr<T>) -> f64 {
    let mut degrees: Vec<u64> = (0..m.nrows()).map(|i| m.row_nnz(i) as u64).collect();
    if degrees.is_empty() {
        return 0.0;
    }
    degrees.sort_unstable();
    let n = degrees.len() as f64;
    let total: u64 = degrees.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let weighted: f64 = degrees
        .iter()
        .enumerate()
        .map(|(i, &d)| (i as f64 + 1.0) * d as f64)
        .sum();
    (2.0 * weighted) / (n * total as f64) - (n + 1.0) / n
}

/// Column indices touched by a row-wise Gustavson pass over `A` — used by the
/// access-pattern model to estimate how many times `B`'s rows are re-read.
pub fn distinct_inner_indices<T: Scalar>(a: &Csr<T>) -> usize {
    let mut seen = vec![false; a.ncols()];
    let mut count = 0usize;
    for &c in a.colidx() {
        if !seen[c as usize] {
            seen[c as usize] = true;
            count += 1;
        }
    }
    count
}

/// Convenience: the paper's compression factor for squaring a matrix.
pub fn squaring_cf<T: Scalar>(a: &Csr<T>) -> f64 {
    MultiplyStats::compute(a, a).cf
}

/// Returns `(flop, nnz_c, cf)` as a tuple for terse call-sites.
pub fn flop_nnz_cf<T: Scalar, U: Scalar>(a: &Csr<T>, b: &Csr<U>) -> (u64, usize, f64) {
    let s = MultiplyStats::compute(a, b);
    (s.flop, s.nnz_c, s.cf)
}

/// Checks whether indices fit the key-packing assumption of PB-SpGEMM's sort
/// (row and column index must together fit in 64 bits; always true for `u32`
/// indices, kept as an explicit guard for future index widening).
pub fn fits_packed_key(nrows: usize, ncols: usize) -> bool {
    let row_bits = bits_needed(nrows.saturating_sub(1) as u64);
    let col_bits = bits_needed(ncols.saturating_sub(1) as u64);
    row_bits + col_bits <= 64
}

/// Number of bits needed to represent `v` (at least 1).
pub fn bits_needed(v: u64) -> u32 {
    (64 - v.leading_zeros()).max(1)
}

/// The paper's per-tuple storage constant `b`: bytes needed per COO entry
/// with `u32` indices and values of type `T` (Sec. II-C uses 16 bytes).
pub fn bytes_per_tuple<T>() -> usize {
    2 * std::mem::size_of::<Index>() + std::mem::size_of::<T>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::reference::multiply_csr;

    fn a() -> Csr<f64> {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        // [ 4 0 5 ]
        Coo::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn flop_counts_match_between_formulations() {
        let a = a();
        let b = a.clone();
        let f_row = flop_csr(&a, &b);
        let f_outer = flop_outer(&a.to_csc(), &b);
        assert_eq!(f_row, f_outer);
        // Row 0 of A has entries in columns 0 and 2; rows 0 and 2 of B have 2
        // entries each -> 4 products.  Row 1 -> 1, row 2 -> 4.
        assert_eq!(f_row, 9);
        let per_row = flop_rows(&a, &b);
        assert_eq!(per_row, vec![4, 1, 4]);
        assert_eq!(per_row.iter().sum::<u64>(), f_row);
    }

    #[test]
    fn symbolic_nnz_matches_reference_product() {
        let a = a();
        let c = multiply_csr(&a, &a);
        assert_eq!(symbolic_nnz(&a, &a), c.nnz());
        let per_row = symbolic_row_nnz(&a, &a);
        let expected: Vec<usize> = (0..c.nrows()).map(|i| c.row_nnz(i)).collect();
        assert_eq!(per_row, expected);
    }

    #[test]
    fn multiply_stats_are_consistent() {
        let a = a();
        let s = MultiplyStats::compute(&a, &a);
        assert_eq!(s.nrows, 3);
        assert_eq!(s.ncols, 3);
        assert_eq!(s.inner, 3);
        assert_eq!(s.nnz_a, 5);
        assert_eq!(s.nnz_b, 5);
        assert_eq!(s.flop, 9);
        assert_eq!(s.nnz_c, multiply_csr(&a, &a).nnz());
        assert!((s.cf - s.flop as f64 / s.nnz_c as f64).abs() < 1e-12);
        assert!(
            s.cf >= 1.0,
            "at least one multiplication per output nonzero"
        );
        let (f, n, cf) = flop_nnz_cf(&a, &a);
        assert_eq!((f, n), (s.flop, s.nnz_c));
        assert_eq!(cf, s.cf);
        assert_eq!(squaring_cf(&a), s.cf);
    }

    #[test]
    fn empty_product_has_cf_one() {
        let a: Csr<f64> = Csr::empty(4, 4);
        let s = MultiplyStats::compute(&a, &a);
        assert_eq!(s.flop, 0);
        assert_eq!(s.nnz_c, 0);
        assert_eq!(s.cf, 1.0);
    }

    #[test]
    fn row_flop_upper_bound_bounds_row_nnz() {
        let a = a();
        let c = multiply_csr(&a, &a);
        for i in 0..a.nrows() {
            assert!(row_flop_upper_bound(&a, &a, i) >= c.row_nnz(i));
        }
    }

    #[test]
    fn degree_histogram_and_gini() {
        let a = a();
        let hist = degree_histogram(&a, 4);
        assert_eq!(hist[1], 1); // row 1 has one entry
        assert_eq!(hist[2], 2); // rows 0 and 2 have two entries
        assert_eq!(hist.iter().sum::<usize>(), 3);

        // Perfectly balanced matrix -> Gini close to 0.
        let balanced = Csr::<f64>::identity(64);
        assert!(degree_gini(&balanced).abs() < 1e-9);

        // One dense row among empty rows -> strongly imbalanced.
        let mut entries = Vec::new();
        for j in 0..32 {
            entries.push((0usize, j as usize, 1.0));
        }
        let skewed = Coo::from_entries(32, 32, entries).unwrap().to_csr();
        assert!(degree_gini(&skewed) > 0.9);
    }

    #[test]
    fn misc_helpers() {
        assert_eq!(bytes_per_tuple::<f64>(), 16);
        assert_eq!(bytes_per_tuple::<f32>(), 12);
        assert_eq!(bits_needed(0), 1);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(255), 8);
        assert_eq!(bits_needed(256), 9);
        assert!(fits_packed_key(1 << 20, 1 << 20));
        let a = a();
        assert_eq!(distinct_inner_indices(&a), 3);
    }
}
