//! Workspace reuse across repeated multiplies: bit-exactness vs the
//! fresh-allocation path under shape growth, shrinkage and NUMA-domain
//! changes mid-stream, steady-state zero-allocation, concurrent sharing,
//! and the masked pipeline.
//!
//! Products are compared on unit-valued matrices wherever *bit* equality is
//! asserted: with every expanded tuple equal to 1.0 the merged sums are
//! order-independent, so the comparison is exact even on a real
//! multi-thread pool where the flush interleaving varies run to run.
//! Real-valued products are additionally checked against the reference
//! oracle to the usual tolerance.
//!
//! `PB_WORKSPACE_STRESS` (set by the CI shared-workspace stress run)
//! multiplies the iteration and thread counts, hammering the checkout /
//! check-in paths harder.

use std::sync::Arc;

use pb_gen::{erdos_renyi_square, rmat_square};
use pb_sparse::reference::{csr_approx_eq, multiply_csr as reference_multiply};
use pb_sparse::semiring::{OrAnd, PlusTimes};
use pb_sparse::Csc;
use pb_sparse::Csr;
use pb_spgemm::{PbConfig, SpGemm, SpGemmProfile, Workspace};

/// Engine-backed stand-ins for the retired free functions: call sites stay
/// unchanged while routing through the unified [`SpGemm`] engine.
fn multiply(a: &Csc<f64>, b: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb().config(cfg.clone()).multiply_csc(a, b)
}

fn multiply_reusing(a: &Csc<f64>, b: &Csr<f64>, cfg: &PbConfig, ws: &Arc<Workspace>) -> Csr<f64> {
    SpGemm::pb()
        .config(cfg.clone())
        .workspace(ws.clone())
        .multiply_csc(a, b)
}

fn multiply_with_profile_reusing<S: pb_sparse::Semiring>(
    a: &Csc<S::Elem>,
    b: &Csr<S::Elem>,
    cfg: &PbConfig,
    ws: &Arc<Workspace>,
) -> (Csr<S::Elem>, SpGemmProfile)
where
    S::Elem: Default,
{
    SpGemm::pb()
        .config(cfg.clone())
        .workspace(ws.clone())
        .multiply_csc_with_profile::<S>(a, b)
}

/// Iteration multiplier: 1 normally, 4 under the CI stress toggle.
fn stress_factor() -> usize {
    if std::env::var("PB_WORKSPACE_STRESS").is_ok_and(|v| !v.is_empty() && v != "0") {
        4
    } else {
        1
    }
}

fn unit(a: Csr<f64>) -> Csr<f64> {
    a.map_values(|_| 1.0)
}

/// Asserts two CSR products are identical to the bit.
fn assert_bit_identical(got: &Csr<f64>, want: &Csr<f64>, what: &str) {
    assert_eq!(got.rowptr(), want.rowptr(), "{what}: rowptr differs");
    assert_eq!(got.colidx(), want.colidx(), "{what}: colidx differs");
    assert_eq!(got.values(), want.values(), "{what}: values differ");
}

#[test]
fn same_shape_repeats_are_allocation_free_and_bit_exact() {
    let a = unit(rmat_square(8, 8, 61));
    let a_csc = a.to_csc();
    let fresh = multiply(&a_csc, &a, &PbConfig::default());
    let ws = Arc::new(Workspace::new());
    let rounds = 3 * stress_factor();
    for i in 0..rounds {
        let (c, p) =
            multiply_with_profile_reusing::<PlusTimes<f64>>(&a_csc, &a, &PbConfig::default(), &ws);
        assert_bit_identical(&c, &fresh, &format!("round {i}"));
        if i > 0 {
            assert_eq!(
                p.stats.bytes_allocated, 0,
                "round {i} allocated in steady state"
            );
            assert!(p.stats.workspace_hits > 0, "round {i} served no hits");
            assert!(p.stats.bytes_reused > 0);
        }
    }
    assert_eq!(ws.leases(), rounds as u64);
    assert_eq!(ws.bypasses(), 0);
}

#[test]
fn grow_shrink_and_domain_changes_stay_bit_exact() {
    // One workspace across growing, shrinking and re-partitioned
    // multiplies: every product must equal the fresh-allocation product of
    // the *same* configuration bit-for-bit.
    let small = unit(erdos_renyi_square(7, 4, 71));
    let large = unit(rmat_square(9, 8, 72));
    let medium = unit(erdos_renyi_square(8, 6, 73));
    let ws = Arc::new(Workspace::new());
    // (matrix, forced domain count): grow small -> large, shrink back,
    // change the domain partition mid-stream (1 -> 2 -> 4 needs a 4-thread
    // pool so resolve_domains does not clamp the partition away).
    let schedule: Vec<(&Csr<f64>, usize, &str)> = vec![
        (&small, 1, "small/1"),
        (&large, 2, "grow to large/2"),
        (&large, 4, "large again/4 domains"),
        (&medium, 2, "shrink to medium/2"),
        (&small, 4, "shrink to small/4"),
    ];
    for _ in 0..stress_factor() {
        for (m, domains, what) in &schedule {
            let cfg = PbConfig::default()
                .with_threads(4)
                .with_numa_domains(*domains);
            let m_csc = m.to_csc();
            let fresh = multiply(&m_csc, m, &cfg);
            let reused = multiply_reusing(&m_csc, m, &cfg, &ws);
            assert_bit_identical(&reused, &fresh, what);
        }
    }
    assert!(ws.total_bytes_reused() > 0, "nothing reused across the run");
}

#[test]
fn thread_local_strategy_reaches_the_same_steady_state() {
    // The differential-testing expand strategy routes its buffer and
    // staging acquisitions through the same lease as Reserved, so the
    // zero-allocation steady state holds under either strategy.
    let a = unit(erdos_renyi_square(7, 5, 99));
    let a_csc = a.to_csc();
    let cfg = PbConfig::default().with_expand(pb_spgemm::ExpandStrategy::ThreadLocal);
    let fresh = multiply(&a_csc, &a, &cfg);
    let ws = Arc::new(Workspace::new());
    for i in 0..3 {
        let (c, p) = multiply_with_profile_reusing::<PlusTimes<f64>>(&a_csc, &a, &cfg, &ws);
        assert_bit_identical(&c, &fresh, &format!("ThreadLocal round {i}"));
        if i > 0 {
            assert_eq!(p.stats.bytes_allocated, 0, "round {i}");
            assert!(p.stats.workspace_hits > 0);
        }
    }
}

#[test]
fn real_values_match_the_reference_through_reuse() {
    let a = rmat_square(8, 6, 81);
    let a_csc = a.to_csc();
    let expected = reference_multiply(&a, &a);
    let ws = Arc::new(Workspace::new());
    for _ in 0..2 * stress_factor() {
        let c = multiply_reusing(&a_csc, &a, &PbConfig::default(), &ws);
        assert!(csr_approx_eq(&c, &expected, 1e-9));
    }
}

#[test]
fn value_type_switch_mid_stream_rebuilds_and_stays_correct() {
    // f64 -> bool (OrAnd) -> f64 through one workspace: each switch drops
    // the incompatible pooled buffers and rebuilds, products stay right.
    let a = rmat_square(7, 4, 91);
    let a_csc = a.to_csc();
    let ws = Arc::new(Workspace::new());
    let cfg = PbConfig::default().with_workspace(ws.clone());

    let expected_f = reference_multiply(&a, &a);
    let c = multiply(&a_csc, &a, &cfg);
    assert!(csr_approx_eq(&c, &expected_f, 1e-9));

    let b = a.map_values(|_| true);
    let expected_b = pb_sparse::reference::multiply_csr_with::<OrAnd>(&b, &b);
    let pattern = SpGemm::pb()
        .config(cfg.clone())
        .multiply_csc_with::<OrAnd>(&b.to_csc(), &b);
    assert_eq!(pattern.rowptr(), expected_b.rowptr());
    assert_eq!(pattern.colidx(), expected_b.colidx());

    let c = multiply(&a_csc, &a, &cfg);
    assert!(csr_approx_eq(&c, &expected_f, 1e-9));
}

#[test]
fn concurrent_clones_share_one_workspace_safely() {
    // Several threads multiply through clones of one workspace-carrying
    // config simultaneously: whoever finds the buffers checked out falls
    // back to fresh allocation (a bypass), and every product is exact.
    let a = unit(rmat_square(7, 6, 95));
    let a_csc = a.to_csc();
    let fresh = multiply(&a_csc, &a, &PbConfig::default());
    let ws = Arc::new(Workspace::new());
    let cfg = PbConfig::default().with_workspace(ws.clone());
    let threads = 4 * stress_factor();
    let rounds = 3usize;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cfg = cfg.clone();
            let (a_csc, a, fresh) = (&a_csc, &a, &fresh);
            scope.spawn(move || {
                for _ in 0..rounds {
                    let c = multiply(a_csc, a, &cfg);
                    assert_eq!(c.rowptr(), fresh.rowptr());
                    assert_eq!(c.colidx(), fresh.colidx());
                    assert_eq!(c.values(), fresh.values());
                }
            });
        }
    });
    // Every multiply either leased or bypassed; nothing was lost.
    assert_eq!(
        ws.leases() + ws.bypasses(),
        (threads * rounds) as u64,
        "checkout accounting is exhaustive"
    );
    assert!(ws.leases() >= 1);
}

#[test]
fn masked_multiplies_reuse_the_workspace_across_iterations() {
    let a = unit(erdos_renyi_square(7, 6, 97));
    let a_csc = a.to_csc();
    let ws = Arc::new(Workspace::new());
    let cfg = PbConfig::default().with_workspace(ws.clone());
    let fresh = SpGemm::pb().mask(&a).multiply_csc(&a_csc, &a);
    for i in 0..3 * stress_factor() {
        let c = SpGemm::pb()
            .config(cfg.clone())
            .mask(&a)
            .multiply_csc(&a_csc, &a);
        assert_bit_identical(&c, &fresh, &format!("masked round {i}"));
    }
    assert!(
        ws.total_bytes_reused() > 0,
        "the masked pipeline never reused"
    );
}
