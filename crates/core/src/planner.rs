//! Telemetry-driven algorithm selection: pick PB-SpGEMM or one of the
//! column-SpGEMM baselines per multiply, from cheap pre-multiply signals
//! plus a per-host calibration table that learns from measured runs.
//!
//! # Why a planner
//!
//! The paper's own evaluation (Fig. 7) shows a *crossover*: PB-SpGEMM wins
//! when the compression factor `cf = flop / nnz(C)` is low (its phases
//! stream memory and the sort does not pay for many duplicate merges), while
//! HashSpGEMM wins once `cf` exceeds roughly 4 (hashing collapses the
//! duplicates before they ever hit memory).  The repo ships both families
//! tuned; the [`Planner`] promotes that observation from a remark in the
//! CLI's `stats` output to the dispatch policy of the unified
//! [`SpGemm`](crate::SpGemm) engine.
//!
//! # Decision signals
//!
//! [`Signals::measure`] streams the operand offset arrays once (plus a
//! bounded row sample for the `cf` estimate) — strictly cheaper than the
//! symbolic phase it mirrors:
//!
//! * **`cf_estimate`** — `flop / nnz(C)` projected from a deterministic
//!   sample of output rows (≤ [`SIGNAL_SAMPLE_ROWS`] rows, ≤
//!   [`SIGNAL_SAMPLE_FLOP_BUDGET`] sampled flop).
//! * **`row_skew`** — max over mean row-nnz of `B`; heavy skew serialises
//!   heap merges and favours hashing.
//! * **`bin_skew`** — the flop share of the fullest projected propagation
//!   bin over the mean, the same occupancy statistic
//!   [`AutoTune`](crate::config::AutoTune) watches after the fact.
//! * **`flop_per_nnz`** — arithmetic intensity `flop / (nnz(A)+nnz(B))`.
//!
//! # Decision thresholds (the prior)
//!
//! With no calibration data the planner applies a fixed, documented prior:
//!
//! 1. `flop < `[`PLANNER_TINY_FLOP`] → [`PlannedKernel::Heap`] (startup
//!    costs dominate; the heap has the smallest constant factor).
//! 2. estimated output density > [`PLANNER_SPA_DENSITY`] →
//!    [`PlannedKernel::Spa`] (a dense accumulator row is effectively free
//!    when most of it gets touched anyway).
//! 3. `cf_estimate < `[`PLANNER_CF_PB_CEILING`] → [`PlannedKernel::Pb`]
//!    (the paper's crossover, Fig. 7).
//! 4. otherwise `cf_estimate ≥ `[`PLANNER_HASHVEC_CF`] →
//!    [`PlannedKernel::HashVec`], else [`PlannedKernel::Hash`].
//!
//! # Calibration, stickiness, persistence
//!
//! Measured runs flow back through [`Planner::observe`], which maintains an
//! exponential moving average of achieved GFLOPS per *(signal bucket,
//! kernel)* cell — published with the same compare-exchange discipline as
//! [`AutoTune`](crate::config::AutoTune) (a lost race drops the step
//! instead of spinning).  Once a bucket holds measurements for at least two
//! kernels, the calibrated argmax overrides the prior; a previously chosen
//! kernel is only abandoned when the challenger's calibrated rate beats it
//! by more than [`PLANNER_SWITCH_MARGIN`] (hysteresis), so repeated
//! identical inputs keep getting the identical decision.
//!
//! Set `PB_PLANNER_CALIBRATION=/path/to/file` to persist the table across
//! processes: it is loaded by [`Planner::from_env`] and rewritten atomically
//! (temp file + rename) every [`PLANNER_PERSIST_EVERY`] observations.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};

use pb_baseline::Baseline;
use pb_sparse::{Csr, Scalar};

use crate::config::PbConfig;

/// Kernels the planner can dispatch to (plus the `Unplanned` marker that
/// [`PhaseStats`](crate::PhaseStats) reports for forced-algorithm runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PlannedKernel {
    /// No planner ran: the caller forced the algorithm.
    #[default]
    Unplanned,
    /// The paper's propagation-blocking outer-product algorithm.
    Pb,
    /// HeapSpGEMM (k-way merge accumulator).
    Heap,
    /// HashSpGEMM (open-addressing hash accumulator).
    Hash,
    /// HashVecSpGEMM (grouped-probing hash accumulator).
    HashVec,
    /// SPA (dense accumulator).
    Spa,
}

impl PlannedKernel {
    /// The kernels the planner chooses between, in fixed decision order.
    pub fn candidates() -> &'static [PlannedKernel] {
        &[
            PlannedKernel::Pb,
            PlannedKernel::Heap,
            PlannedKernel::Hash,
            PlannedKernel::HashVec,
            PlannedKernel::Spa,
        ]
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            PlannedKernel::Unplanned => "unplanned",
            PlannedKernel::Pb => "PB-SpGEMM",
            PlannedKernel::Heap => "HeapSpGEMM",
            PlannedKernel::Hash => "HashSpGEMM",
            PlannedKernel::HashVec => "HashVecSpGEMM",
            PlannedKernel::Spa => "SpaSpGEMM",
        }
    }

    /// The column baseline implementing this kernel, `None` for the PB
    /// kernel (and the `Unplanned` marker).
    pub fn baseline(&self) -> Option<Baseline> {
        match self {
            PlannedKernel::Heap => Some(Baseline::Heap),
            PlannedKernel::Hash => Some(Baseline::Hash),
            PlannedKernel::HashVec => Some(Baseline::HashVec),
            PlannedKernel::Spa => Some(Baseline::Spa),
            PlannedKernel::Pb | PlannedKernel::Unplanned => None,
        }
    }

    fn index(&self) -> usize {
        match self {
            PlannedKernel::Unplanned => usize::MAX,
            PlannedKernel::Pb => 0,
            PlannedKernel::Heap => 1,
            PlannedKernel::Hash => 2,
            PlannedKernel::HashVec => 3,
            PlannedKernel::Spa => 4,
        }
    }

    fn from_index(i: usize) -> Option<PlannedKernel> {
        PlannedKernel::candidates().get(i).copied()
    }
}

/// Rows sampled for the compression-factor estimate (evenly spaced).
pub const SIGNAL_SAMPLE_ROWS: usize = 48;
/// Upper bound on the flop the sampler is allowed to expand.
pub const SIGNAL_SAMPLE_FLOP_BUDGET: u64 = 1 << 16;
/// `cf_estimate` below this picks PB-SpGEMM — the paper's Fig. 7 crossover.
pub const PLANNER_CF_PB_CEILING: f64 = 4.0;
/// `cf_estimate` at or above this prefers grouped hash probing (HashVec)
/// over plain hashing: high compression means long duplicate runs.
pub const PLANNER_HASHVEC_CF: f64 = 16.0;
/// Multiplications below this flop count go to the heap baseline outright.
pub const PLANNER_TINY_FLOP: u64 = 1 << 14;
/// Estimated output density (`nnz(C) / nrows·ncols`) above which the dense
/// SPA accumulator is chosen.
pub const PLANNER_SPA_DENSITY: f64 = 0.25;
/// A calibrated challenger must beat the incumbent kernel's rate by this
/// factor before the planner switches (hysteresis).
pub const PLANNER_SWITCH_MARGIN: f64 = 1.25;
/// Weight of the newest observation in the per-cell GFLOPS moving average.
pub const PLANNER_EMA_WEIGHT: f64 = 0.25;
/// The calibration file is rewritten every this many observations.
pub const PLANNER_PERSIST_EVERY: u64 = 8;
/// Environment variable naming the persisted calibration table.
pub const PLANNER_CALIBRATION_ENV: &str = "PB_PLANNER_CALIBRATION";

const NKERNELS: usize = 5;
const CF_BUCKETS: usize = 3;
const FLOP_BUCKETS: usize = 3;
const NBUCKETS: usize = CF_BUCKETS * FLOP_BUCKETS;
const STICKY_SLOTS: usize = 64;

/// Cheap pre-multiply signals for one `A·B`, measured from the offset
/// arrays plus a bounded row sample — never from the full product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Signals {
    /// Rows of the product.
    pub nrows: usize,
    /// Columns of the product.
    pub ncols: usize,
    /// `nnz(A)`.
    pub nnz_a: usize,
    /// `nnz(B)`.
    pub nnz_b: usize,
    /// Exact flop of the multiplication (one offset-array stream).
    pub flop: u64,
    /// Estimated compression factor `flop / nnz(C)` (≥ 1).
    pub cf_estimate: f64,
    /// Max-over-mean row nnz of `B`.
    pub row_skew: f64,
    /// Max-over-mean flop of the projected propagation bins.
    pub bin_skew: f64,
    /// `flop / (nnz(A) + nnz(B))`.
    pub flop_per_nnz: f64,
}

impl Signals {
    /// Measures the signals for `A·B` on CSR operands.
    ///
    /// Cost: `O(nnz(A) + nrows(B))` for the flop and skew passes plus the
    /// bounded sample for the `cf` estimate; deterministic for identical
    /// inputs (the sample rows are evenly spaced, never random).
    pub fn measure<Ta: Scalar, Tb: Scalar>(a: &Csr<Ta>, b: &Csr<Tb>, config: &PbConfig) -> Signals {
        let (nrows, inner) = a.shape();
        let ncols = b.ncols();
        let b_rowptr = b.rowptr();
        let row_nnz = |k: usize| (b_rowptr[k + 1] - b_rowptr[k]) as u64;

        // Exact flop: one pass over A's column indices.
        let mut flop = 0u64;
        let mut a_col_nnz = vec![0u32; inner];
        for &k in a.colidx() {
            flop += row_nnz(k as usize);
            a_col_nnz[k as usize] += 1;
        }

        // Row-nnz skew of B.
        let max_row = (0..b.nrows()).map(row_nnz).max().unwrap_or(0);
        let row_skew = if b.nnz() == 0 {
            0.0
        } else {
            max_row as f64 / (b.nnz() as f64 / b.nrows() as f64)
        };

        // Projected bin-occupancy skew: distribute each outer product k's
        // flop over the bin count the config would resolve, in contiguous
        // ranges of the inner dimension (the Range mapping's geometry).
        let nbins = config.resolve_nbins(flop, 16, nrows).max(1);
        let mut bin_flop = vec![0u64; nbins];
        for (k, &cnt) in a_col_nnz.iter().enumerate() {
            if cnt > 0 {
                let bin = k * nbins / inner.max(1);
                bin_flop[bin.min(nbins - 1)] += cnt as u64 * row_nnz(k);
            }
        }
        let max_bin = bin_flop.iter().copied().max().unwrap_or(0);
        let mean_bin = flop as f64 / nbins as f64;
        let bin_skew = if mean_bin == 0.0 {
            0.0
        } else {
            max_bin as f64 / mean_bin
        };

        // cf estimate from an evenly spaced sample of output rows: expand
        // each sampled row exactly (distinct-column count via a hash set)
        // and scale.  Deterministic: fixed stride, fixed budget.
        let mut sampled_flop = 0u64;
        let mut sampled_nnz = 0u64;
        let mut sampled_rows = 0usize;
        let stride = (nrows / SIGNAL_SAMPLE_ROWS).max(1);
        let a_rowptr = a.rowptr();
        let a_colidx = a.colidx();
        let b_colidx = b.colidx();
        let mut cols: HashSet<u32> = HashSet::new();
        for r in (0..nrows).step_by(stride) {
            if sampled_rows >= SIGNAL_SAMPLE_ROWS || sampled_flop >= SIGNAL_SAMPLE_FLOP_BUDGET {
                break;
            }
            let (lo, hi) = (a_rowptr[r], a_rowptr[r + 1]);
            if lo == hi {
                continue;
            }
            cols.clear();
            for &k in &a_colidx[lo..hi] {
                let (blo, bhi) = (b_rowptr[k as usize], b_rowptr[k as usize + 1]);
                sampled_flop += (bhi - blo) as u64;
                cols.extend(&b_colidx[blo..bhi]);
            }
            sampled_nnz += cols.len() as u64;
            sampled_rows += 1;
        }
        let cf_estimate = if sampled_nnz == 0 {
            1.0
        } else {
            (sampled_flop as f64 / sampled_nnz as f64).max(1.0)
        };

        let dense_nnz = nnz_sum(a.nnz(), b.nnz());
        Signals {
            nrows,
            ncols,
            nnz_a: a.nnz(),
            nnz_b: b.nnz(),
            flop,
            cf_estimate,
            row_skew,
            bin_skew,
            flop_per_nnz: if dense_nnz == 0 {
                0.0
            } else {
                flop as f64 / dense_nnz as f64
            },
        }
    }

    /// Estimated `nnz(C)` implied by the flop and the `cf` estimate.
    pub fn estimated_nnz_c(&self) -> u64 {
        (self.flop as f64 / self.cf_estimate).round() as u64
    }

    /// Estimated output density `nnz(C) / (nrows · ncols)`.
    pub fn estimated_density(&self) -> f64 {
        let cells = self.nrows as u64 * self.ncols as u64;
        if cells == 0 {
            0.0
        } else {
            self.estimated_nnz_c() as f64 / cells as f64
        }
    }

    /// Calibration bucket: cf regime × flop magnitude.
    fn bucket(&self) -> usize {
        let cf = if self.cf_estimate < 2.0 {
            0
        } else if self.cf_estimate < 8.0 {
            1
        } else {
            2
        };
        let size = if self.flop < (1 << 18) {
            0
        } else if self.flop < (1 << 24) {
            1
        } else {
            2
        };
        cf * FLOP_BUCKETS + size
    }

    /// Deterministic input signature for decision stickiness.
    fn signature(&self) -> u64 {
        // FNV-1a over the discrete shape/size facts — identical inputs hash
        // identically on every run (no RandomState).
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            self.nrows as u64,
            self.ncols as u64,
            self.nnz_a as u64,
            self.nnz_b as u64,
            self.flop,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

fn nnz_sum(a: usize, b: usize) -> u64 {
    a as u64 + b as u64
}

/// The learned per-host kernel-selection table.  See the module docs for
/// the decision procedure; share one planner across engines via `Arc` so
/// everything it learns is pooled.
#[derive(Debug)]
pub struct Planner {
    /// EMA of achieved GFLOPS per (bucket, kernel), as f64 bits; 0 = no data.
    cells: [[AtomicU64; NKERNELS]; NBUCKETS],
    /// Observation count per (bucket, kernel).
    counts: [[AtomicU64; NKERNELS]; NBUCKETS],
    /// Sticky decisions: slot holds `(signature & !0x7) | kernel_index`.
    sticky: [AtomicU64; STICKY_SLOTS],
    decisions: AtomicU64,
    observations: AtomicU64,
}

impl Default for Planner {
    fn default() -> Self {
        Self::new()
    }
}

impl Planner {
    /// Creates an empty planner (prior-only until observations arrive).
    pub fn new() -> Self {
        Planner {
            cells: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            counts: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            sticky: std::array::from_fn(|_| AtomicU64::new(u64::MAX)),
            decisions: AtomicU64::new(0),
            observations: AtomicU64::new(0),
        }
    }

    /// Creates a planner, preloading the calibration table from the file
    /// named by `PB_PLANNER_CALIBRATION` when that is set and readable.
    pub fn from_env() -> Self {
        let planner = Planner::new();
        if let Ok(path) = std::env::var(PLANNER_CALIBRATION_ENV) {
            if let Ok(text) = std::fs::read_to_string(&path) {
                planner.load_calibration(&text);
            }
        }
        planner
    }

    /// Decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Measured runs folded into the calibration table so far.
    pub fn observations(&self) -> u64 {
        self.observations.load(Ordering::Relaxed)
    }

    /// The calibrated GFLOPS estimate for a kernel on inputs like
    /// `signals`, when the table has data for it.
    pub fn calibrated_gflops(&self, kernel: PlannedKernel, signals: &Signals) -> Option<f64> {
        let (b, k) = (signals.bucket(), kernel.index());
        if k >= NKERNELS || self.counts[b][k].load(Ordering::Relaxed) == 0 {
            return None;
        }
        Some(f64::from_bits(self.cells[b][k].load(Ordering::Relaxed)))
    }

    /// The fixed prior described in the module docs — what the planner
    /// picks before any calibration data exists.
    pub fn prior(&self, signals: &Signals) -> PlannedKernel {
        if signals.flop < PLANNER_TINY_FLOP {
            PlannedKernel::Heap
        } else if signals.estimated_density() > PLANNER_SPA_DENSITY {
            PlannedKernel::Spa
        } else if signals.cf_estimate < PLANNER_CF_PB_CEILING {
            PlannedKernel::Pb
        } else if signals.cf_estimate >= PLANNER_HASHVEC_CF {
            PlannedKernel::HashVec
        } else {
            PlannedKernel::Hash
        }
    }

    /// Picks the kernel for inputs with these signals.
    ///
    /// Deterministic: identical signals against an unchanged table always
    /// return the same kernel, and the sticky/hysteresis state only ever
    /// *preserves* an earlier identical decision, never flips it.
    pub fn decide(&self, signals: &Signals) -> PlannedKernel {
        let _span = crate::trace::span(crate::trace::SpanName::PlannerDecide);
        self.decisions.fetch_add(1, Ordering::Relaxed);
        let bucket = signals.bucket();

        // Calibrated argmax, in fixed candidate order so ties break
        // deterministically.
        let mut best: Option<(PlannedKernel, f64)> = None;
        let mut measured = 0usize;
        for &k in PlannedKernel::candidates() {
            if self.counts[bucket][k.index()].load(Ordering::Relaxed) == 0 {
                continue;
            }
            measured += 1;
            let rate = f64::from_bits(self.cells[bucket][k.index()].load(Ordering::Relaxed));
            if best.is_none_or(|(_, r)| rate > r) {
                best = Some((k, rate));
            }
        }

        let sig = signals.signature();
        let slot = (sig % STICKY_SLOTS as u64) as usize;
        let stored = self.sticky[slot].load(Ordering::Relaxed);
        let previous = if stored != u64::MAX && (stored & !0x7) == (sig & !0x7) {
            PlannedKernel::from_index((stored & 0x7) as usize)
        } else {
            None
        };

        // The calibrated winner needs at least two measured kernels to
        // outrank the prior (one lone measurement says nothing relative).
        let choice = match (best, measured >= 2) {
            (Some((winner, rate)), true) => match previous {
                // Hysteresis: keep the incumbent unless the winner beats
                // its calibrated rate by the switch margin.
                Some(prev) if prev != winner => match self.calibrated_gflops(prev, signals) {
                    Some(prev_rate) if rate <= prev_rate * PLANNER_SWITCH_MARGIN => prev,
                    _ => winner,
                },
                _ => winner,
            },
            _ => previous.unwrap_or_else(|| self.prior(signals)),
        };

        self.sticky[slot].store((sig & !0x7) | choice.index() as u64, Ordering::Relaxed);
        // Point event carrying the chosen kernel's index, so a trace shows
        // *what* was decided, not just how long deciding took.
        crate::trace::instant(crate::trace::SpanName::PlannerDecide, choice.index() as u64);
        choice
    }

    /// Folds one measured run into the calibration table: `seconds` of wall
    /// time for a multiply with these signals on this kernel.
    ///
    /// Publication uses compare-exchange like
    /// [`AutoTune`](crate::config::AutoTune): a lost race drops this step
    /// (the next observation re-converges the average) instead of looping.
    pub fn observe(&self, kernel: PlannedKernel, signals: &Signals, seconds: f64) {
        crate::trace::instant(
            crate::trace::SpanName::PlannerObserve,
            kernel.index() as u64,
        );
        let k = kernel.index();
        // `seconds` must be a positive finite measurement; NaN and zero both
        // land in the reject arm.
        if k >= NKERNELS || seconds.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return;
        }
        let bucket = signals.bucket();
        let rate = signals.flop as f64 / seconds / 1e9;
        let cell = &self.cells[bucket][k];
        let current = cell.load(Ordering::Relaxed);
        let had_data = self.counts[bucket][k].load(Ordering::Relaxed) > 0;
        let updated = if had_data {
            let ema = f64::from_bits(current);
            ema + PLANNER_EMA_WEIGHT * (rate - ema)
        } else {
            rate
        };
        if cell
            .compare_exchange(
                current,
                updated.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            )
            .is_ok()
        {
            self.counts[bucket][k].fetch_add(1, Ordering::Relaxed);
        }
        let seen = self.observations.fetch_add(1, Ordering::Relaxed) + 1;
        if seen.is_multiple_of(PLANNER_PERSIST_EVERY) {
            self.persist_if_configured();
        }
    }

    /// Writes the calibration table to the `PB_PLANNER_CALIBRATION` file
    /// (atomic temp-file + rename), when that variable is set.  No-op —
    /// never an error — otherwise.
    pub fn persist_if_configured(&self) {
        let Ok(path) = std::env::var(PLANNER_CALIBRATION_ENV) else {
            return;
        };
        let text = self.dump_calibration();
        let tmp = format!("{path}.tmp.{}", std::process::id());
        if std::fs::write(&tmp, text).is_ok() {
            let _ = std::fs::rename(&tmp, &path);
        }
    }

    /// Serialises the table as the plain-text calibration format: a header
    /// line, then one `bucket kernel count gflops` line per populated cell.
    pub fn dump_calibration(&self) -> String {
        let mut out = String::from("pb-planner-calibration v1\n");
        for bucket in 0..NBUCKETS {
            for &k in PlannedKernel::candidates() {
                let count = self.counts[bucket][k.index()].load(Ordering::Relaxed);
                if count == 0 {
                    continue;
                }
                let rate = f64::from_bits(self.cells[bucket][k.index()].load(Ordering::Relaxed));
                out.push_str(&format!("{bucket} {} {count} {rate:.6}\n", k.index()));
            }
        }
        out
    }

    /// Merges a serialised calibration table (see
    /// [`dump_calibration`](Planner::dump_calibration)) into this planner,
    /// ignoring malformed lines — a damaged file degrades to the prior
    /// instead of failing the multiply.
    pub fn load_calibration(&self, text: &str) {
        let mut lines = text.lines();
        if lines
            .next()
            .is_none_or(|h| !h.starts_with("pb-planner-calibration"))
        {
            return;
        }
        for line in lines {
            let mut parts = line.split_whitespace();
            let (Some(b), Some(k), Some(c), Some(r)) =
                (parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let (Ok(bucket), Ok(kernel), Ok(count), Ok(rate)) = (
                b.parse::<usize>(),
                k.parse::<usize>(),
                c.parse::<u64>(),
                r.parse::<f64>(),
            ) else {
                continue;
            };
            if bucket >= NBUCKETS || kernel >= NKERNELS || count == 0 || !rate.is_finite() {
                continue;
            }
            self.cells[bucket][kernel].store(rate.to_bits(), Ordering::Relaxed);
            self.counts[bucket][kernel].store(count, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::{banded, erdos_renyi_square, rmat_square};

    fn signals_for(a: &Csr<f64>) -> Signals {
        Signals::measure(a, a, &PbConfig::default())
    }

    #[test]
    fn signals_report_exact_flop_and_consistent_estimates() {
        let a = erdos_renyi_square(8, 6, 3);
        let s = signals_for(&a);
        assert_eq!(s.flop, pb_sparse::stats::flop_csr(&a, &a));
        assert_eq!(s.nnz_a, a.nnz());
        assert!(s.cf_estimate >= 1.0);
        assert!(s.row_skew >= 1.0);
        assert!(s.bin_skew >= 1.0);
        assert!(s.flop_per_nnz > 0.0);
        // The estimator should land in the right regime: the true cf of an
        // ER square at this density is low single digits.
        let true_cf = s.flop as f64 / pb_sparse::reference::multiply_csr(&a, &a).nnz() as f64;
        assert!(
            (s.cf_estimate / true_cf) > 0.5 && (s.cf_estimate / true_cf) < 2.0,
            "estimate {} vs true {true_cf}",
            s.cf_estimate
        );
    }

    #[test]
    fn signals_are_deterministic() {
        let a = rmat_square(8, 8, 7);
        assert_eq!(signals_for(&a), signals_for(&a));
    }

    #[test]
    fn prior_follows_documented_thresholds() {
        let p = Planner::new();
        let mut s = signals_for(&erdos_renyi_square(9, 8, 1));
        // Low-cf, non-tiny: PB.
        s.flop = PLANNER_TINY_FLOP * 4;
        s.cf_estimate = 2.0;
        s.nrows = 1 << 9;
        s.ncols = 1 << 9;
        assert_eq!(p.prior(&s), PlannedKernel::Pb);
        // Tiny: heap.
        let mut tiny = s;
        tiny.flop = PLANNER_TINY_FLOP - 1;
        assert_eq!(p.prior(&tiny), PlannedKernel::Heap);
        // High cf: hash family, vectorised once extreme.
        let mut hashy = s;
        hashy.cf_estimate = PLANNER_CF_PB_CEILING + 1.0;
        assert_eq!(p.prior(&hashy), PlannedKernel::Hash);
        hashy.cf_estimate = PLANNER_HASHVEC_CF;
        assert_eq!(p.prior(&hashy), PlannedKernel::HashVec);
        // Near-dense output: SPA.
        // Keep the flop above the tiny threshold so the density rule (not
        // the tiny-input rule) is what fires.
        let mut dense = s;
        dense.nrows = 64;
        dense.ncols = 64;
        dense.flop = 64 * 64 * 8;
        dense.cf_estimate = 1.5;
        assert!(dense.estimated_density() > PLANNER_SPA_DENSITY);
        assert_eq!(p.prior(&dense), PlannedKernel::Spa);
    }

    #[test]
    fn decisions_are_deterministic_and_sticky_under_repetition() {
        let a = rmat_square(8, 8, 11);
        let s = signals_for(&a);
        let p = Planner::new();
        let first = p.decide(&s);
        for _ in 0..20 {
            assert_eq!(p.decide(&s), first);
        }
        assert_eq!(p.decisions(), 21);
    }

    #[test]
    fn calibration_with_two_kernels_overrides_the_prior() {
        let a = erdos_renyi_square(8, 6, 5);
        let s = signals_for(&a);
        let p = Planner::new();
        let prior = p.prior(&s);
        // Feed measurements: the prior's pick is slow, Spa is 10x faster.
        let slow = s.flop as f64 / 1e9; // 1 GFLOPS
        p.observe(prior, &s, slow);
        p.observe(PlannedKernel::Spa, &s, slow / 10.0);
        assert_eq!(p.decide(&s), PlannedKernel::Spa);
        assert_eq!(p.observations(), 2);
        assert!(p.calibrated_gflops(PlannedKernel::Spa, &s).unwrap() > 9.0);
    }

    #[test]
    fn hysteresis_keeps_the_incumbent_inside_the_margin() {
        let a = erdos_renyi_square(8, 6, 9);
        let s = signals_for(&a);
        let p = Planner::new();
        let t = s.flop as f64 / 1e9;
        p.observe(PlannedKernel::Pb, &s, t); // 1.0 GFLOPS
        p.observe(PlannedKernel::Hash, &s, t); // 1.0 GFLOPS
        let incumbent = p.decide(&s);
        // A challenger only marginally faster (inside the 1.25x margin)
        // must not flip the decision...
        let challenger = if incumbent == PlannedKernel::Pb {
            PlannedKernel::Hash
        } else {
            PlannedKernel::Pb
        };
        p.observe(challenger, &s, t / 1.15);
        assert_eq!(p.decide(&s), incumbent, "switched inside the margin");
        // ...while a decisive one (beyond the margin) must.
        for _ in 0..16 {
            p.observe(challenger, &s, t / 3.0);
        }
        assert_eq!(p.decide(&s), challenger, "never switched past the margin");
    }

    #[test]
    fn calibration_roundtrips_through_the_text_format() {
        let a = banded(512, 9, 2);
        let s = signals_for(&a);
        let p = Planner::new();
        p.observe(PlannedKernel::Pb, &s, 0.001);
        p.observe(PlannedKernel::Heap, &s, 0.004);
        let dump = p.dump_calibration();
        assert!(dump.starts_with("pb-planner-calibration v1"));
        let q = Planner::new();
        q.load_calibration(&dump);
        for &k in PlannedKernel::candidates() {
            assert_eq!(
                p.calibrated_gflops(k, &s),
                q.calibrated_gflops(k, &s),
                "{}",
                k.name()
            );
        }
        // Garbage degrades to no-op, not a panic.
        q.load_calibration("not a calibration file\n1 2 3");
        q.load_calibration("pb-planner-calibration v1\nbogus line\n99 99 1 1.0\n");
    }

    #[test]
    fn kernel_names_and_baseline_mapping() {
        assert_eq!(PlannedKernel::candidates().len(), 5);
        assert_eq!(PlannedKernel::Pb.baseline(), None);
        assert_eq!(PlannedKernel::HashVec.baseline(), Some(Baseline::HashVec));
        assert_eq!(PlannedKernel::default(), PlannedKernel::Unplanned);
        for &k in PlannedKernel::candidates() {
            assert!(!k.name().is_empty());
            assert_eq!(PlannedKernel::from_index(k.index()), Some(k));
        }
    }
}
