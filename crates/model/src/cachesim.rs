//! A small set-associative cache simulator used to *validate* the Table II
//! access-pattern claims rather than assume them.
//!
//! The analytical model in [`crate::access`] asserts, for example, that a
//! column SpGEMM algorithm reads `A` roughly `d` times from memory because
//! its column gathers have no locality, while an outer-product algorithm
//! streams `A` exactly once.  This module replays the *address streams* of
//! those two access disciplines against an LRU set-associative cache and
//! counts the actual miss traffic, so the unit tests (and the access-pattern
//! table) can check the claim instead of restating it.
//!
//! The simulator models a single cache level.  It is deliberately simple —
//! no prefetcher, no write-allocate subtleties — because the quantity of
//! interest is the ratio between streamed and irregular traffic, which a
//! plain LRU model already captures.

use pb_sparse::{Csr, Scalar};

/// Geometry of the simulated cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Cache-line size in bytes.
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub associativity: usize,
}

impl Default for CacheConfig {
    /// A Skylake-SP-like private L2: 1 MiB, 64-byte lines, 16-way.
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 1 << 20,
            line_bytes: 64,
            associativity: 16,
        }
    }
}

impl CacheConfig {
    /// A tiny cache for tests that need evictions to happen quickly.
    pub fn tiny(capacity_bytes: usize) -> Self {
        CacheConfig {
            capacity_bytes,
            line_bytes: 64,
            associativity: 4,
        }
    }

    /// Number of sets implied by the geometry (at least one).
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / self.line_bytes / self.associativity).max(1)
    }
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was already resident.
    Hit,
    /// The line had to be fetched from memory.
    Miss,
}

/// An LRU set-associative cache over a synthetic byte-address space.
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    /// `sets[s]` holds `(tag, last_use)` pairs, at most `associativity` each.
    sets: Vec<Vec<(u64, u64)>>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl CacheSim {
    /// Creates an empty (cold) cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        CacheSim {
            config,
            sets: vec![Vec::new(); config.sets()],
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Number of hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Bytes transferred from memory: one full line per miss.
    pub fn miss_traffic_bytes(&self) -> u64 {
        self.misses * self.config.line_bytes as u64
    }

    /// Fraction of accesses that hit (`0` when nothing was accessed).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Forgets all cached lines but keeps the hit/miss counters.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Resets both the contents and the counters.
    pub fn reset(&mut self) {
        self.flush();
        self.hits = 0;
        self.misses = 0;
        self.clock = 0;
    }

    /// Touches the single byte address `addr`.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.clock += 1;
        let line = addr / self.config.line_bytes as u64;
        let set_index = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[set_index];

        if let Some(entry) = set.iter_mut().find(|(t, _)| *t == tag) {
            entry.1 = self.clock;
            self.hits += 1;
            return AccessOutcome::Hit;
        }

        self.misses += 1;
        if set.len() == self.config.associativity {
            // Evict the least-recently-used way.
            let lru = set
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(i, _)| i)
                .expect("a full set has at least one way");
            set.swap_remove(lru);
        }
        set.push((tag, self.clock));
        AccessOutcome::Miss
    }

    /// Touches every line of the byte range `[start, start + len)`.
    pub fn access_range(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let line = self.config.line_bytes as u64;
        let first = start / line;
        let last = (start + len - 1) / line;
        for l in first..=last {
            self.access(l * line);
        }
    }
}

/// Memory-traffic report of one simulated access stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficReport {
    /// Bytes the algorithm *asked* for (sum of logical access sizes).
    pub requested_bytes: u64,
    /// Bytes actually fetched from memory (misses × line size).
    pub memory_traffic_bytes: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl TrafficReport {
    fn from_sim(sim: &CacheSim, requested_bytes: u64) -> Self {
        TrafficReport {
            requested_bytes,
            memory_traffic_bytes: sim.miss_traffic_bytes(),
            hits: sim.hits(),
            misses: sim.misses(),
        }
    }

    /// How many times the requested data was effectively read from memory
    /// (`1.0` means perfect streaming, `d` means the paper's worst case).
    pub fn reread_factor(&self) -> f64 {
        if self.requested_bytes == 0 {
            0.0
        } else {
            self.memory_traffic_bytes as f64 / self.requested_bytes as f64
        }
    }
}

/// Bytes occupied by one stored nonzero of `A` in the simulated address
/// space: a 4-byte index plus an 8-byte value, padded to 16 bytes to match
/// the paper's `b = 16` accounting.
pub const BYTES_PER_ENTRY: u64 = 16;

/// Simulates the *irregularly gathered* operand of a Gustavson (column /
/// row) SpGEMM.
///
/// In the row-wise formulation (both operands CSR), row `i` of `C` gathers
/// row `B(k, :)` for every nonzero `A(i, k)`; in the column-wise formulation
/// the roles swap and `A`'s columns are the gathered operand.  Either way the
/// gathered operand is fetched once per occurrence of its index in the
/// driving operand — `d` times in expectation for ER matrices — with no
/// useful temporal order.  This function replays exactly that stream over
/// the rows of `b`, driven by the nonzeros of `a`.
pub fn gustavson_gather_traffic<T: Scalar, U: Scalar>(
    a: &Csr<T>,
    b: &Csr<U>,
    config: CacheConfig,
) -> TrafficReport {
    let mut sim = CacheSim::new(config);
    let rowptr = b.rowptr();
    let mut requested = 0u64;
    for i in 0..a.nrows() {
        for &k in a.row(i).0 {
            let k = k as usize;
            let start = rowptr[k] as u64 * BYTES_PER_ENTRY;
            let len = (rowptr[k + 1] - rowptr[k]) as u64 * BYTES_PER_ENTRY;
            sim.access_range(start, len);
            requested += len;
        }
    }
    TrafficReport::from_sim(&sim, requested)
}

/// Simulates the accesses an **outer-product** algorithm makes to the same
/// operand: one sequential pass over all stored entries.
pub fn outer_product_stream_traffic<T: Scalar>(b: &Csr<T>, config: CacheConfig) -> TrafficReport {
    let mut sim = CacheSim::new(config);
    let total = b.nnz() as u64 * BYTES_PER_ENTRY;
    sim.access_range(0, total);
    TrafficReport::from_sim(&sim, total)
}

/// Simulates one sequential pass over an array of `bytes` bytes (the STREAM
/// access discipline all PB-SpGEMM phases follow).
pub fn stream_traffic(bytes: u64, config: CacheConfig) -> TrafficReport {
    let mut sim = CacheSim::new(config);
    sim.access_range(0, bytes);
    TrafficReport::from_sim(&sim, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::erdos_renyi_square;

    #[test]
    fn repeated_access_to_one_line_hits() {
        let mut sim = CacheSim::new(CacheConfig::default());
        assert_eq!(sim.access(0), AccessOutcome::Miss);
        assert_eq!(sim.access(8), AccessOutcome::Hit);
        assert_eq!(sim.access(63), AccessOutcome::Hit);
        assert_eq!(sim.access(64), AccessOutcome::Miss);
        assert_eq!(sim.hits(), 2);
        assert_eq!(sim.misses(), 2);
        assert_eq!(sim.miss_traffic_bytes(), 128);
        assert!((sim.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn working_set_larger_than_capacity_evicts_via_lru() {
        // 4 KiB, 4-way, 64 B lines -> 16 sets, 64 lines total.
        let cfg = CacheConfig::tiny(4096);
        let mut sim = CacheSim::new(cfg);
        // Touch 128 distinct lines: all misses.
        for l in 0..128u64 {
            assert_eq!(sim.access(l * 64), AccessOutcome::Miss);
        }
        // The first 64 lines have been evicted by the second 64.
        for l in 0..64u64 {
            assert_eq!(
                sim.access(l * 64),
                AccessOutcome::Miss,
                "line {l} should have been evicted"
            );
        }
        // A working set that fits (last 16 lines) stays resident.
        sim.reset();
        for _ in 0..4 {
            for l in 0..16u64 {
                sim.access(l * 64);
            }
        }
        assert_eq!(sim.misses(), 16);
        assert_eq!(sim.hits(), 48);
    }

    #[test]
    fn lru_prefers_evicting_stale_lines() {
        // One set only: capacity 256 B, 4-way, 64 B lines.
        let cfg = CacheConfig {
            capacity_bytes: 256,
            line_bytes: 64,
            associativity: 4,
        };
        let mut sim = CacheSim::new(cfg);
        assert_eq!(cfg.sets(), 1);
        for l in 0..4u64 {
            sim.access(l * 64);
        }
        // Re-touch line 0 so line 1 becomes the LRU victim.
        sim.access(0);
        sim.access(4 * 64); // evicts line 1
        assert_eq!(sim.access(0), AccessOutcome::Hit);
        assert_eq!(
            sim.access(64),
            AccessOutcome::Miss,
            "line 1 was the LRU victim"
        );
    }

    #[test]
    fn streaming_traffic_equals_the_array_size() {
        let cfg = CacheConfig::default();
        let report = stream_traffic(10 * 1024 * 1024, cfg);
        // A cold sequential pass fetches every line exactly once.
        assert_eq!(report.memory_traffic_bytes, 10 * 1024 * 1024);
        assert!((report.reread_factor() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gustavson_rereads_the_gathered_operand_roughly_d_times() {
        // ER matrix with d = 8 nonzeros per row/column, sized well beyond the
        // tiny simulated cache so gathers find no stale reuse.
        let d = 8u32;
        let a = erdos_renyi_square(11, d, 5);
        let cfg = CacheConfig::tiny(16 * 1024);

        let gathered = gustavson_gather_traffic(&a, &a, cfg);
        let streamed = outer_product_stream_traffic(&a, cfg);

        // Outer product streams the operand once.
        assert!((streamed.reread_factor() - 1.0).abs() < 0.05);
        // Gustavson fetches roughly d times as much of it from memory
        // (cache-line over-fetch pushes the ratio slightly above d).
        let ratio = gathered.memory_traffic_bytes as f64 / streamed.memory_traffic_bytes as f64;
        assert!(
            ratio > 0.5 * d as f64 && ratio < 2.0 * d as f64,
            "expected ≈{d}x re-read of the gathered operand, measured {ratio:.2}x"
        );
        // And the reread factor agrees with Table II's "d accesses" row.
        assert!(gathered.reread_factor() > 0.8);
    }

    #[test]
    fn gather_traffic_collapses_when_the_operand_fits_in_cache() {
        // If the gathered operand fits in the cache, the repeated gathers all
        // hit and the irregularity costs (almost) nothing — the reason the
        // paper's worst case needs matrices much larger than cache.
        let a = erdos_renyi_square(7, 4, 9);
        let big_cache = CacheConfig::default(); // 1 MiB >> the whole matrix
        let gathered = gustavson_gather_traffic(&a, &a, big_cache);
        let footprint = a.nnz() as u64 * BYTES_PER_ENTRY;
        assert!(gathered.memory_traffic_bytes <= 2 * footprint);
    }

    #[test]
    fn empty_inputs_produce_no_traffic() {
        let cfg = CacheConfig::default();
        assert_eq!(stream_traffic(0, cfg).memory_traffic_bytes, 0);
        let empty = pb_sparse::Csr::<f64>::empty(8, 8);
        let report = gustavson_gather_traffic(&empty, &empty, cfg);
        assert_eq!(report.memory_traffic_bytes, 0);
        assert_eq!(report.reread_factor(), 0.0);
    }
}
