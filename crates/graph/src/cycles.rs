//! Closed-walk counting and short-cycle detection via matrix powers.
//!
//! The trace of `A^k` counts the closed walks of length `k` in a directed
//! graph — the quantity behind the short-directed-cycle detection of Yuster
//! and Zwick (reference \[5\] of the paper).  Every power is one SpGEMM, so the
//! kernel naturally chains the workspace's multiplication engines.

use pb_sparse::{ops, Csr};

use pb_spgemm::SpGemm;

/// Number of closed walks of length `k` (per starting vertex summed), i.e.
/// `trace(A^k)`, for the directed graph with 0/1 adjacency pattern taken from
/// `adjacency`.  `k` must be at least 1.
pub fn count_closed_walks<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    k: usize,
    engine: &SpGemm,
) -> u64 {
    assert!(k >= 1, "walk length must be at least 1");
    assert_eq!(
        adjacency.nrows(),
        adjacency.ncols(),
        "cycle detection needs a square matrix"
    );
    let a = adjacency.map_values(|_| 1.0f64);
    let power = matrix_power(&a, k, engine);
    ops::diagonal(&power).iter().sum::<f64>().round() as u64
}

/// Returns `true` when the directed graph contains at least one closed walk
/// of length exactly `k` (for `k ≤ 3` and simple digraphs without self loops
/// this coincides with containing a directed cycle of length `k`).
pub fn has_cycle_of_length<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    k: usize,
    engine: &SpGemm,
) -> bool {
    count_closed_walks(adjacency, k, engine) > 0
}

/// Computes `A^k` by iterated multiplication with the given engine.
fn matrix_power(a: &Csr<f64>, k: usize, engine: &SpGemm) -> Csr<f64> {
    let mut power = a.clone();
    for _ in 1..k {
        power = engine.multiply(&power, a);
    }
    power
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::rmat_square;
    use pb_sparse::Coo;

    fn directed_triangle_plus_tail() -> Csr<f64> {
        // 0 -> 1 -> 2 -> 0 (a 3-cycle) and 2 -> 3 (a tail).
        Coo::from_entries(
            4,
            4,
            vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0), (2, 3, 1.0)],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn triangle_is_detected_at_length_three_only() {
        let g = directed_triangle_plus_tail();
        let engine = SpGemm::pb();
        assert!(!has_cycle_of_length(&g, 1, &engine), "no self loops");
        assert!(!has_cycle_of_length(&g, 2, &engine), "no 2-cycles");
        assert!(has_cycle_of_length(&g, 3, &engine));
        // Each vertex of the 3-cycle contributes one closed walk of length 3.
        assert_eq!(count_closed_walks(&g, 3, &engine), 3);
        // Length 6 walks go around twice.
        assert_eq!(count_closed_walks(&g, 6, &engine), 3);
    }

    #[test]
    fn two_cycle_and_self_loop() {
        let g = Coo::from_entries(3, 3, vec![(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)])
            .unwrap()
            .to_csr();
        let engine = SpGemm::pb();
        // The self loop is a closed walk of every length.
        assert_eq!(count_closed_walks(&g, 1, &engine), 1);
        // Length 2: the 2-cycle contributes 2 (one per endpoint) plus the loop.
        assert_eq!(count_closed_walks(&g, 2, &engine), 3);
        assert!(has_cycle_of_length(&g, 2, &engine));
    }

    #[test]
    fn dags_have_no_closed_walks() {
        // A 4-vertex DAG (edges only go from lower to higher ids).
        let g = Coo::from_entries(
            4,
            4,
            vec![(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (2, 3, 1.0)],
        )
        .unwrap()
        .to_csr();
        for k in 1..=4 {
            assert_eq!(count_closed_walks(&g, k, &SpGemm::pb()), 0, "length {k}");
        }
    }

    #[test]
    fn all_engines_agree_on_random_digraphs() {
        let g = rmat_square(5, 3, 23);
        let expected = count_closed_walks(&g, 3, &SpGemm::reference());
        for engine in SpGemm::paper_set() {
            assert_eq!(
                count_closed_walks(&g, 3, &engine),
                expected,
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn weighted_input_uses_only_the_pattern() {
        let weighted = Coo::from_entries(3, 3, vec![(0, 1, 0.5), (1, 2, 7.0), (2, 0, -3.0)])
            .unwrap()
            .to_csr();
        assert_eq!(count_closed_walks(&weighted, 3, &SpGemm::pb()), 3);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_length_walks_are_rejected() {
        let g = directed_triangle_plus_tail();
        let _ = count_closed_walks(&g, 0, &SpGemm::pb());
    }
}
