//! Parallel element-wise and structural operations on CSR matrices.
//!
//! These are the "vector-like" building blocks that the graph kernels
//! (`pb-graph`) and the iterative examples (Markov clustering, PageRank)
//! need around SpGEMM itself: element-wise sums and products, triangular and
//! diagonal extraction, row/column scaling and reductions.  All operations
//! parallelise over rows with rayon and expect canonical inputs (sorted,
//! duplicate-free column indices within every row) — which is what every
//! multiplication kernel in this workspace produces.
//!
//! The sequential [`crate::reference`] versions of `add` and `hadamard` are
//! kept as oracles; the unit tests here compare against them.

use rayon::prelude::*;

use crate::csr::Csr;
use crate::semiring::{Numeric, PlusTimes, Semiring};
use crate::{Index, Scalar};

/// Merges the per-row outputs produced by a parallel row pass into one CSR
/// matrix.
fn assemble_rows<T: Scalar>(nrows: usize, ncols: usize, rows: Vec<(Vec<Index>, Vec<T>)>) -> Csr<T> {
    let nnz: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    let mut colidx = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    rowptr.push(0usize);
    for (cols, vals) in rows {
        colidx.extend_from_slice(&cols);
        values.extend_from_slice(&vals);
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

/// Element-wise sum `A ⊕ B` under a semiring's `add`.
///
/// The output stores every coordinate stored in either input; coordinates
/// present in both are merged with `S::add`.  Both inputs must have the same
/// shape and canonical (sorted) rows.
pub fn add_with<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    assert_eq!(
        a.shape(),
        b.shape(),
        "element-wise add requires equal shapes"
    );
    debug_assert!(a.has_sorted_indices() && b.has_sorted_indices());
    let rows: Vec<(Vec<Index>, Vec<S::Elem>)> = (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let mut cols = Vec::with_capacity(ac.len() + bc.len());
            let mut vals = Vec::with_capacity(ac.len() + bc.len());
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() && q < bc.len() {
                match ac[p].cmp(&bc[q]) {
                    std::cmp::Ordering::Less => {
                        cols.push(ac[p]);
                        vals.push(av[p]);
                        p += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        cols.push(bc[q]);
                        vals.push(bv[q]);
                        q += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        cols.push(ac[p]);
                        vals.push(S::add(av[p], bv[q]));
                        p += 1;
                        q += 1;
                    }
                }
            }
            cols.extend_from_slice(&ac[p..]);
            vals.extend_from_slice(&av[p..]);
            cols.extend_from_slice(&bc[q..]);
            vals.extend_from_slice(&bv[q..]);
            (cols, vals)
        })
        .collect();
    assemble_rows(a.nrows(), a.ncols(), rows)
}

/// Element-wise sum with ordinary `+` over a numeric type.
pub fn add<T: Numeric>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    add_with::<PlusTimes<T>>(a, b)
}

/// Element-wise (Hadamard) product `A ⊗ B` under a semiring's `mul`.
///
/// Only coordinates stored in **both** inputs appear in the output.  Both
/// inputs must have the same shape and canonical rows.
pub fn hadamard_with<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    assert_eq!(
        a.shape(),
        b.shape(),
        "hadamard product requires equal shapes"
    );
    debug_assert!(a.has_sorted_indices() && b.has_sorted_indices());
    let rows: Vec<(Vec<Index>, Vec<S::Elem>)> = (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (ac, av) = a.row(i);
            let (bc, bv) = b.row(i);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() && q < bc.len() {
                match ac[p].cmp(&bc[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        cols.push(ac[p]);
                        vals.push(S::mul(av[p], bv[q]));
                        p += 1;
                        q += 1;
                    }
                }
            }
            (cols, vals)
        })
        .collect();
    assemble_rows(a.nrows(), a.ncols(), rows)
}

/// Element-wise product with ordinary `×` over a numeric type.
pub fn hadamard<T: Numeric>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    hadamard_with::<PlusTimes<T>>(a, b)
}

/// Restricts `A` to the sparsity pattern of `mask`: keeps `A(i, j)` only when
/// `mask` stores an entry at `(i, j)` (regardless of its value).
///
/// This is the element-wise mask used by masked SpGEMM and by the
/// triangle-counting kernel (`(A·A) ∘ A`).
pub fn mask_by_pattern<T: Scalar, M: Scalar>(a: &Csr<T>, mask: &Csr<M>) -> Csr<T> {
    assert_eq!(a.shape(), mask.shape(), "mask requires equal shapes");
    debug_assert!(a.has_sorted_indices() && mask.has_sorted_indices());
    let rows: Vec<(Vec<Index>, Vec<T>)> = (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (ac, av) = a.row(i);
            let (mc, _) = mask.row(i);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            let (mut p, mut q) = (0usize, 0usize);
            while p < ac.len() && q < mc.len() {
                match ac[p].cmp(&mc[q]) {
                    std::cmp::Ordering::Less => p += 1,
                    std::cmp::Ordering::Greater => q += 1,
                    std::cmp::Ordering::Equal => {
                        cols.push(ac[p]);
                        vals.push(av[p]);
                        p += 1;
                        q += 1;
                    }
                }
            }
            (cols, vals)
        })
        .collect();
    assemble_rows(a.nrows(), a.ncols(), rows)
}

/// Scales row `i` of `A` by `factors[i]` (`A(i, j) ← factors[i] × A(i, j)`).
pub fn scale_rows<T: Numeric>(a: &Csr<T>, factors: &[T]) -> Csr<T> {
    assert_eq!(
        factors.len(),
        a.nrows(),
        "one scale factor per row is required"
    );
    let rows: Vec<(Vec<Index>, Vec<T>)> = (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (cols, vals) = a.row(i);
            (
                cols.to_vec(),
                vals.iter().map(|&v| factors[i] * v).collect(),
            )
        })
        .collect();
    assemble_rows(a.nrows(), a.ncols(), rows)
}

/// Scales column `j` of `A` by `factors[j]` (`A(i, j) ← A(i, j) × factors[j]`).
pub fn scale_cols<T: Numeric>(a: &Csr<T>, factors: &[T]) -> Csr<T> {
    assert_eq!(
        factors.len(),
        a.ncols(),
        "one scale factor per column is required"
    );
    let rows: Vec<(Vec<Index>, Vec<T>)> = (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let (cols, vals) = a.row(i);
            (
                cols.to_vec(),
                cols.iter()
                    .zip(vals)
                    .map(|(&c, &v)| v * factors[c as usize])
                    .collect(),
            )
        })
        .collect();
    assemble_rows(a.nrows(), a.ncols(), rows)
}

/// The main diagonal of `A` as a dense vector of length `min(nrows, ncols)`;
/// missing diagonal entries are the numeric zero.
pub fn diagonal<T: Numeric>(a: &Csr<T>) -> Vec<T> {
    let n = a.nrows().min(a.ncols());
    (0..n)
        .into_par_iter()
        .map(|i| a.get(i, i).unwrap_or_else(T::zero_value))
        .collect()
}

/// Drops every stored entry on the main diagonal.
pub fn remove_diagonal<T: Scalar>(a: &Csr<T>) -> Csr<T> {
    a.prune(|r, c, _| r != c)
}

/// The upper triangle of `A`: entries with `col ≥ row + k` (so `k = 0` keeps
/// the diagonal and `k = 1` is strictly upper triangular).
pub fn triu<T: Scalar>(a: &Csr<T>, k: i64) -> Csr<T> {
    a.prune(move |r, c, _| c as i64 >= r as i64 + k)
}

/// The lower triangle of `A`: entries with `col ≤ row - k` (so `k = 0` keeps
/// the diagonal and `k = 1` is strictly lower triangular).
pub fn tril<T: Scalar>(a: &Csr<T>, k: i64) -> Csr<T> {
    a.prune(move |r, c, _| c as i64 <= r as i64 - k)
}

/// Per-row reduction of the stored values with a semiring's `add`.
pub fn row_sums_with<S: Semiring>(a: &Csr<S::Elem>) -> Vec<S::Elem> {
    (0..a.nrows())
        .into_par_iter()
        .map(|i| a.row(i).1.iter().fold(S::zero(), |acc, &v| S::add(acc, v)))
        .collect()
}

/// Per-row sum of stored values with ordinary `+`.
pub fn row_sums<T: Numeric>(a: &Csr<T>) -> Vec<T> {
    row_sums_with::<PlusTimes<T>>(a)
}

/// Per-column reduction of the stored values with a semiring's `add`.
///
/// Columns are reduced by folding thread-local accumulators, so the result is
/// deterministic only up to the semiring's associativity (exact for integer
/// semirings, tolerance-level differences for floating point).
pub fn col_sums_with<S: Semiring>(a: &Csr<S::Elem>) -> Vec<S::Elem> {
    let ncols = a.ncols();
    (0..a.nrows())
        .into_par_iter()
        .fold(
            || vec![S::zero(); ncols],
            |mut acc, i| {
                let (cols, vals) = a.row(i);
                for (&c, &v) in cols.iter().zip(vals) {
                    acc[c as usize] = S::add(acc[c as usize], v);
                }
                acc
            },
        )
        .reduce(
            || vec![S::zero(); ncols],
            |mut x, y| {
                for (xi, yi) in x.iter_mut().zip(y) {
                    *xi = S::add(*xi, yi);
                }
                x
            },
        )
}

/// Per-column sum of stored values with ordinary `+`.
pub fn col_sums<T: Numeric>(a: &Csr<T>) -> Vec<T> {
    col_sums_with::<PlusTimes<T>>(a)
}

/// Frobenius norm `sqrt(Σ A(i,j)²)` of a real matrix.
pub fn frobenius_norm(a: &Csr<f64>) -> f64 {
    a.values().par_iter().map(|&v| v * v).sum::<f64>().sqrt()
}

/// Largest absolute stored value of a real matrix (`0` for an empty matrix).
pub fn max_abs(a: &Csr<f64>) -> f64 {
    a.values()
        .par_iter()
        .map(|v| v.abs())
        .reduce(|| 0.0, f64::max)
}

/// Symmetrises `A` structurally and numerically: `A ⊕ Aᵀ` under the
/// semiring's `add`.
pub fn symmetrize_with<S: Semiring>(a: &Csr<S::Elem>) -> Csr<S::Elem>
where
    S::Elem: Default,
{
    assert_eq!(a.nrows(), a.ncols(), "symmetrize requires a square matrix");
    let at = a.transpose();
    add_with::<S>(a, &at)
}

/// Returns `true` when the sparsity pattern of `A` is symmetric
/// (`A(i, j)` stored iff `A(j, i)` stored).  Values are ignored.
pub fn pattern_is_symmetric<T: Scalar + Default>(a: &Csr<T>) -> bool {
    if a.nrows() != a.ncols() {
        return false;
    }
    let at = a.transpose();
    a.rowptr() == at.rowptr() && a.colidx() == at.colidx()
}

/// Converts a non-negative matrix to column-stochastic form: every non-empty
/// column is scaled so its entries sum to one.  Empty columns are left empty.
///
/// This is the normalisation step of Markov clustering and PageRank.
pub fn column_stochastic(a: &Csr<f64>) -> Csr<f64> {
    let sums = col_sums::<f64>(a);
    let inv: Vec<f64> = sums
        .iter()
        .map(|&s| if s != 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    scale_cols(a, &inv)
}

/// Converts a non-negative matrix to row-stochastic form: every non-empty row
/// is scaled so its entries sum to one.  Empty rows are left empty.
pub fn row_stochastic(a: &Csr<f64>) -> Csr<f64> {
    let sums = row_sums::<f64>(a);
    let inv: Vec<f64> = sums
        .iter()
        .map(|&s| if s != 0.0 { 1.0 / s } else { 0.0 })
        .collect();
    scale_rows(a, &inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;
    use crate::reference;
    use crate::semiring::{MinPlus, OrAnd};

    fn sample_a() -> Csr<f64> {
        Coo::from_entries(
            4,
            4,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 3, -1.0),
                (3, 3, 5.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    fn sample_b() -> Csr<f64> {
        Coo::from_entries(
            4,
            4,
            vec![
                (0, 0, 10.0),
                (0, 1, 1.0),
                (1, 1, -3.0),
                (2, 3, 2.0),
                (3, 0, 7.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn add_matches_reference() {
        let (a, b) = (sample_a(), sample_b());
        let fast = add(&a, &b);
        let slow = reference::add_csr_with::<PlusTimes<f64>>(&a, &b);
        assert!(reference::csr_approx_eq(&fast, &slow, 1e-12));
        assert_eq!(fast.get(0, 0), Some(11.0));
        assert_eq!(
            fast.get(1, 1),
            Some(0.0),
            "cancellation keeps an explicit zero"
        );
        assert_eq!(fast.get(0, 1), Some(1.0));
    }

    #[test]
    fn add_is_commutative() {
        let (a, b) = (sample_a(), sample_b());
        assert!(reference::csr_exact_eq(&add(&a, &b), &add(&b, &a)));
    }

    #[test]
    fn hadamard_matches_reference() {
        let (a, b) = (sample_a(), sample_b());
        let fast = hadamard(&a, &b);
        let slow = reference::hadamard_csr_with::<PlusTimes<f64>>(&a, &b);
        assert!(reference::csr_approx_eq(&fast, &slow, 1e-12));
        assert_eq!(fast.nnz(), 3); // (0,0), (1,1) and (2,3) are the shared coordinates
        assert_eq!(fast.get(0, 0), Some(10.0));
        assert_eq!(fast.get(1, 1), Some(-9.0));
        assert_eq!(fast.get(2, 3), Some(-2.0));
    }

    #[test]
    fn add_under_other_semirings() {
        let a = sample_a().map_values(|v| v.abs());
        let b = sample_b().map_values(|v| v.abs());
        // Min-plus add is `min`; shared coordinate (0,0) keeps min(1, 10) = 1.
        let m = add_with::<MinPlus>(&a, &b);
        assert_eq!(m.get(0, 0), Some(1.0));
        // Boolean union.
        let pa = a.map_values(|_| true);
        let pb = b.map_values(|_| true);
        let u = add_with::<OrAnd>(&pa, &pb);
        assert_eq!(u.nnz(), 8);
    }

    #[test]
    fn mask_by_pattern_keeps_only_mask_coordinates() {
        let (a, b) = (sample_a(), sample_b());
        let masked = mask_by_pattern(&a, &b);
        assert_eq!(masked.nnz(), 3);
        assert_eq!(
            masked.get(0, 0),
            Some(1.0),
            "value comes from A, structure from the mask"
        );
        assert_eq!(masked.get(1, 1), Some(3.0));
        assert_eq!(masked.get(2, 3), Some(-1.0));
        assert_eq!(masked.get(0, 2), None);
    }

    #[test]
    fn scaling_rows_and_columns() {
        let a = sample_a();
        let scaled = scale_rows(&a, &[1.0, 2.0, 0.0, -1.0]);
        assert_eq!(scaled.get(1, 1), Some(6.0));
        assert_eq!(scaled.get(2, 0), Some(0.0));
        assert_eq!(scaled.get(3, 3), Some(-5.0));

        let scaled = scale_cols(&a, &[2.0, 1.0, 1.0, 10.0]);
        assert_eq!(scaled.get(0, 0), Some(2.0));
        assert_eq!(scaled.get(2, 3), Some(-10.0));
        assert_eq!(scaled.nnz(), a.nnz());
    }

    #[test]
    fn diagonal_and_triangles() {
        let a = sample_a();
        assert_eq!(diagonal(&a), vec![1.0, 3.0, 0.0, 5.0]);

        let no_diag = remove_diagonal(&a);
        assert_eq!(no_diag.nnz(), 3);
        assert_eq!(no_diag.get(0, 0), None);

        let up = triu(&a, 0);
        assert!(up.iter().all(|(r, c, _)| c >= r));
        assert_eq!(up.nnz(), 5);
        let strict_up = triu(&a, 1);
        assert_eq!(strict_up.nnz(), 2);

        let lo = tril(&a, 0);
        assert!(lo.iter().all(|(r, c, _)| c <= r));
        let strict_lo = tril(&a, 1);
        assert_eq!(strict_lo.nnz(), 1);
        // Strict upper + diagonal entries + strict lower partition the nonzeros.
        assert_eq!(strict_up.nnz() + strict_lo.nnz() + 3, a.nnz());
    }

    #[test]
    fn row_and_column_reductions() {
        let a = sample_a();
        assert_eq!(row_sums(&a), vec![3.0, 3.0, 3.0, 5.0]);
        assert_eq!(col_sums(&a), vec![5.0, 3.0, 2.0, 4.0]);
        let ones = a.map_values(|_| 1u64);
        assert_eq!(row_sums(&ones), vec![2, 1, 2, 1]);
        assert_eq!(col_sums(&ones), vec![2, 1, 1, 2]);
    }

    #[test]
    fn norms() {
        let a = sample_a();
        let expected: f64 = a.values().iter().map(|v| v * v).sum::<f64>();
        assert!((frobenius_norm(&a) - expected.sqrt()).abs() < 1e-12);
        assert_eq!(max_abs(&a), 5.0);
        assert_eq!(frobenius_norm(&Csr::<f64>::empty(3, 3)), 0.0);
        assert_eq!(max_abs(&Csr::<f64>::empty(3, 3)), 0.0);
    }

    #[test]
    fn symmetrisation() {
        let a = sample_a();
        let s = symmetrize_with::<PlusTimes<f64>>(&a);
        assert!(pattern_is_symmetric(&s));
        // (2,0) and (0,2) both exist in A, so the symmetrised entry sums them.
        assert_eq!(s.get(0, 2), Some(6.0));
        assert_eq!(s.get(2, 0), Some(6.0));
        assert!(!pattern_is_symmetric(&a));
        assert!(!pattern_is_symmetric(&Csr::<f64>::empty(2, 3)));
    }

    #[test]
    fn stochastic_normalisation() {
        let a = sample_a().map_values(|v| v.abs());
        let cs = column_stochastic(&a);
        for (j, s) in col_sums(&cs).iter().enumerate() {
            let original = col_sums(&a)[j];
            if original != 0.0 {
                assert!((s - 1.0).abs() < 1e-12, "column {j} sums to {s}");
            } else {
                assert_eq!(*s, 0.0);
            }
        }
        let rs = row_stochastic(&a);
        for s in row_sums(&rs) {
            assert!((s - 1.0).abs() < 1e-12 || s == 0.0);
        }
    }

    #[test]
    fn empty_matrices_are_handled() {
        let e = Csr::<f64>::empty(5, 5);
        assert_eq!(add(&e, &e).nnz(), 0);
        assert_eq!(hadamard(&e, &e).nnz(), 0);
        assert_eq!(diagonal(&e), vec![0.0; 5]);
        assert_eq!(row_sums(&e), vec![0.0; 5]);
        assert_eq!(col_sums(&e), vec![0.0; 5]);
        assert!(pattern_is_symmetric(&e));
    }

    #[test]
    #[should_panic(expected = "equal shapes")]
    fn mismatched_shapes_panic() {
        let a = Csr::<f64>::empty(3, 3);
        let b = Csr::<f64>::empty(3, 4);
        let _ = add(&a, &b);
    }
}
