//! The resident server: reactor-driven I/O plus batching request workers.
//!
//! One I/O thread owns the listener and every client socket, blocking in
//! [`miniloop::poll_readable`] and slicing the byte stream into protocol
//! lines; parsed requests are enqueued on a [`miniloop::TaskQueue`].  A
//! small pool of worker threads drains the queue, and a worker that pops a
//! multiply also *drains every queued multiply with the same batch key*:
//! identical products are computed once — one engine call, one
//! [`Workspace`](pb_spgemm::Workspace) lease — and the single result
//! answers every member of the batch.  Workers write responses straight to
//! the (mutex-guarded) client socket, so slow clients never stall the
//! reactor.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use pb_sparse::semiring::PlusTimes;
use pb_sparse::{Coo, Csr};
use pb_spgemm::PbError;
use serde::Value;

use crate::catalog::{matrix_bytes, Catalog};
use crate::config::ServeConfig;
use crate::metrics::{render, ServerCounters};
use crate::protocol::{
    entries_value, error_line, fingerprint, object, ok_line, parse_request, GenKind, Request,
    MAX_RETURNED_ENTRIES,
};

/// Most multiply requests one batch execution may answer.
pub const BATCH_LIMIT: usize = 64;

/// How long the reactor and the workers sleep per idle tick.
const TICK: Duration = Duration::from_millis(50);

/// One parsed request waiting for a worker, with the socket to answer on.
struct Job {
    request: Request,
    reply: Arc<Mutex<TcpStream>>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("request", &self.request)
            .finish()
    }
}

/// Shared server state.
#[derive(Debug)]
struct State {
    catalog: Mutex<Catalog>,
    counters: ServerCounters,
    queue: miniloop::TaskQueue<Job>,
    shutdown: AtomicBool,
}

/// A running server; dropping it requests shutdown.
#[derive(Debug)]
pub struct Server {
    state: Arc<State>,
    addr: SocketAddr,
    io: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr`, spawns the reactor and `config.workers` request
    /// workers, and starts serving immediately.
    pub fn start(config: ServeConfig) -> Result<Server, PbError> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(State {
            catalog: Mutex::new(Catalog::new(config.budget_bytes, config.algorithm)),
            counters: ServerCounters::default(),
            queue: miniloop::TaskQueue::new(),
            shutdown: AtomicBool::new(false),
        });
        let io = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("pb-serve-io".into())
                .spawn(move || io_loop(&listener, &state))
                .map_err(PbError::Io)?
        };
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("pb-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .map_err(PbError::Io)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Server {
            state,
            addr,
            io: Some(io),
            workers,
        })
    }

    /// The bound address (resolves port 0 to the kernel's pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown; threads exit within one reactor tick.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.wake_all();
    }

    /// Requests shutdown and waits for every thread to exit (teardown).
    pub fn join(mut self) {
        self.shutdown();
        self.drain();
    }

    /// Blocks until the server shuts down — via a client's `shutdown` op
    /// or a concurrent [`Server::shutdown`] — and every thread has exited.
    /// This is the resident-process entry point: unlike [`Server::join`],
    /// it does not request the shutdown itself.
    pub fn wait(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        if let Some(io) = self.io.take() {
            let _ = io.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One connected client on the reactor.
struct Conn {
    stream: TcpStream,
    reply: Arc<Mutex<TcpStream>>,
    buf: Vec<u8>,
}

fn io_loop(listener: &TcpListener, state: &Arc<State>) {
    let mut conns: Vec<Option<Conn>> = Vec::new();
    const LISTENER_KEY: usize = usize::MAX;
    while !state.shutdown.load(Ordering::SeqCst) {
        let mut sources: Vec<(miniloop::RawFd, usize)> =
            vec![(listener.as_raw_fd() as miniloop::RawFd, LISTENER_KEY)];
        for (idx, conn) in conns.iter().enumerate() {
            if let Some(c) = conn {
                sources.push((c.stream.as_raw_fd() as miniloop::RawFd, idx));
            }
        }
        let events = match miniloop::poll_readable(&sources, TICK) {
            Ok(events) => events,
            Err(_) => continue,
        };
        for event in events {
            if event.key == LISTENER_KEY {
                accept_all(listener, state, &mut conns);
            } else if event.readable || event.closed {
                service_conn(state, &mut conns, event.key);
            }
        }
    }
}

fn accept_all(listener: &TcpListener, state: &Arc<State>, conns: &mut Vec<Option<Conn>>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                state.counters.connections.fetch_add(1, Ordering::Relaxed);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let Ok(write_half) = stream.try_clone() else {
                    continue;
                };
                let conn = Conn {
                    stream,
                    reply: Arc::new(Mutex::new(write_half)),
                    buf: Vec::new(),
                };
                match conns.iter().position(Option::is_none) {
                    Some(slot) => conns[slot] = Some(conn),
                    None => conns.push(Some(conn)),
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads everything available on connection `idx`, enqueues each complete
/// line, and drops the connection on EOF or error.
fn service_conn(state: &Arc<State>, conns: &mut [Option<Conn>], idx: usize) {
    let Some(conn) = conns.get_mut(idx).and_then(Option::as_mut) else {
        return;
    };
    let mut closed = false;
    let mut tmp = [0u8; 4096];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                closed = true;
                break;
            }
            Ok(n) => conn.buf.extend_from_slice(&tmp[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                closed = true;
                break;
            }
        }
    }
    while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
        let line: Vec<u8> = conn.buf.drain(..=pos).collect();
        let line = String::from_utf8_lossy(&line[..line.len() - 1]);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_request(line) {
            Ok(request) => state.queue.push(Job {
                request,
                reply: Arc::clone(&conn.reply),
            }),
            Err(msg) => {
                state.counters.requests.fetch_add(1, Ordering::Relaxed);
                state.counters.errors.fetch_add(1, Ordering::Relaxed);
                write_line(&conn.reply, &error_line(&msg));
            }
        }
    }
    if closed {
        conns[idx] = None;
    }
}

/// Blocking line write to a non-blocking socket (short sleeps on
/// `WouldBlock`); errors drop the response — the client is gone.
fn write_line(reply: &Arc<Mutex<TcpStream>>, line: &str) {
    let mut bytes = line.as_bytes().to_vec();
    bytes.push(b'\n');
    let mut stream = reply.lock().expect("reply lock poisoned");
    let mut off = 0;
    while off < bytes.len() {
        match stream.write(&bytes[off..]) {
            Ok(0) => return,
            Ok(n) => off += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
    let _ = stream.flush();
}

fn worker_loop(state: &Arc<State>) {
    loop {
        match state.queue.pop(TICK) {
            Some(job) => handle(state, job),
            None => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn respond_ok(state: &State, reply: &Arc<Mutex<TcpStream>>, fields: Vec<(&str, Value)>) {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    write_line(reply, &ok_line(fields));
}

fn respond_err(state: &State, reply: &Arc<Mutex<TcpStream>>, msg: &str) {
    state.counters.requests.fetch_add(1, Ordering::Relaxed);
    state.counters.errors.fetch_add(1, Ordering::Relaxed);
    write_line(reply, &error_line(msg));
}

fn handle(state: &Arc<State>, job: Job) {
    match job.request.clone() {
        Request::Ping => respond_ok(state, &job.reply, vec![("op", Value::Str("pong".into()))]),
        Request::Store {
            name,
            rows,
            cols,
            entries,
        } => {
            let matrix = match Coo::from_entries(rows, cols, entries) {
                Ok(coo) => coo.to_csr(),
                Err(e) => return respond_err(state, &job.reply, &format!("bad matrix: {e}")),
            };
            store_and_respond(state, &job, &name, matrix);
        }
        Request::Gen {
            name,
            kind,
            scale,
            edge_factor,
            seed,
        } => {
            if scale > 24 {
                return respond_err(state, &job.reply, "scale over 24 is not servable");
            }
            let matrix = match kind {
                GenKind::Rmat => pb_gen::rmat_square(scale, edge_factor, seed),
                GenKind::Er => pb_gen::erdos_renyi_square(scale, edge_factor, seed),
            };
            store_and_respond(state, &job, &name, matrix);
        }
        Request::Multiply { .. } => handle_multiply_batch(state, job),
        Request::Mcl {
            name,
            inflation,
            max_iterations,
        } => {
            let Some(entry) = state.catalog.lock().expect("catalog lock").get(&name) else {
                return respond_err(state, &job.reply, &format!("no matrix named `{name}`"));
            };
            let result = pb_graph::Mcl::new()
                .engine(entry.engine.clone())
                .inflation(inflation)
                .max_iterations(max_iterations)
                .run(&entry.matrix);
            respond_ok(
                state,
                &job.reply,
                vec![
                    ("clusters", Value::UInt(result.num_clusters as u64)),
                    ("iterations", Value::UInt(result.iterations as u64)),
                    ("converged", Value::Bool(result.converged)),
                ],
            );
        }
        Request::Bc {
            name,
            sources,
            batch_size,
        } => {
            let Some(entry) = state.catalog.lock().expect("catalog lock").get(&name) else {
                return respond_err(state, &job.reply, &format!("no matrix named `{name}`"));
            };
            let n = entry.matrix.nrows();
            let count = if sources == 0 { n } else { sources.min(n) };
            let mut bc = pb_graph::Bc::new()
                .engine(entry.engine.clone())
                .batch_size(batch_size);
            if count < n {
                bc = bc.sources(0..count);
            }
            let scores = bc.run(&entry.matrix);
            let sum: f64 = scores.iter().sum();
            let (max_vertex, max_score) =
                scores
                    .iter()
                    .enumerate()
                    .fold((0usize, f64::NEG_INFINITY), |best, (v, &s)| {
                        if s > best.1 {
                            (v, s)
                        } else {
                            best
                        }
                    });
            respond_ok(
                state,
                &job.reply,
                vec![
                    ("n", Value::UInt(n as u64)),
                    ("sources", Value::UInt(count as u64)),
                    ("sum", Value::Float(sum)),
                    ("max_vertex", Value::UInt(max_vertex as u64)),
                    (
                        "max_score",
                        Value::Float(if n == 0 { 0.0 } else { max_score }),
                    ),
                ],
            );
        }
        Request::Apsp { name } => {
            let Some(entry) = state.catalog.lock().expect("catalog lock").get(&name) else {
                return respond_err(state, &job.reply, &format!("no matrix named `{name}`"));
            };
            if entry.matrix.nrows() > pb_graph::APSP_DENSE_LIMIT {
                return respond_err(
                    state,
                    &job.reply,
                    &format!(
                        "APSP on {} vertices would densify (limit {})",
                        entry.matrix.nrows(),
                        pb_graph::APSP_DENSE_LIMIT
                    ),
                );
            }
            let dist = pb_graph::Apsp::new()
                .engine(entry.engine.clone())
                .run(&entry.matrix);
            let sum: f64 = dist.values().iter().sum();
            respond_ok(
                state,
                &job.reply,
                vec![
                    ("nnz", Value::UInt(dist.nnz() as u64)),
                    ("sum", Value::Float(sum)),
                    ("fingerprint", Value::UInt(fingerprint(&dist))),
                ],
            );
        }
        Request::Evict { name } => {
            let evicted = state.catalog.lock().expect("catalog lock").evict(&name);
            respond_ok(state, &job.reply, vec![("evicted", Value::Bool(evicted))]);
        }
        Request::List => {
            let catalog = state.catalog.lock().expect("catalog lock");
            let entries = Value::Array(
                catalog
                    .list()
                    .into_iter()
                    .map(|info| {
                        object(vec![
                            ("name", Value::Str(info.name)),
                            ("rows", Value::UInt(info.rows as u64)),
                            ("cols", Value::UInt(info.cols as u64)),
                            ("nnz", Value::UInt(info.nnz as u64)),
                            ("bytes", Value::UInt(info.bytes as u64)),
                        ])
                    })
                    .collect(),
            );
            let fields = vec![
                ("entries", entries),
                ("bytes_used", Value::UInt(catalog.bytes_used() as u64)),
                ("bytes_budget", Value::UInt(catalog.budget_bytes() as u64)),
                ("evictions", Value::UInt(catalog.evictions())),
            ];
            drop(catalog);
            respond_ok(state, &job.reply, fields);
        }
        Request::Metrics => {
            let text = {
                let catalog = state.catalog.lock().expect("catalog lock");
                render(&state.counters, &catalog)
            };
            respond_ok(state, &job.reply, vec![("text", Value::Str(text))]);
        }
        Request::Shutdown => {
            respond_ok(state, &job.reply, vec![("op", Value::Str("bye".into()))]);
            state.shutdown.store(true, Ordering::SeqCst);
            state.queue.wake_all();
        }
    }
}

fn store_and_respond(state: &Arc<State>, job: &Job, name: &str, matrix: Csr<f64>) {
    let (rows, cols, nnz) = (matrix.nrows(), matrix.ncols(), matrix.nnz());
    let bytes = matrix_bytes(&matrix);
    let print = fingerprint(&matrix);
    match state
        .catalog
        .lock()
        .expect("catalog lock")
        .store(name, matrix)
    {
        Ok(()) => respond_ok(
            state,
            &job.reply,
            vec![
                ("name", Value::Str(name.to_string())),
                ("rows", Value::UInt(rows as u64)),
                ("cols", Value::UInt(cols as u64)),
                ("nnz", Value::UInt(nnz as u64)),
                ("bytes", Value::UInt(bytes as u64)),
                ("fingerprint", Value::UInt(print)),
            ],
        ),
        Err(msg) => respond_err(state, &job.reply, &msg),
    }
}

/// Executes one multiply batch: the popped job plus every queued multiply
/// with the same `(a, b, algorithm)` key.  The product is computed once —
/// one engine call, one workspace lease — and answers every member.
fn handle_multiply_batch(state: &Arc<State>, job: Job) {
    let key = job.request.batch_key();
    let mut batch = vec![job];
    batch.extend(
        state
            .queue
            .drain_matching(BATCH_LIMIT - 1, |j| j.request.batch_key() == key),
    );
    state.counters.record_batch(batch.len());

    let Some(Request::Multiply {
        a, b, algorithm, ..
    }) = batch.first().map(|j| &j.request)
    else {
        unreachable!("batch heads are multiply requests");
    };
    let (a, b, algorithm) = (a.clone(), b.clone(), *algorithm);

    // Resolve operands under the lock, multiply outside it.
    let (entry_a, entry_b) = {
        let mut catalog = state.catalog.lock().expect("catalog lock");
        (catalog.get(&a), catalog.get(&b))
    };
    let (Some(ea), Some(eb)) = (entry_a, entry_b) else {
        let missing = format!(
            "no matrix named `{}`",
            if state
                .catalog
                .lock()
                .expect("catalog lock")
                .get(&a)
                .is_none()
            {
                &a
            } else {
                &b
            }
        );
        for j in &batch {
            respond_err(state, &j.reply, &missing);
        }
        return;
    };
    if ea.matrix.ncols() != eb.matrix.nrows() {
        let msg = format!(
            "dimension mismatch: `{a}` is {}x{}, `{b}` is {}x{}",
            ea.matrix.nrows(),
            ea.matrix.ncols(),
            eb.matrix.nrows(),
            eb.matrix.ncols()
        );
        for j in &batch {
            respond_err(state, &j.reply, &msg);
        }
        return;
    }

    let engine = match algorithm {
        Some(alg) => ea.engine.clone().algorithm(alg),
        None => ea.engine.clone(),
    };
    let (product, profile) = engine.multiply_with_profile::<PlusTimes<f64>>(&ea.matrix, &eb.matrix);
    let print = fingerprint(&product);
    let batch_size = batch.len();

    for j in &batch {
        let Request::Multiply {
            store_as,
            want_entries,
            ..
        } = &j.request
        else {
            continue;
        };
        if let Some(target) = store_as {
            if let Err(msg) = state
                .catalog
                .lock()
                .expect("catalog lock")
                .store(target, product.clone())
            {
                respond_err(state, &j.reply, &msg);
                continue;
            }
        }
        let mut fields = vec![
            ("rows", Value::UInt(product.nrows() as u64)),
            ("cols", Value::UInt(product.ncols() as u64)),
            ("nnz", Value::UInt(product.nnz() as u64)),
            ("fingerprint", Value::UInt(print)),
            ("algorithm", Value::Str(engine.name().to_string())),
            (
                "planned",
                Value::Str(profile.stats.planned_algorithm.name().to_string()),
            ),
            ("batched_with", Value::UInt(batch_size as u64)),
            (
                "bytes_allocated",
                Value::UInt(profile.stats.bytes_allocated),
            ),
            ("bytes_reused", Value::UInt(profile.stats.bytes_reused)),
            ("flop", Value::UInt(profile.flop)),
        ];
        if *want_entries {
            if product.nnz() > MAX_RETURNED_ENTRIES {
                respond_err(
                    state,
                    &j.reply,
                    &format!(
                        "product has {} nonzeros, over the {} returnable limit",
                        product.nnz(),
                        MAX_RETURNED_ENTRIES
                    ),
                );
                continue;
            }
            fields.push(("entries", entries_value(&product)));
        }
        respond_ok(state, &j.reply, fields);
    }
}
