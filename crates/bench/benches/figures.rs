//! Smoke run of every table/figure harness at reduced scale.
//!
//! `cargo bench -p pb-bench --bench figures` regenerates (small versions of)
//! all the paper's tables and figures in one go and prints them to stdout,
//! so `cargo bench --workspace | tee bench_output.txt` captures the whole
//! evaluation.  Run the individual `--bin figN_*` binaries for the
//! full-scale versions.

use pb_bench::figures::{
    performance_vs_scale, real_matrices, scaling, scaling_breakdown, MatrixFamily,
};
use pb_bench::workloads::er_matrix;
use pb_bench::{print_table, Table};
use pb_model::access::access_table;
use pb_model::roofline::RooflineModel;
use pb_model::stream::{run as run_stream, StreamConfig};
use pb_model::MachineInfo;
use pb_spgemm::{PbConfig, Phase};

fn main() {
    // Criterion-style CLI arguments (--bench, filters) are ignored; this
    // harness always runs everything once at smoke scale.
    println!("PB-SpGEMM paper figure smoke run (quick mode; see DESIGN.md for the full index)\n");

    // Table IV — machine.
    let info = MachineInfo::detect();
    let mut t4 = Table::new("Table IV — machine", &["field", "value"]);
    for (k, v) in info.table_rows() {
        t4.push_row(vec![k, v]);
    }
    print_table(&t4);

    // Table V — STREAM.
    let stream = run_stream(&StreamConfig::quick());
    let mut t5 = Table::new(
        "Table V — STREAM (quick)",
        &["Copy", "Scale", "Add", "Triad"],
    );
    t5.push_row(vec![
        format!("{:.2}", stream.copy),
        format!("{:.2}", stream.scale),
        format!("{:.2}", stream.add),
        format!("{:.2}", stream.triad),
    ]);
    print_table(&t5);

    // Fig. 3 — roofline markers for cf = 1.
    let model = RooflineModel::new(stream.beta_gbps());
    let mut f3 = Table::new("Fig. 3 — roofline markers (cf = 1)", &["bound", "GFLOPS"]);
    f3.push_row(vec![
        "column (Eq.3)".into(),
        format!("{:.3}", model.column_predicted_gflops(1.0)),
    ]);
    f3.push_row(vec![
        "outer (Eq.4)".into(),
        format!("{:.3}", model.outer_predicted_gflops(1.0)),
    ]);
    f3.push_row(vec![
        "upper (Eq.1)".into(),
        format!("{:.3}", model.peak_gflops(1.0)),
    ]);
    print_table(&f3);

    // Table II — access patterns (d = 8).
    let mut t2 = Table::new(
        "Table II — access patterns (d = 8)",
        &["class", "reads A", "Chat accesses", "streams A"],
    );
    for row in access_table(8.0) {
        t2.push_row(vec![
            row.class.name().to_string(),
            format!("{}", row.reads_a),
            format!("{}", row.accesses_chat),
            row.streams_a.to_string(),
        ]);
    }
    print_table(&t2);

    // Table III — phase profile on a small ER workload.
    let w = er_matrix(12, 8, 3);
    let p = pb_bench::measure_pb_profile(&w, &PbConfig::default());
    let mut t3 = Table::new(
        "Table III — PB-SpGEMM phases (ER s=12 ef=8)",
        &["phase", "ms", "GB/s"],
    );
    for phase in [
        Phase::Symbolic,
        Phase::Expand,
        Phase::Sort,
        Phase::Compress,
        Phase::Assemble,
    ] {
        t3.push_row(vec![
            phase.name().to_string(),
            format!("{:.3}", p.phase_time(phase).as_secs_f64() * 1e3),
            format!("{:.2}", p.phase_bandwidth_gbps(phase)),
        ]);
    }
    print_table(&t3);

    // Figs. 7 and 9 — ER / RMAT performance (quick grid).
    let fig7 = performance_vs_scale(MatrixFamily::Er, true, 1);
    print_table(&fig7.performance);
    print_table(&fig7.bandwidth);
    let fig9 = performance_vs_scale(MatrixFamily::Rmat, true, 1);
    print_table(&fig9.performance);
    print_table(&fig9.bandwidth);

    // Fig. 11 — real matrices at 1% scale.
    let fig11 = real_matrices(0.01, 1);
    print_table(&fig11.performance);

    // Figs. 12 and 13 — scaling and breakdown.
    let (fig12, _) = scaling(true, 1);
    print_table(&fig12);
    print_table(&scaling_breakdown(true));

    println!("smoke run complete — run the individual pb-bench binaries for full-scale figures.");
}
