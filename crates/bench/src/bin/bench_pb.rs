//! Emits the machine-readable PB-SpGEMM performance baseline.
//!
//! ```text
//! cargo run --release -p pb-bench --bin bench_pb -- [flags] [output-path]
//! ```
//!
//! Sweeps PB-SpGEMM over thread counts (1, 2, 4, ... up to the pool's
//! size, which honours `PB_RAYON_THREADS`) on an R-MAT workload and writes
//! `BENCH_pb.json` (or the given path).  Also prints a small
//! human-readable table.
//!
//! Flags:
//!
//! * `--smoke` — CI-sized run: R-MAT scale 10 instead of 12, one
//!   repetition per point.
//! * `--tune` — additionally run the [`AutoTune`](pb_spgemm::AutoTune)
//!   loop from a deliberately tiny local-bin width (1 cache line) and
//!   attach the convergence report (`tune` section) to the JSON.
//! * `--planner` — additionally run the [`Planner`](pb_spgemm::Planner)
//!   regret sweep: measure every candidate kernel on a small corpus of
//!   diverse-compression-factor workloads, calibrate a fresh planner from
//!   those measurements, and attach the per-point regret report (`planner`
//!   section) to the JSON.  `--verify`/`--gate` then fail if any point's
//!   calibrated pick costs more than 25% over best-in-hindsight.
//! * `--verify` — after writing, re-read the file, parse it, check it
//!   against the `pb-bench-baseline/v7` schema (including the per-point
//!   `numa`, `workspace`, `isa` and top-level `tiled` sections) and generous per-phase sanity
//!   ceilings, and assert PB-SpGEMM's product still matches the reference
//!   oracle.  On multi-domain points the measured domain-local flush
//!   fraction must clear [`NUMA_LOCAL_FLUSH_FLOOR`]; the repeated-multiply
//!   workspace smoke must show a hit-serving, zero-allocation steady state
//!   that is bit-identical to the fresh path; a `planner` section, when
//!   present, must clear the regret ceiling on every corpus point; every
//!   point's `isa` section must name the dispatch level this process
//!   actually resolved (`pb_spgemm::simd::active()`) with kernel counters
//!   proving that path executed — not just that the binary was built with
//!   the right flags.  Exits non-zero on any violation (the CI perf-gate).
//! * `--gate PATH` — additionally load the *committed* baseline at `PATH`
//!   and fail if any of its telemetry invariants regressed (schema
//!   version, oversubscription-flag consistency, the ≥95% local-flush
//!   floor, flop accounting), printing a per-thread-count diff summary
//!   between the committed numbers and this run's fresh ones.

use pb_bench::baseline::{baseline_workload, run_autotune, run_pb_baseline_on, SCHEMA_TAG};
use pb_bench::planner::{run_planner_sweep, PLANNER_REGRET_CEILING};
use pb_bench::workloads::Workload;
use pb_bench::{fmt, print_table, Table};
use serde_json::Value;

/// Per-phase wall-clock ceiling for the smoke-sized workloads.  Generous on
/// purpose: containers are noisy, so CI gates on correctness and schema,
/// not on tight timings — this only catches order-of-magnitude rot
/// (an accidentally quadratic phase, a deadlocked pool).
const PHASE_SANITY_CEILING_SECONDS: f64 = 120.0;

/// Multiply cap for the `--tune` convergence loop (the policy converges in
/// `O(log lines)` steps, so 16 leaves ample slack).
const TUNE_MAX_ITERS: usize = 16;

/// Minimum domain-local flush fraction `--verify` demands of every
/// multi-domain sweep point.  Flop-balanced column ranges plus the pool's
/// own-domain-first claiming keep remote flushes down to the occasional
/// end-of-range steal, so 95% clears comfortably on the smoke workload
/// while still failing loudly if the routing ever regresses to
/// domain-oblivious claiming (~50% local at two domains).
const NUMA_LOCAL_FLUSH_FLOOR: f64 = 0.95;

fn main() {
    let mut smoke = false;
    let mut tune = false;
    let mut planner = false;
    let mut verify = false;
    let mut gate_path: Option<String> = None;
    let mut out_path = "BENCH_pb.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--tune" => tune = true,
            "--planner" => planner = true,
            "--verify" => verify = true,
            "--gate" => match args.next() {
                Some(path) => gate_path = Some(path),
                None => {
                    eprintln!("--gate needs the committed baseline path");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag {flag} (known: --smoke --tune --planner --verify --gate PATH)"
                );
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }

    let scale = if smoke { 10 } else { 12 };
    let reps = if smoke || pb_bench::quick_mode() {
        1
    } else {
        3
    };
    let max_threads = rayon::current_num_threads();

    // One workload serves the sweep, the tune loop and the verification
    // oracle — construction includes a full symbolic product, so building
    // it per consumer would triple that cost.
    let w = baseline_workload(scale);
    let mut doc = run_pb_baseline_on(&w, max_threads, reps);

    let mut table = Table::new(
        format!(
            "PB-SpGEMM baseline — {} (flop {:.1}M, cf {:.2}, host cores {}, numa {} [{}])",
            doc.workload,
            doc.flop as f64 / 1e6,
            doc.cf,
            doc.host_cores,
            doc.topology.domains,
            doc.topology.source,
        ),
        &[
            "threads",
            "effective",
            "oversub",
            "seconds",
            "GFLOPS",
            "speedup",
            "flushes",
            "domains",
            "local %",
        ],
    );
    for p in &doc.sweep {
        table.push_row(vec![
            p.threads_requested.to_string(),
            p.threads_effective.to_string(),
            if p.oversubscribed { "yes" } else { "no" }.to_string(),
            fmt(p.seconds, 6),
            fmt(p.gflops, 3),
            fmt(p.speedup_vs_1t, 2),
            p.telemetry.flushes.to_string(),
            p.telemetry.numa.domains.to_string(),
            fmt(p.telemetry.numa.local_flush_fraction * 100.0, 1),
        ]);
    }
    print_table(&table);
    let t = &doc.tiled;
    println!(
        "out-of-core smoke: {}x{}x{} grid under {} KiB, {} tile multiplies, \
         {} B spilled over {} tiles, resident high water {} B, bit-identical: {}",
        t.grid.0,
        t.grid.1,
        t.grid.2,
        t.budget_bytes / 1024,
        t.tiles_processed,
        t.spill_bytes,
        t.spilled_tiles,
        t.resident_high_water,
        t.bit_identical_to_resident,
    );

    if tune {
        let report = run_autotune(&w, 1, TUNE_MAX_ITERS);
        let mut table = Table::new(
            format!(
                "AutoTune trajectory — start {} line(s), converged {} lines ({} B, {} tuples) \
                 after {} multiplies",
                report.start_lines,
                report.converged_lines,
                report.converged_local_bin_bytes,
                report.converged_local_bin_capacity,
                report.iterations,
            ),
            &[
                "iter",
                "lines",
                "capacity",
                "flushes",
                "mean flush",
                "seconds",
            ],
        );
        for p in &report.history {
            table.push_row(vec![
                p.iteration.to_string(),
                p.local_bin_lines.to_string(),
                p.local_bin_capacity.to_string(),
                p.flushes.to_string(),
                fmt(p.mean_flush_tuples, 1),
                fmt(p.seconds, 6),
            ]);
        }
        print_table(&table);
        if !report.converged {
            eprintln!("warning: autotuner did not settle within {TUNE_MAX_ITERS} multiplies");
        }
        doc.tune = Some(report);
    }

    if planner {
        let report = run_planner_sweep(smoke || pb_bench::quick_mode(), reps);
        let mut table = Table::new(
            format!(
                "Planner regret sweep — max regret {:.1}% (ceiling {:.0}%), \
                 cold-start prior max {:.1}%, {} thread(s)",
                report.max_regret * 100.0,
                report.regret_ceiling * 100.0,
                report.max_prior_regret * 100.0,
                report.threads,
            ),
            &[
                "workload", "cf", "cf est", "chosen", "best", "regret %", "prior", "prior %",
            ],
        );
        for p in &report.points {
            table.push_row(vec![
                p.workload.clone(),
                fmt(p.cf, 2),
                fmt(p.cf_estimate, 2),
                p.chosen.clone(),
                p.best.clone(),
                fmt(p.regret * 100.0, 1),
                p.prior.clone(),
                fmt(p.prior_regret * 100.0, 1),
            ]);
        }
        print_table(&table);
        doc.planner = Some(report);
    }

    let json = serde_json::to_string_pretty(&doc).expect("serialize baseline");
    std::fs::write(&out_path, json + "\n").expect("write baseline JSON");
    println!("wrote {out_path} (best speedup {:.2}x)", doc.best_speedup);

    if verify {
        verify_baseline(&out_path, &w);
        println!("verified {out_path}: schema, phase ceilings, workspace reuse and oracle all OK");
    }

    if let Some(committed) = gate_path {
        gate_against(&committed, &out_path);
        println!("gated against {committed}: committed telemetry invariants hold");
    }
}

/// Re-reads and validates an emitted baseline: parses the JSON, checks the
/// schema tag and structure, applies the per-phase sanity ceiling, gates
/// the workspace reuse smoke, and cross-checks PB-SpGEMM against the
/// reference oracle on the same workload.  Panics (non-zero exit) on any
/// violation.
fn verify_baseline(path: &str, w: &Workload) {
    let doc = load_baseline(path);
    check_document(&doc, path);

    // --- ISA dispatch proof (fresh runs only; the committed file may have
    //     been generated on a host with a different SIMD level). -----------
    let active = pb_spgemm::simd::active();
    let sweep = doc
        .get("sweep")
        .and_then(Value::as_array)
        .expect("sweep must be an array");
    for (i, point) in sweep.iter().enumerate() {
        let isa = point
            .get("telemetry")
            .and_then(|t| t.get("isa"))
            .unwrap_or_else(|| panic!("sweep[{i}] telemetry missing the isa section"));
        assert_eq!(
            isa.get("isa").and_then(Value::as_str),
            Some(active.name()),
            "sweep[{i}] dispatched a different ISA level than this process resolved"
        );
        let counter = |key: &str| {
            isa.get(key)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("sweep[{i}] isa section missing {key}"))
        };
        if active == pb_spgemm::Isa::Scalar {
            assert_eq!(
                counter("simd_histograms"),
                0,
                "sweep[{i}] forced-scalar run still dispatched SIMD histograms"
            );
            assert_eq!(
                counter("prefetched_flushes"),
                0,
                "sweep[{i}] forced-scalar run still prefetched flushes"
            );
            assert!(
                counter("scalar_histograms") > 0,
                "sweep[{i}] scalar run reports no histogram invocations at all"
            );
        } else {
            assert!(
                counter("simd_histograms") > 0,
                "sweep[{i}] claims {} but no SIMD histogram kernel ever ran — \
                 the dispatch is lying or the sort never engaged it",
                active.name()
            );
            assert!(
                counter("prefetched_scatters") > 0,
                "sweep[{i}] scatter passes issued no prefetch hints"
            );
        }
    }

    // --- Correctness oracle (fresh runs only; the committed gate file was
    //     measured on a different workload scale). -------------------------
    let c = pb_spgemm::SpGemm::pb().multiply_csc(&w.a_csc, &w.a);
    let expected = pb_sparse::reference::multiply_csr(&w.a, &w.a);
    assert!(
        pb_sparse::reference::csr_approx_eq(&c, &expected, 1e-9),
        "PB-SpGEMM no longer matches the reference oracle on {}",
        w.name
    );
    assert_eq!(
        doc.get("nnz_c").and_then(Value::as_u64),
        Some(expected.nnz() as u64),
        "emitted nnz_c disagrees with the oracle"
    );
}

/// Parses a baseline JSON document from disk.
fn load_baseline(path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} must parse as JSON: {e:?}"))
}

/// Validates one baseline document's telemetry invariants (shared between
/// `--verify` on the fresh emission and `--gate` on the committed file):
/// schema tag, per-point structure and sanity ceilings, flop accounting,
/// oversubscription-flag consistency, the NUMA local-flush floor, and the
/// workspace reuse report.
fn check_document(doc: &Value, path: &str) {
    // --- Schema. -----------------------------------------------------------
    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(SCHEMA_TAG),
        "{path}: schema tag mismatch (regenerate with this bench_pb)"
    );
    for key in [
        "op",
        "workload",
        "n",
        "nnz",
        "flop",
        "nnz_c",
        "cf",
        "host_cores",
        "pool_default_threads",
        "topology",
        "sweep",
        "best_speedup",
        "workspace",
        "tiled",
        "planner",
    ] {
        assert!(
            doc.get(key).is_some(),
            "{path}: missing top-level key {key}"
        );
    }
    let sweep = doc
        .get("sweep")
        .and_then(Value::as_array)
        .expect("sweep must be an array");
    assert!(!sweep.is_empty(), "sweep must not be empty");
    let host_cores = doc
        .get("host_cores")
        .and_then(Value::as_u64)
        .expect("host_cores");

    for (i, point) in sweep.iter().enumerate() {
        for key in [
            "threads_requested",
            "threads_effective",
            "oversubscribed",
            "seconds",
            "gflops",
            "speedup_vs_1t",
            "phases",
            "telemetry",
        ] {
            assert!(point.get(key).is_some(), "sweep[{i}] missing {key}");
        }
        let effective = point
            .get("threads_effective")
            .and_then(Value::as_u64)
            .expect("threads_effective");
        assert_eq!(
            point.get("oversubscribed").and_then(Value::as_bool),
            Some(effective > host_cores),
            "sweep[{i}] oversubscribed flag inconsistent with host_cores"
        );
        let phases = point.get("phases").expect("phases");
        for phase in ["symbolic", "expand", "sort", "compress", "assemble"] {
            let t = phases
                .get(phase)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("sweep[{i}] missing phase {phase}"));
            assert!(
                (0.0..PHASE_SANITY_CEILING_SECONDS).contains(&t),
                "sweep[{i}] phase {phase} = {t}s breaches the sanity ceiling"
            );
        }
        let telemetry = point.get("telemetry").expect("telemetry");
        let flushed = telemetry
            .get("flushed_tuples")
            .and_then(Value::as_u64)
            .expect("flushed_tuples");
        assert_eq!(
            Some(flushed),
            doc.get("flop").and_then(Value::as_u64),
            "sweep[{i}] telemetry does not account for every expanded tuple"
        );

        // --- Workspace section (schema v3). ---------------------------------
        let ws = telemetry
            .get("workspace")
            .unwrap_or_else(|| panic!("sweep[{i}] telemetry missing the workspace section"));
        for key in ["bytes_allocated", "bytes_reused", "workspace_hits"] {
            assert!(
                ws.get(key).and_then(Value::as_u64).is_some(),
                "sweep[{i}] workspace section missing {key}"
            );
        }

        // --- ISA section (schema v5): whatever level the point claims, its
        //     own counters must prove it — a committed file asserting
        //     `avx2` with zero SIMD histogram invocations is evidence the
        //     dispatch silently fell back at generation time. ---------------
        let isa = telemetry
            .get("isa")
            .unwrap_or_else(|| panic!("sweep[{i}] telemetry missing the isa section"));
        let level = isa
            .get("isa")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("sweep[{i}] isa section missing the level name"));
        assert!(
            ["avx512", "avx2", "neon", "scalar"].contains(&level),
            "sweep[{i}] names unknown ISA level {level:?}"
        );
        let isa_counter = |key: &str| {
            isa.get(key)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| panic!("sweep[{i}] isa section missing {key}"))
        };
        let prefetched_flushes = isa_counter("prefetched_flushes");
        let simd_histograms = isa_counter("simd_histograms");
        let scalar_histograms = isa_counter("scalar_histograms");
        let prefetched_scatters = isa_counter("prefetched_scatters");
        if level == "scalar" {
            assert_eq!(
                (simd_histograms, prefetched_scatters, prefetched_flushes),
                (0, 0, 0),
                "sweep[{i}] scalar point reports SIMD/prefetch activity"
            );
            assert!(
                scalar_histograms > 0,
                "sweep[{i}] reports no histogram invocations at all"
            );
        } else {
            assert!(
                simd_histograms > 0,
                "sweep[{i}] claims {level} but its counters show no SIMD \
                 histogram kernel ever ran"
            );
        }

        // --- NUMA section (schema v2). ------------------------------------
        let numa = telemetry
            .get("numa")
            .unwrap_or_else(|| panic!("sweep[{i}] telemetry missing the numa section"));
        let domains = numa
            .get("domains")
            .and_then(Value::as_u64)
            .expect("numa.domains");
        assert!(domains >= 1, "sweep[{i}] reports zero domains");
        assert!(
            domains <= effective,
            "sweep[{i}] claims more domains than threads"
        );
        let occupancy = numa
            .get("domain_occupancy")
            .and_then(Value::as_array)
            .expect("numa.domain_occupancy");
        // The telemetry reports at most MAX_TELEMETRY_DOMAINS occupancy
        // slots (domains beyond that fold into the last one), so a >8-node
        // host legitimately reports fewer entries than domains.
        let expected_slots = domains.min(pb_spgemm::profile::MAX_TELEMETRY_DOMAINS as u64);
        assert_eq!(
            occupancy.len() as u64,
            expected_slots,
            "sweep[{i}] occupancy entries != min(domains, telemetry slots)"
        );
        let occupancy_sum: u64 = occupancy.iter().filter_map(Value::as_u64).sum();
        assert_eq!(
            Some(occupancy_sum),
            doc.get("flop").and_then(Value::as_u64),
            "sweep[{i}] per-domain occupancy does not partition the flop"
        );
        let local = numa
            .get("local_flushes")
            .and_then(Value::as_u64)
            .expect("numa.local_flushes");
        let remote = numa
            .get("remote_flushes")
            .and_then(Value::as_u64)
            .expect("numa.remote_flushes");
        let total_flushes = telemetry
            .get("flushes")
            .and_then(Value::as_u64)
            .expect("flushes");
        assert_eq!(
            local + remote,
            total_flushes,
            "sweep[{i}] flushes not fully accounted as local/remote"
        );
        // Flush prefetch is all-or-none per multiply: every flush prefetches
        // its destination under a SIMD level, none under forced scalar.
        assert_eq!(
            prefetched_flushes,
            if level == "scalar" { 0 } else { total_flushes },
            "sweep[{i}] prefetched_flushes inconsistent with level {level}"
        );
        let fraction = numa
            .get("local_flush_fraction")
            .and_then(Value::as_f64)
            .expect("numa.local_flush_fraction");
        assert!(
            (0.0..=1.0).contains(&fraction),
            "sweep[{i}] local flush fraction {fraction} out of range"
        );
        if domains > 1 {
            assert!(
                fraction >= NUMA_LOCAL_FLUSH_FLOOR,
                "sweep[{i}] domain-local flush fraction {fraction:.3} below the \
                 {NUMA_LOCAL_FLUSH_FLOOR} floor: domain routing has regressed"
            );
        } else {
            assert_eq!(
                remote, 0,
                "sweep[{i}] single-domain run reported remote flushes"
            );
        }
    }

    // --- Workspace reuse report: the repeated-multiply smoke must show a
    //     hit-serving, zero-allocation steady state bit-identical to the
    //     fresh path (workspace_hits == 0 here means reuse silently rotted).
    let ws = doc.get("workspace").expect("workspace report");
    let hits = ws
        .get("steady_workspace_hits")
        .and_then(Value::as_u64)
        .expect("workspace.steady_workspace_hits");
    assert!(
        hits > 0,
        "{path}: workspace_hits == 0 on the repeated-multiply smoke — reuse has regressed"
    );
    assert_eq!(
        ws.get("steady_bytes_allocated").and_then(Value::as_u64),
        Some(0),
        "{path}: steady-state multiplies still allocate workspace-managed buffers"
    );
    assert!(
        ws.get("steady_bytes_reused")
            .and_then(Value::as_u64)
            .is_some_and(|b| b > 0),
        "{path}: steady state reports no reused bytes"
    );
    assert_eq!(
        ws.get("bit_identical_to_fresh").and_then(Value::as_bool),
        Some(true),
        "{path}: workspace reuse changed the product"
    );
    // The zero-allocation proof above only covers the shipped configuration
    // if the tracing subsystem was compiled in but dormant during the smoke:
    // every span call site ran, none may have allocated.
    assert_eq!(
        ws.get("tracer_off").and_then(Value::as_bool),
        Some(true),
        "{path}: the workspace smoke ran with tracing enabled — the zero-alloc \
         gate must measure the dormant-tracer configuration"
    );

    // --- Tiled out-of-core smoke (schema v7): the starvation budget must
    //     actually spill, the store must honour its resident bound (budget
    //     plus one tile's slack), and the tiled product must be bit-identical
    //     to the resident engine's on the unit-valued workload.
    let tiled = doc.get("tiled").expect("tiled report");
    let tiled_u64 = |key: &str| {
        tiled
            .get(key)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("{path}: tiled section missing {key}"))
    };
    assert!(
        tiled_u64("tiles_processed") >= 1,
        "{path}: tiled smoke processed no tiles"
    );
    assert!(
        tiled_u64("spill_bytes") > 0,
        "{path}: tiled smoke never spilled — the starvation budget no longer \
         exercises the out-of-core path"
    );
    assert!(
        tiled_u64("spill_fetches") > 0,
        "{path}: tiled smoke never read a tile back from scratch"
    );
    assert!(
        tiled_u64("resident_high_water") <= tiled_u64("budget_bytes") + tiled_u64("max_tile_bytes"),
        "{path}: tiled resident high water exceeds budget + one tile's slack"
    );
    assert_eq!(
        tiled.get("within_budget_slack").and_then(Value::as_bool),
        Some(true),
        "{path}: tiled smoke breached its resident-bytes bound"
    );
    assert_eq!(
        tiled
            .get("bit_identical_to_resident")
            .and_then(Value::as_bool),
        Some(true),
        "{path}: tiled product no longer matches the resident engine bit-for-bit"
    );

    // --- Planner regret report (schema v4, `--planner` runs): every corpus
    //     point's calibrated pick must be within the regret ceiling of the
    //     fastest measured kernel.
    let planner = doc.get("planner").expect("planner key");
    if !planner.is_null() {
        let ceiling = planner
            .get("regret_ceiling")
            .and_then(Value::as_f64)
            .expect("planner.regret_ceiling");
        assert!(
            (ceiling - PLANNER_REGRET_CEILING).abs() < 1e-12,
            "{path}: planner report gated at {ceiling}, this bench_pb expects \
             {PLANNER_REGRET_CEILING}"
        );
        let points = planner
            .get("points")
            .and_then(Value::as_array)
            .expect("planner.points");
        assert!(!points.is_empty(), "{path}: planner corpus is empty");
        for (i, p) in points.iter().enumerate() {
            let workload = p
                .get("workload")
                .and_then(Value::as_str)
                .unwrap_or_else(|| panic!("planner.points[{i}] missing workload"));
            let regret = p
                .get("regret")
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("planner.points[{i}] missing regret"));
            assert!(
                regret <= ceiling,
                "{path}: planner chose {} on {workload}, costing {:.1}% over the best \
                 kernel {} — above the {:.0}% regret ceiling",
                p.get("chosen").and_then(Value::as_str).unwrap_or("?"),
                regret * 100.0,
                p.get("best").and_then(Value::as_str).unwrap_or("?"),
                ceiling * 100.0,
            );
            let kernels = p
                .get("kernels")
                .and_then(Value::as_array)
                .unwrap_or_else(|| panic!("planner.points[{i}] missing kernels"));
            assert!(
                kernels.len() >= 2,
                "{path}: planner.points[{i}] measured fewer than two kernels — \
                 regret against a single candidate is vacuous"
            );
        }
        let max_regret = planner
            .get("max_regret")
            .and_then(Value::as_f64)
            .expect("planner.max_regret");
        assert!(
            max_regret <= ceiling,
            "{path}: planner max regret {max_regret} breaches the ceiling {ceiling}"
        );
    }
}

/// Loads the committed baseline, re-checks every telemetry invariant on it
/// (so a regression in the *committed* numbers — schema drift, a stale
/// local-flush floor, inconsistent oversubscription flags — fails the
/// gate), and prints a per-thread-count diff summary against the fresh
/// emission.  The two files may be different workload scales (smoke vs
/// committed), so the diff is informational; the invariants are the gate.
fn gate_against(committed_path: &str, fresh_path: &str) {
    let committed = load_baseline(committed_path);
    check_document(&committed, committed_path);
    let fresh = load_baseline(fresh_path);

    let points = |doc: &Value| -> Vec<(u64, f64, f64, f64)> {
        doc.get("sweep")
            .and_then(Value::as_array)
            .map(|sweep| {
                sweep
                    .iter()
                    .filter_map(|p| {
                        Some((
                            p.get("threads_requested").and_then(Value::as_u64)?,
                            p.get("seconds").and_then(Value::as_f64)?,
                            p.get("gflops").and_then(Value::as_f64)?,
                            p.get("telemetry")?
                                .get("numa")?
                                .get("local_flush_fraction")
                                .and_then(Value::as_f64)?,
                        ))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let old = points(&committed);
    let new = points(&fresh);
    println!(
        "gate diff: committed {} ({}) vs fresh {} ({})",
        committed_path,
        committed
            .get("workload")
            .and_then(Value::as_str)
            .unwrap_or("?"),
        fresh_path,
        fresh.get("workload").and_then(Value::as_str).unwrap_or("?"),
    );
    for (t, secs, gflops, local) in &new {
        match old.iter().find(|(ot, ..)| ot == t) {
            Some((_, osecs, ogflops, olocal)) => println!(
                "  t={t}: seconds {} -> {} | GFLOPS {} -> {} | local% {} -> {}",
                fmt(*osecs, 6),
                fmt(*secs, 6),
                fmt(*ogflops, 3),
                fmt(*gflops, 3),
                fmt(olocal * 100.0, 1),
                fmt(local * 100.0, 1),
            ),
            None => println!(
                "  t={t}: (new point) seconds {} | GFLOPS {} | local% {}",
                fmt(*secs, 6),
                fmt(*gflops, 3),
                fmt(local * 100.0, 1),
            ),
        }
    }
}
