//! Figs. 9a/9b (and Fig. 10): PB-SpGEMM vs column SpGEMM baselines on
//! Graph500 R-MAT matrices, plus PB-SpGEMM's sustained phase bandwidth.
//!
//! Pass `--bandwidth` to print only the bandwidth table (Fig. 9b).

use pb_bench::figures::{performance_vs_scale, MatrixFamily};
use pb_bench::{print_table, quick_mode, repetitions, write_json};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let bandwidth_only = std::env::args().any(|a| a == "--bandwidth");
    let fig = performance_vs_scale(MatrixFamily::Rmat, quick_mode(), repetitions());
    if !bandwidth_only {
        print_table(&fig.performance);
    }
    print_table(&fig.bandwidth);
    write_json("fig9_rmat", &fig.measurements);
    println!(
        "expected shape (paper Figs. 9/10): PB-SpGEMM still leads, but its sustained bandwidth \
         is below the ER case because the skewed degree distribution produces unevenly filled \
         bins (load imbalance in the expand phase)."
    );
}
