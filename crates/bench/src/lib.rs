//! # pb-bench — the experiment harness
//!
//! One binary per table/figure of the paper regenerates that table/figure on
//! the local machine (see `DESIGN.md` for the full index):
//!
//! ```text
//! cargo run --release -p pb-bench --bin fig7_er          # Fig. 7a/7b
//! cargo run --release -p pb-bench --bin fig11_real       # Fig. 11
//! cargo run --release -p pb-bench --bin table5_stream    # Table V
//! ...
//! ```
//!
//! Every binary honours two environment variables:
//!
//! * `PB_BENCH_QUICK=1` — shrink the workloads so the whole suite finishes
//!   in seconds (used by `cargo bench` smoke runs and CI);
//! * `PB_BENCH_JSON=dir` — additionally dump each figure's data points as
//!   JSON into `dir`.
//!
//! This library crate holds the shared machinery: workload construction
//! ([`workloads`]), timed algorithm runs ([`runner`]) and table/JSON output
//! ([`report`]).

#![warn(missing_docs)]

pub mod baseline;
pub mod figures;
pub mod planner;
pub mod report;
pub mod runner;
pub mod workloads;

pub use report::{fmt, print_table, write_json, Table};
pub use runner::{measure, measure_pb_profile, Algorithm, Measurement};
pub use workloads::{er_matrix, rmat_matrix, standin_matrix, Workload, WorkloadSet};

/// Returns `true` when the quick (smoke-test) mode is requested via
/// `PB_BENCH_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("PB_BENCH_QUICK")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

/// Enables quick mode when `--smoke` appears among the CLI arguments.
///
/// Every figure/table binary calls this first thing in `main`, so CI can
/// smoke-run any of the 16 binaries with `-- --smoke` (tiny inputs, one
/// repetition) without exporting `PB_BENCH_QUICK` per step.
pub fn smoke_from_args() {
    if std::env::args().skip(1).any(|a| a == "--smoke") {
        std::env::set_var("PB_BENCH_QUICK", "1");
    }
}

/// Number of repetitions per measurement (the minimum time is reported).
pub fn repetitions() -> usize {
    if quick_mode() {
        1
    } else {
        std::env::var("PB_BENCH_REPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2)
    }
}
