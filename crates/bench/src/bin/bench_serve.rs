//! Traffic generator and service-level gate for the resident pb-serve
//! process.
//!
//! ```text
//! cargo run --release -p pb-bench --bin bench_serve -- [flags] [output-path]
//! ```
//!
//! Starts an in-process [`Server`], seeds its catalog from a known
//! generator seed, and drives it over real TCP sockets in three phases:
//!
//! 1. **Closed loop** — N clients issue back-to-back `multiply` requests,
//!    each waiting for its response; per-request latency is recorded and
//!    every response fingerprint is checked against a locally recomputed
//!    reference-oracle product.
//! 2. **Open burst** — M independent connections queue their requests
//!    without waiting, so the dispatcher can coalesce same-key multiplies
//!    into one engine call; the largest observed batch is recorded.
//! 3. **Steady state** — one client re-multiplies the same resident
//!    operands on the PB path after a warm-up, proving the entry's
//!    workspace serves the whole request (`bytes_allocated == 0`).
//!
//! The run is written as `BENCH_serve.json` (schema
//! [`SCHEMA_TAG`]) with client-observed p50/p95/p99 latencies, the
//! server's own per-op latency histograms (scraped from the `metrics` op
//! through the [`Exposition`] parser and embedded verbatim, buckets and
//! all), plus catalog / workspace / planner / ISA telemetry.
//!
//! Client and server measure the same requests from opposite ends of the
//! socket: the client sees queue + handling + network, the server records
//! handling alone, so `--verify` can cross-check the two distributions
//! (server percentiles must not exceed client ones beyond histogram
//! bucket granularity).
//!
//! Flags:
//!
//! * `--smoke` — CI-sized run (smaller matrix, fewer clients/requests).
//! * `--verify` — after writing, re-read the file and assert the service
//!   guarantees: zero protocol errors, every sampled response matched the
//!   oracle, at least one real batch formed, the steady state allocated
//!   nothing, and the telemetry sections are present and consistent.
//!   Exits non-zero on any violation (the CI serve-smoke gate).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use pb_bench::{fmt, print_table, Table};
use pb_serve::{fingerprint, Exposition, ServeConfig, Server};
use serde::Serialize;
use serde_json::Value;

/// Schema tag the emitted JSON must carry (bumped on breaking changes).
/// v2 added the `server_latency` per-op histogram section.
const SCHEMA_TAG: &str = "pb-serve-baseline/v2";

/// Burst attempts before conceding that no batch formed.  Batching is a
/// property of queue pressure, so a single burst can legitimately drain
/// one-by-one on an unloaded machine; several bursts cannot.
const BURST_ATTEMPTS: usize = 8;

/// A blocking line-oriented protocol client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to in-process server");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn call(&mut self, request: &str) -> Value {
        self.send(request);
        self.recv()
    }

    fn send(&mut self, request: &str) {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("send request");
    }

    fn recv(&mut self) -> Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        serde_json::from_str(&line).expect("response is valid JSON")
    }
}

fn ok(v: &Value) -> bool {
    v.get("ok").and_then(Value::as_bool) == Some(true)
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing integer `{key}` in {v:?}"))
}

/// Latency distribution over the closed-loop phase, in microseconds.
#[derive(Debug, Clone, Serialize)]
struct LatencyDoc {
    count: u64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    mean_us: f64,
    max_us: f64,
}

/// Outcome of the open-burst (batching) phase.
#[derive(Debug, Clone, Serialize)]
struct BatchingDoc {
    burst_connections: usize,
    attempts: usize,
    max_batched_with: u64,
    /// Every burst response carried the same product fingerprint as the
    /// unbatched oracle — batching never changed an answer.
    bit_identical: bool,
}

/// Outcome of the steady-state (workspace reuse) phase.
#[derive(Debug, Clone, Serialize)]
struct SteadyDoc {
    samples: u64,
    bytes_allocated_max: u64,
    bytes_reused_min: u64,
}

/// Oracle verification over every closed-loop response.
#[derive(Debug, Clone, Serialize)]
struct VerifyDoc {
    sampled: u64,
    matched: u64,
    oracle_fingerprint: u64,
}

/// One cumulative histogram bucket, straight off the metrics page.
#[derive(Debug, Clone, Serialize)]
struct BucketDoc {
    /// Upper bound in seconds (`le` label); `null` encodes `+Inf`.
    le_seconds: Option<f64>,
    cumulative: u64,
}

/// The server's own latency histogram for one op, scraped from
/// `pb_serve_request_seconds` after the run.  Percentiles are bucket
/// upper bounds, so they overestimate by at most one √2 bucket step.
#[derive(Debug, Clone, Serialize)]
struct OpLatencyDoc {
    op: String,
    count: u64,
    sum_seconds: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    buckets: Vec<BucketDoc>,
}

/// Server-side telemetry scraped from the `metrics` op after the run.
#[derive(Debug, Clone, Serialize)]
struct TelemetryDoc {
    requests_total: u64,
    errors_total: u64,
    batched_requests_total: u64,
    connections_total: u64,
    catalog_entries: u64,
    catalog_bytes_used: u64,
    catalog_bytes_budget: u64,
    catalog_evictions_total: u64,
    workspace_leases_total: u64,
    workspace_hits_total: u64,
    workspace_bytes_allocated_total: u64,
    workspace_bytes_reused_total: u64,
    workspace_bytes_released_total: u64,
    workspace_decay_events_total: u64,
    planner_last_kernel: String,
    simd_active: String,
}

/// The emitted baseline document.
#[derive(Debug, Clone, Serialize)]
struct ServeDoc {
    schema: String,
    op: String,
    workload: String,
    scale: u32,
    edge_factor: u32,
    seed: u64,
    clients: usize,
    requests_per_client: usize,
    wall_seconds: f64,
    throughput_rps: f64,
    latency: LatencyDoc,
    server_latency: Vec<OpLatencyDoc>,
    batching: BatchingDoc,
    steady_state: SteadyDoc,
    verification: VerifyDoc,
    telemetry: TelemetryDoc,
}

fn main() {
    let mut smoke = false;
    let mut verify = false;
    let mut out_path = "BENCH_serve.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--verify" => verify = true,
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag} (known: --smoke --verify)");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }

    let scale: u32 = if smoke { 7 } else { 10 };
    let edge_factor = 8u32;
    let seed = 42u64;
    let clients = if smoke { 4 } else { 8 };
    let requests_per_client = if smoke || pb_bench::quick_mode() {
        12
    } else {
        48
    };
    let burst_connections = if smoke { 12 } else { 24 };

    // The oracle: reproduce the server's generator output locally and push
    // it through the reference engine.  Every service response is then a
    // fingerprint comparison away from a full correctness check.
    let local = pb_gen::erdos_renyi_square(scale, edge_factor, seed);
    let expected = pb_sparse::reference::multiply_csr(&local, &local);
    let oracle_print = fingerprint(&expected);

    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .budget_bytes(256 << 20),
    )
    .expect("bind in-process server");
    let addr = server.addr();

    let mut admin = Client::connect(addr);
    let r = admin.call(&format!(
        r#"{{"op":"gen","name":"w","kind":"er","scale":{scale},"edge_factor":{edge_factor},"seed":{seed}}}"#
    ));
    assert!(ok(&r), "seeding the catalog failed: {r:?}");
    assert_eq!(
        u(&r, "fingerprint"),
        fingerprint(&local),
        "server-side generator diverged from the local reproduction"
    );

    // --- Phase 1: closed loop. -------------------------------------------
    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let mut latencies = Vec::with_capacity(requests_per_client);
                let mut matched = 0u64;
                for _ in 0..requests_per_client {
                    let t = Instant::now();
                    let r = c.call(r#"{"op":"multiply","a":"w","b":"w"}"#);
                    latencies.push(t.elapsed().as_secs_f64() * 1e6);
                    assert!(ok(&r), "closed-loop multiply failed: {r:?}");
                    if u(&r, "fingerprint") == oracle_print {
                        matched += 1;
                    }
                }
                (latencies, matched)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut matched = 0u64;
    for h in handles {
        let (l, m) = h.join().expect("closed-loop client");
        latencies.extend(l);
        matched += m;
    }
    let wall_seconds = started.elapsed().as_secs_f64();
    let sampled = (clients * requests_per_client) as u64;
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| -> f64 {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx]
    };
    let latency = LatencyDoc {
        count: latencies.len() as u64,
        p50_us: pct(0.50),
        p95_us: pct(0.95),
        p99_us: pct(0.99),
        mean_us: latencies.iter().sum::<f64>() / latencies.len() as f64,
        max_us: *latencies.last().unwrap(),
    };

    // --- Phase 2: open burst. --------------------------------------------
    let mut max_batch = 0u64;
    let mut bit_identical = true;
    let mut attempts = 0;
    while attempts < BURST_ATTEMPTS && max_batch < 2 {
        attempts += 1;
        let mut burst: Vec<Client> = (0..burst_connections)
            .map(|_| Client::connect(addr))
            .collect();
        for b in burst.iter_mut() {
            b.send(r#"{"op":"multiply","a":"w","b":"w"}"#);
        }
        for b in burst.iter_mut() {
            let r = b.recv();
            assert!(ok(&r), "burst multiply failed: {r:?}");
            bit_identical &= u(&r, "fingerprint") == oracle_print;
            max_batch = max_batch.max(u(&r, "batched_with"));
        }
    }
    let batching = BatchingDoc {
        burst_connections,
        attempts,
        max_batched_with: max_batch,
        bit_identical,
    };

    // --- Phase 3: steady state on the PB path. ---------------------------
    // (The planner may legitimately route small products to a baseline
    // kernel that bypasses the workspace, so the reuse proof forces PB.)
    for _ in 0..4 {
        let r = admin.call(r#"{"op":"multiply","a":"w","b":"w","algorithm":"pb"}"#);
        assert!(ok(&r), "warm-up multiply failed: {r:?}");
    }
    let steady_samples = 4u64;
    let mut bytes_allocated_max = 0u64;
    let mut bytes_reused_min = u64::MAX;
    for _ in 0..steady_samples {
        let r = admin.call(r#"{"op":"multiply","a":"w","b":"w","algorithm":"pb"}"#);
        assert!(ok(&r), "steady-state multiply failed: {r:?}");
        bytes_allocated_max = bytes_allocated_max.max(u(&r, "bytes_allocated"));
        bytes_reused_min = bytes_reused_min.min(u(&r, "bytes_reused"));
    }

    // --- Telemetry scrape. -----------------------------------------------
    let metrics = admin.call(r#"{"op":"metrics"}"#);
    let text = metrics
        .get("text")
        .and_then(Value::as_str)
        .expect("metrics text")
        .to_string();
    let page = Exposition::parse(&text).unwrap_or_else(|e| panic!("metrics page malformed: {e}"));
    page.check()
        .unwrap_or_else(|e| panic!("metrics page inconsistent: {e}"));
    let telemetry = scrape_telemetry(&text);
    let server_latency = scrape_server_latency(&page);

    server.shutdown();
    server.join();

    let doc = ServeDoc {
        schema: SCHEMA_TAG.to_string(),
        op: "serve".to_string(),
        workload: format!("er-scale{scale}-ef{edge_factor}"),
        scale,
        edge_factor,
        seed,
        clients,
        requests_per_client,
        wall_seconds,
        throughput_rps: sampled as f64 / wall_seconds,
        latency,
        server_latency,
        batching,
        steady_state: SteadyDoc {
            samples: steady_samples,
            bytes_allocated_max,
            bytes_reused_min,
        },
        verification: VerifyDoc {
            sampled,
            matched,
            oracle_fingerprint: oracle_print,
        },
        telemetry,
    };

    let mut table = Table::new(
        format!(
            "pb-serve closed loop — {} ({} clients x {} requests, {} rps)",
            doc.workload,
            doc.clients,
            doc.requests_per_client,
            fmt(doc.throughput_rps, 0),
        ),
        &[
            "p50 us",
            "p95 us",
            "p99 us",
            "mean us",
            "max batch",
            "verified",
        ],
    );
    table.push_row(vec![
        fmt(doc.latency.p50_us, 1),
        fmt(doc.latency.p95_us, 1),
        fmt(doc.latency.p99_us, 1),
        fmt(doc.latency.mean_us, 1),
        doc.batching.max_batched_with.to_string(),
        format!("{}/{}", doc.verification.matched, doc.verification.sampled),
    ]);
    print_table(&table);

    let mut ops = Table::new(
        "pb-serve server-side latency (handling only, histogram bucket bounds)".to_string(),
        &["op", "count", "p50 us", "p95 us", "p99 us", "mean us"],
    );
    for op in &doc.server_latency {
        ops.push_row(vec![
            op.op.clone(),
            op.count.to_string(),
            fmt(op.p50_us, 1),
            fmt(op.p95_us, 1),
            fmt(op.p99_us, 1),
            fmt(op.sum_seconds * 1e6 / op.count.max(1) as f64, 1),
        ]);
    }
    print_table(&ops);

    let json = serde_json::to_string_pretty(&doc).expect("serialize serve baseline");
    std::fs::write(&out_path, json + "\n").expect("write serve baseline JSON");
    println!("wrote {out_path}");

    if verify {
        verify_baseline(&out_path);
        println!(
            "verified {out_path}: schema, oracle sampling, batching, steady-state reuse \
             and telemetry all OK"
        );
    }
}

/// Parses the `metrics` text exposition into the telemetry section.
fn scrape_telemetry(text: &str) -> TelemetryDoc {
    let counter = |name: &str| -> u64 {
        text.lines()
            .find(|l| l.split_whitespace().next() == Some(name))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metrics text missing counter {name}"))
    };
    let label = |family: &str| -> String {
        text.lines()
            .find(|l| l.starts_with(family))
            .and_then(|l| l.split('"').nth(1))
            .map(str::to_string)
            .unwrap_or_else(|| panic!("metrics text missing labeled family {family}"))
    };
    TelemetryDoc {
        requests_total: counter("pb_serve_requests_total"),
        errors_total: counter("pb_serve_errors_total"),
        batched_requests_total: counter("pb_serve_batched_requests_total"),
        connections_total: counter("pb_serve_connections_total"),
        catalog_entries: counter("pb_serve_catalog_entries"),
        catalog_bytes_used: counter("pb_serve_catalog_bytes_used"),
        catalog_bytes_budget: counter("pb_serve_catalog_bytes_budget"),
        catalog_evictions_total: counter("pb_serve_catalog_evictions_total"),
        workspace_leases_total: counter("pb_workspace_leases_total"),
        workspace_hits_total: counter("pb_workspace_hits_total"),
        workspace_bytes_allocated_total: counter("pb_workspace_bytes_allocated_total"),
        workspace_bytes_reused_total: counter("pb_workspace_bytes_reused_total"),
        workspace_bytes_released_total: counter("pb_workspace_bytes_released_total"),
        workspace_decay_events_total: counter("pb_workspace_decay_events_total"),
        planner_last_kernel: label("pb_planner_last_decision"),
        simd_active: label("pb_simd_active"),
    }
}

/// Extracts every op's `pb_serve_request_seconds` histogram from the
/// parsed metrics page.  Percentiles are read off the cumulative buckets
/// as upper bounds: the smallest `le` whose cumulative count covers the
/// quantile.
fn scrape_server_latency(page: &Exposition) -> Vec<OpLatencyDoc> {
    let mut ops: Vec<String> = page
        .series("pb_serve_request_seconds_count")
        .iter()
        .filter_map(|s| s.label("op").map(str::to_string))
        .collect();
    ops.sort();
    ops.iter()
        .map(|op| {
            let count = page
                .value("pb_serve_request_seconds_count", &[("op", op)])
                .expect("histogram _count") as u64;
            let sum_seconds = page
                .value("pb_serve_request_seconds_sum", &[("op", op)])
                .expect("histogram _sum");
            let mut buckets: Vec<(f64, u64)> = page
                .series("pb_serve_request_seconds_bucket")
                .iter()
                .filter(|s| s.label("op") == Some(op))
                .map(|s| {
                    let le = s.label("le").expect("bucket le label");
                    let le = if le == "+Inf" {
                        f64::INFINITY
                    } else {
                        le.parse().expect("finite le")
                    };
                    (le, s.value as u64)
                })
                .collect();
            buckets.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let pct = |q: f64| -> f64 {
                let target = (count as f64 * q).ceil().max(1.0) as u64;
                for &(le, cum) in &buckets {
                    if cum >= target && le.is_finite() {
                        return le * 1e6;
                    }
                }
                // Quantile landed in +Inf: report the mean as the best
                // finite stand-in.
                sum_seconds * 1e6 / count.max(1) as f64
            };
            OpLatencyDoc {
                op: op.clone(),
                count,
                sum_seconds,
                p50_us: pct(0.50),
                p95_us: pct(0.95),
                p99_us: pct(0.99),
                buckets: buckets
                    .iter()
                    .map(|&(le, cumulative)| BucketDoc {
                        le_seconds: le.is_finite().then_some(le),
                        cumulative,
                    })
                    .collect(),
            }
        })
        .collect()
}

/// Re-reads an emitted serve baseline and asserts the service guarantees.
/// Panics (non-zero exit) on any violation — this is the CI serve-smoke
/// gate.
fn verify_baseline(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let doc: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| panic!("{path} must parse as JSON: {e:?}"));

    assert_eq!(
        doc.get("schema").and_then(Value::as_str),
        Some(SCHEMA_TAG),
        "{path}: schema tag mismatch (regenerate with this bench_serve)"
    );

    // Latency distribution: present, ordered, complete.
    let latency = doc.get("latency").expect("latency section");
    let lat = |key: &str| {
        latency
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("{path}: latency section missing {key}"))
    };
    let (p50, p95, p99) = (lat("p50_us"), lat("p95_us"), lat("p99_us"));
    assert!(
        p50 > 0.0 && p50 <= p95 && p95 <= p99,
        "{path}: latency percentiles out of order (p50={p50} p95={p95} p99={p99})"
    );
    assert_eq!(
        latency.get("count").and_then(Value::as_u64),
        doc.get("verification")
            .and_then(|v| v.get("sampled"))
            .and_then(Value::as_u64),
        "{path}: latency count disagrees with the sampled request count"
    );

    // Server-side histograms: present, self-consistent, and agreeing with
    // what the clients measured from their end of the socket.
    let server_latency = doc
        .get("server_latency")
        .and_then(Value::as_array)
        .expect("server_latency section");
    let multiply = server_latency
        .iter()
        .find(|o| o.get("op").and_then(Value::as_str) == Some("multiply"))
        .unwrap_or_else(|| panic!("{path}: no server-side multiply histogram"));
    let server_count = u(multiply, "count");
    let sampled_requests = doc
        .get("verification")
        .and_then(|v| v.get("sampled"))
        .and_then(Value::as_u64)
        .expect("verification.sampled");
    assert!(
        server_count >= sampled_requests,
        "{path}: server multiply histogram ({server_count}) missed closed-loop requests \
         ({sampled_requests})"
    );
    let buckets = multiply
        .get("buckets")
        .and_then(Value::as_array)
        .expect("bucket array");
    let mut prev = 0u64;
    for b in buckets {
        let c = u(b, "cumulative");
        assert!(c >= prev, "{path}: multiply buckets not cumulative");
        prev = c;
    }
    assert_eq!(
        prev, server_count,
        "{path}: +Inf bucket disagrees with the histogram count"
    );
    // The server records handling alone; the client adds queue + network on
    // top, and the server's percentiles are √2-bucket upper bounds.  A
    // generous 4x + 1ms envelope keeps the check meaningful (the server
    // can never be an order of magnitude slower than what clients saw)
    // without flaking on scheduler noise.
    let server_pct = |key: &str| {
        multiply
            .get(key)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("{path}: server multiply histogram missing {key}"))
    };
    for (client_q, server_q, client_v) in [
        ("p50_us", "p50_us", p50),
        ("p95_us", "p95_us", p95),
        ("p99_us", "p99_us", p99),
    ] {
        let server_v = server_pct(server_q);
        assert!(
            server_v <= client_v * 4.0 + 1000.0,
            "{path}: server {server_q}={server_v}us exceeds client {client_q}={client_v}us \
             beyond bucket granularity"
        );
    }

    // Oracle sampling: every sampled response matched the reference product.
    let verification = doc.get("verification").expect("verification section");
    let sampled = u(verification, "sampled");
    assert!(sampled > 0, "{path}: no responses were sampled");
    assert_eq!(
        u(verification, "matched"),
        sampled,
        "{path}: some responses did not match the reference oracle"
    );

    // Batching: at least one real batch formed, without changing answers.
    let batching = doc.get("batching").expect("batching section");
    assert!(
        u(batching, "max_batched_with") >= 2,
        "{path}: no multiply batch ever formed across {} burst attempts",
        u(batching, "attempts"),
    );
    assert_eq!(
        batching.get("bit_identical").and_then(Value::as_bool),
        Some(true),
        "{path}: a batched response diverged from the unbatched product"
    );

    // Steady state: the resident workspace served everything.
    let steady = doc.get("steady_state").expect("steady_state section");
    assert!(u(steady, "samples") > 0, "{path}: steady state unsampled");
    assert_eq!(
        u(steady, "bytes_allocated_max"),
        0,
        "{path}: steady-state multiplies still allocate workspace-managed buffers"
    );
    assert!(
        u(steady, "bytes_reused_min") > 0,
        "{path}: steady state reports no reused bytes"
    );

    // Telemetry: protocol stayed clean and the engine sections are present.
    let telemetry = doc.get("telemetry").expect("telemetry section");
    assert_eq!(
        u(telemetry, "errors_total"),
        0,
        "{path}: the server answered some requests with protocol errors"
    );
    assert!(u(telemetry, "requests_total") >= sampled);
    assert!(u(telemetry, "batched_requests_total") >= 1);
    assert!(u(telemetry, "workspace_leases_total") > 0);
    assert!(u(telemetry, "catalog_entries") >= 1);
    assert!(
        u(telemetry, "catalog_bytes_used") <= u(telemetry, "catalog_bytes_budget"),
        "{path}: catalog over budget"
    );
    let planned = telemetry
        .get("planner_last_kernel")
        .and_then(Value::as_str)
        .expect("planner_last_kernel");
    assert!(!planned.is_empty(), "{path}: planner telemetry is empty");
    let isa = telemetry
        .get("simd_active")
        .and_then(Value::as_str)
        .expect("simd_active");
    assert!(
        ["avx512", "avx2", "neon", "scalar"].contains(&isa),
        "{path}: unknown ISA level {isa:?}"
    );
}
