//! Compressed Sparse Column (CSC) format.
//!
//! The outer-product formulation of SpGEMM streams `A` column by column, so
//! PB-SpGEMM takes its first operand in CSC.  Internally CSC is the mirror
//! image of [`Csr`]: `A` stored in CSC is exactly `Aᵀ` stored in CSR, and the
//! implementation leans on that duality for conversions.

use crate::coo::Coo;
use crate::csr::Csr;
use crate::dense::Dense;
use crate::error::SparseError;
use crate::semiring::{Numeric, PlusTimes, Semiring};
use crate::{Index, Scalar};

/// A sparse matrix in Compressed Sparse Column format.
///
/// Invariants mirror those of [`Csr`]: `colptr.len() == ncols + 1`,
/// `colptr[0] == 0`, non-decreasing offsets, `colptr[ncols] == nnz`, and all
/// row indices `< nrows`.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc<T> {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<Index>,
    values: Vec<T>,
}

impl<T: Scalar> Csc<T> {
    /// Creates an empty `nrows x ncols` matrix.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Csc {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds a CSC matrix from raw arrays, validating all invariants.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<Index>,
        values: Vec<T>,
    ) -> Result<Self, SparseError> {
        // Validate by viewing the arrays as the CSR representation of the
        // transpose, then undo the reinterpretation.
        let csr = Csr::from_parts(ncols, nrows, colptr, rowidx, values)?;
        let (ncols, nrows, colptr, rowidx, values) = csr.into_parts();
        Ok(Csc {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        })
    }

    /// Builds a CSC matrix from raw arrays without validation (checked in
    /// debug builds).
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<Index>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(colptr.len(), ncols + 1);
        debug_assert_eq!(*colptr.last().unwrap_or(&0), rowidx.len());
        debug_assert_eq!(rowidx.len(), values.len());
        debug_assert!(rowidx.iter().all(|&r| (r as usize) < nrows || nrows == 0));
        Csc {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// Average number of stored entries per column.
    pub fn avg_degree(&self) -> f64 {
        if self.ncols == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.ncols as f64
        }
    }

    /// The column-offset array (`ncols + 1` entries).
    #[inline]
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// The row-index array.
    #[inline]
    pub fn rowidx(&self) -> &[Index] {
        &self.rowidx
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn col_nnz(&self, j: usize) -> usize {
        self.colptr[j + 1] - self.colptr[j]
    }

    /// The row indices and values of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> (&[Index], &[T]) {
        let lo = self.colptr[j];
        let hi = self.colptr[j + 1];
        (&self.rowidx[lo..hi], &self.values[lo..hi])
    }

    /// Looks up entry `(i, j)`; returns `None` if it is not stored.
    pub fn get(&self, i: usize, j: usize) -> Option<T> {
        let (rows, vals) = self.col(j);
        let i = i as Index;
        if rows.windows(2).all(|w| w[0] <= w[1]) {
            rows.binary_search(&i).ok().map(|k| vals[k])
        } else {
            rows.iter().position(|&r| r == i).map(|k| vals[k])
        }
    }

    /// Iterates over all `(row, col, value)` entries in column-major order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, T)> + '_ {
        (0..self.ncols).flat_map(move |j| {
            let (rows, vals) = self.col(j);
            rows.iter()
                .zip(vals)
                .map(move |(&r, &v)| (r, j as Index, v))
        })
    }

    /// Consumes the matrix and returns `(nrows, ncols, colptr, rowidx, values)`.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<Index>, Vec<T>) {
        (
            self.nrows,
            self.ncols,
            self.colptr,
            self.rowidx,
            self.values,
        )
    }

    /// Reinterprets this CSC matrix as the CSR representation of its
    /// transpose (no data movement).
    pub fn transpose_into_csr(self) -> Csr<T> {
        Csr::from_parts_unchecked(
            self.ncols,
            self.nrows,
            self.colptr,
            self.rowidx,
            self.values,
        )
    }

    /// Borrows this CSC matrix as the CSR representation of its transpose.
    ///
    /// Handy for reusing row-oriented kernels on column data without cloning.
    pub fn as_transposed_csr(&self) -> Csr<T> {
        Csr::from_parts_unchecked(
            self.ncols,
            self.nrows,
            self.colptr.clone(),
            self.rowidx.clone(),
            self.values.clone(),
        )
    }

    /// Converts to CSR (out-of-place transpose of the underlying arrays).
    pub fn to_csr(&self) -> Csr<T>
    where
        T: Default,
    {
        // self viewed as CSR of the transpose, transposed again.
        self.as_transposed_csr().transpose()
    }

    /// Converts to COO format.
    pub fn to_coo(&self) -> Coo<T> {
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for (r, c, v) in self.iter() {
            rows.push(r);
            cols.push(c);
            vals.push(v);
        }
        Coo::from_parts_unchecked(self.nrows, self.ncols, rows, cols, vals)
    }

    /// Converts to a dense matrix.
    pub fn to_dense(&self) -> Dense<T>
    where
        T: Default,
    {
        let mut d = Dense::filled(self.nrows, self.ncols, T::default());
        for (r, c, v) in self.iter() {
            d[(r as usize, c as usize)] = v;
        }
        d
    }

    /// Returns `true` if row indices are sorted within every column.
    pub fn has_sorted_indices(&self) -> bool {
        (0..self.ncols).all(|j| self.col(j).0.windows(2).all(|w| w[0] <= w[1]))
    }

    /// Sorts row indices (and matching values) within every column.
    pub fn sort_indices(&mut self) {
        let this = std::mem::replace(self, Csc::empty(0, 0));
        let mut csr = this.transpose_into_csr();
        csr.sort_indices();
        *self = csr.transpose_into_csc();
    }

    /// Merges duplicate row indices within each column using the semiring.
    pub fn sum_duplicates_with<S>(&mut self)
    where
        S: Semiring<Elem = T>,
    {
        let this = std::mem::replace(self, Csc::empty(0, 0));
        let mut csr = this.transpose_into_csr();
        csr.sum_duplicates_with::<S>();
        *self = csr.transpose_into_csc();
    }

    /// Validates all structural invariants.
    pub fn validate(&self) -> Result<(), SparseError> {
        Csc::from_parts(
            self.nrows,
            self.ncols,
            self.colptr.clone(),
            self.rowidx.clone(),
            self.values.clone(),
        )
        .map(|_| ())
    }
}

impl<T: Numeric> Csc<T> {
    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        Csr::<T>::identity(n).transpose_into_csc()
    }

    /// Merges duplicate row indices by ordinary addition.
    pub fn sum_duplicates(&mut self) {
        self.sum_duplicates_with::<PlusTimes<T>>();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same 3x4 matrix as the CSR tests:
    /// ```text
    /// [ 1 0 2 0 ]
    /// [ 0 0 0 3 ]
    /// [ 4 5 0 6 ]
    /// ```
    fn sample_csr() -> Csr<f64> {
        Csr::from_parts(
            3,
            4,
            vec![0, 2, 3, 6],
            vec![0, 2, 3, 0, 1, 3],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap()
    }

    fn sample() -> Csc<f64> {
        sample_csr().to_csc()
    }

    #[test]
    fn accessors_and_column_views() {
        let m = sample();
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nnz(), 6);
        assert_eq!(m.col_nnz(0), 2);
        assert_eq!(m.col_nnz(2), 1);
        assert_eq!(m.col(3).0, &[1, 2]);
        assert_eq!(m.col(3).1, &[3.0, 6.0]);
        assert_eq!(m.get(2, 1), Some(5.0));
        assert_eq!(m.get(0, 1), None);
        assert!((m.avg_degree() - 1.5).abs() < 1e-12);
        assert!(m.has_sorted_indices());
        assert!(m.validate().is_ok());
    }

    #[test]
    fn roundtrips_preserve_content() {
        let csr = sample_csr();
        let csc = csr.to_csc();
        assert_eq!(csc.to_csr(), csr);
        assert_eq!(csc.to_dense(), csr.to_dense());
        assert_eq!(csc.to_coo().to_dense(), csr.to_dense());
    }

    #[test]
    fn transpose_reinterpretations_are_inverse() {
        let csc = sample();
        let dense = csc.to_dense();
        let csr_of_t = csc.clone().transpose_into_csr();
        assert_eq!(csr_of_t.shape(), (4, 3));
        let back = csr_of_t.transpose_into_csc();
        assert_eq!(back.to_dense(), dense);
    }

    #[test]
    fn from_parts_validates() {
        // Row index out of bounds.
        assert!(Csc::<f64>::from_parts(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]).is_err());
        // Bad colptr.
        assert!(Csc::<f64>::from_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn identity_is_diagonal() {
        let id = Csc::<f64>::identity(3);
        assert_eq!(id.nnz(), 3);
        for i in 0..3 {
            assert_eq!(id.get(i, i), Some(1.0));
        }
        assert_eq!(id.get(0, 1), None);
    }

    #[test]
    fn sort_and_sum_duplicates() {
        // Column 0 has entries (1, 2.0), (0, 1.0), (1, 5.0) -> unsorted + dup.
        let mut m =
            Csc::<f64>::from_parts_unchecked(2, 1, vec![0, 3], vec![1, 0, 1], vec![2.0, 1.0, 5.0]);
        assert!(!m.has_sorted_indices());
        m.sort_indices();
        assert!(m.has_sorted_indices());
        m.sum_duplicates();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(1, 0), Some(7.0));
        assert_eq!(m.get(0, 0), Some(1.0));
    }

    #[test]
    fn empty_matrix() {
        let m: Csc<f64> = Csc::empty(4, 0);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.avg_degree(), 0.0);
        let m: Csc<f64> = Csc::empty(0, 4);
        assert_eq!(m.iter().count(), 0);
    }
}
