//! Triangle counting with SpGEMM — one of the graph workloads that motivates
//! the paper (Sec. I cites Azad et al.'s masked SpGEMM formulation).
//!
//! For an undirected graph with (symmetric, binary) adjacency matrix `A`,
//! the number of triangles is `Σ (A ⊙ A²) / 6`, where `⊙` is the
//! element-wise (Hadamard) product.  The SpGEMM `A²` dominates the cost and
//! is computed with PB-SpGEMM here.
//!
//! ```bash
//! cargo run --release --example triangle_counting [scale] [edge_factor]
//! ```

use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::reference::{hadamard_csr_with, sum_values_with};

/// Builds a symmetric, loop-free, binary adjacency matrix from an R-MAT
/// generator output.
fn undirected_graph(scale: u32, edge_factor: u32, seed: u64) -> Csr<f64> {
    let raw = rmat_square(scale, edge_factor, seed);
    // Symmetrise (A + Aᵀ), drop self-loops, make every edge weight 1.
    let sym = reference::add_csr_with::<PlusTimes<f64>>(&raw, &raw.transpose());
    sym.prune(|r, c, _| r != c).map_values(|_| 1.0)
}

/// Exact triangle count by brute-force neighbourhood intersection (oracle).
fn count_triangles_oracle(a: &Csr<f64>) -> u64 {
    let mut count = 0u64;
    for u in 0..a.nrows() {
        let (neigh_u, _) = a.row(u);
        for &v in neigh_u {
            if (v as usize) <= u {
                continue;
            }
            let (neigh_v, _) = a.row(v as usize);
            // Count common neighbours w > v to count each triangle once.
            let mut i = 0;
            let mut j = 0;
            while i < neigh_u.len() && j < neigh_v.len() {
                match neigh_u[i].cmp(&neigh_v[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        if neigh_u[i] > v {
                            count += 1;
                        }
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    count
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let edge_factor: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8);

    let a = undirected_graph(scale, edge_factor, 7);
    println!(
        "graph: {} vertices, {} undirected edges",
        a.nrows(),
        a.nnz() / 2
    );

    // A² with PB-SpGEMM (counts 2-paths between every pair of vertices).
    let t = std::time::Instant::now();
    let a2 = SpGemm::pb().multiply(&a, &a);
    let spgemm_time = t.elapsed();

    // Mask with A and sum: every triangle {u, v, w} is counted 6 times.
    let masked = hadamard_csr_with::<PlusTimes<f64>>(&a, &a2);
    let total = sum_values_with::<PlusTimes<f64>>(&masked);
    let triangles = (total / 6.0).round() as u64;

    println!(
        "PB-SpGEMM A^2: {:.1} ms (flop = {}), triangles = {}",
        spgemm_time.as_secs_f64() * 1e3,
        MultiplyStats::compute(&a, &a).flop,
        triangles
    );

    // Verify on a small graph (the oracle is O(Σ d²) and slow for big ones).
    if a.nrows() <= 1 << 13 {
        let expected = count_triangles_oracle(&a);
        assert_eq!(triangles, expected, "triangle count mismatch");
        println!("verified against the neighbourhood-intersection oracle ✔");
    }

    // The same count via a column baseline, to show algorithm independence.
    let a2_hash = Baseline::Hash.multiply(&a, &a);
    let total_hash =
        sum_values_with::<PlusTimes<f64>>(&hadamard_csr_with::<PlusTimes<f64>>(&a, &a2_hash));
    assert_eq!((total_hash / 6.0).round() as u64, triangles);
    println!("HashSpGEMM agrees ✔");
}
