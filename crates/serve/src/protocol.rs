//! The line-delimited JSON wire protocol.
//!
//! One request per line, one JSON object per request, `"op"` selects the
//! operation; the server answers with exactly one JSON object per request
//! (`"ok": true` plus op-specific fields, or `"ok": false` plus
//! `"error"`).  Any request may carry an `"id"` field (any JSON value);
//! it is echoed verbatim in the response.  Because multiple workers answer
//! one connection concurrently, a client that pipelines requests may see
//! responses out of request order — `id` is how it re-correlates them.
//! The vendored `serde_json` round-trips everything here — no crates.io
//! parser involved.
//!
//! | op         | request fields                                           |
//! |------------|----------------------------------------------------------|
//! | `ping`     | —                                                        |
//! | `store`    | `name`, `rows`, `cols`, `entries: [[r,c,v],…]`           |
//! | `gen`      | `name`, `kind: "rmat"\|"er"`, `scale`, `edge_factor`, `seed` |
//! | `load`     | `name`, `path` (under the configured load dir)           |
//! | `multiply` | `a`, `b`, `algorithm?`, `store_as?`, `return?: "entries"`, `ooc_budget_mb?` |
//! | `mcl`      | `name`, `inflation?`, `max_iterations?`                  |
//! | `bc`       | `name`, `sources?`, `batch_size?`                        |
//! | `apsp`     | `name`                                                   |
//! | `evict`    | `name`                                                   |
//! | `list`     | —                                                        |
//! | `metrics`  | —                                                        |
//! | `trace`    | `enable?: bool`                                          |
//! | `shutdown` | —                                                        |
//!
//! Every op additionally accepts `id` (any JSON value, echoed back).

use pb_sparse::Csr;
use pb_spgemm::Algorithm;
use serde::Value;

/// Largest product (in nonzeros) a `return: "entries"` multiply will ship
/// back — verification sampling works on small smoke matrices, and an
/// unbounded reply would let one request monopolise the connection.
pub const MAX_RETURNED_ENTRIES: usize = 1 << 20;

/// A parsed request, one per input line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Store an explicit matrix under `name`.
    Store {
        /// Catalog name of the new entry.
        name: String,
        /// Row count.
        rows: usize,
        /// Column count.
        cols: usize,
        /// `(row, col, value)` triples.
        entries: Vec<(usize, usize, f64)>,
    },
    /// Generate a synthetic matrix server-side and store it under `name`
    /// (deterministic per seed, so clients can reproduce it locally for
    /// verification).
    Gen {
        /// Catalog name of the new entry.
        name: String,
        /// `"rmat"` (Graph500 R-MAT) or `"er"` (Erdős–Rényi).
        kind: GenKind,
        /// log2 of the dimension.
        scale: u32,
        /// Average nonzeros per row.
        edge_factor: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Load a matrix from disk (any [`pb_gen::MatrixSource`] file: Matrix
    /// Market or PBSM binary) and store it under `name`.  The path must
    /// resolve under the server's configured load directory, and the
    /// estimated size is checked against the memory budget *before* any
    /// allocation — same discipline as `gen`.
    Load {
        /// Catalog name of the new entry.
        name: String,
        /// File path, relative to (or absolute under) the load directory.
        path: String,
    },
    /// Multiply two resident matrices.
    Multiply {
        /// Left operand (catalog name) — its engine runs the product.
        a: String,
        /// Right operand (catalog name).
        b: String,
        /// Per-request algorithm override.
        algorithm: Option<Algorithm>,
        /// Store the product back into the catalog under this name.
        store_as: Option<String>,
        /// Ship the product's entries back (bounded by
        /// [`MAX_RETURNED_ENTRIES`]).
        want_entries: bool,
        /// Run the tiled out-of-core driver with this tile-store budget
        /// (MiB) instead of the resident engine.  OOC multiplies are never
        /// batched: their accumulation order differs from the resident
        /// kernels', so the bit-identity batching guarantee cannot hold
        /// across the two paths.
        ooc_budget_mb: Option<u64>,
    },
    /// Markov clustering of a resident matrix.
    Mcl {
        /// Catalog name.
        name: String,
        /// Inflation exponent.
        inflation: f64,
        /// Iteration cap.
        max_iterations: usize,
    },
    /// Betweenness centrality of a resident matrix.
    Bc {
        /// Catalog name.
        name: String,
        /// Number of BFS sources (`0..sources`); 0 = every vertex.
        sources: usize,
        /// Sources per SpGEMM batch.
        batch_size: usize,
    },
    /// Min-plus all-pairs shortest paths of a resident matrix.
    Apsp {
        /// Catalog name.
        name: String,
    },
    /// Drop a catalog entry.
    Evict {
        /// Catalog name.
        name: String,
    },
    /// Enumerate the catalog.
    List,
    /// Render the telemetry text endpoint.
    Metrics,
    /// Snapshot the process trace as Chrome trace-event JSON, optionally
    /// toggling the tracer first.
    Trace {
        /// `Some(true)`/`Some(false)` flips the tracer before snapshotting;
        /// `None` leaves it as configured (`PB_TRACE`).
        enable: Option<bool>,
    },
    /// Stop the server.
    Shutdown,
}

/// Synthetic generator kinds the `gen` op accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenKind {
    /// Graph500 R-MAT (skewed degrees).
    Rmat,
    /// Erdős–Rényi (uniform degrees).
    Er,
}

impl Request {
    /// The wire name of this request's op — the `op` label on the server's
    /// per-op latency histograms, so every label value is a fixed, known
    /// string (never client-controlled text).
    pub fn op_name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Store { .. } => "store",
            Request::Gen { .. } => "gen",
            Request::Load { .. } => "load",
            Request::Multiply { .. } => "multiply",
            Request::Mcl { .. } => "mcl",
            Request::Bc { .. } => "bc",
            Request::Apsp { .. } => "apsp",
            Request::Evict { .. } => "evict",
            Request::List => "list",
            Request::Metrics => "metrics",
            Request::Trace { .. } => "trace",
            Request::Shutdown => "shutdown",
        }
    }

    /// Batching identity of a multiply: requests with equal keys produce
    /// bit-identical products, so the dispatcher computes them once under a
    /// single workspace lease.  `None` for every other op.
    pub fn batch_key(&self) -> Option<(String, String, &'static str)> {
        match self {
            // OOC multiplies are excluded: the tiled accumulation order is
            // deterministic but differs from the resident kernels', so a
            // tiled and a resident request for the same operands would not
            // be bit-identical.
            Request::Multiply {
                ooc_budget_mb: Some(_),
                ..
            } => None,
            Request::Multiply {
                a, b, algorithm, ..
            } => Some((
                a.clone(),
                b.clone(),
                algorithm.map(|alg| alg.name()).unwrap_or("default"),
            )),
            _ => None,
        }
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string field `{key}`"))
}

fn uint_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing or non-integer field `{key}`"))
}

fn uint_field_or(v: &Value, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f
            .as_u64()
            .ok_or_else(|| format!("non-integer field `{key}`")),
    }
}

fn float_field_or(v: &Value, key: &str, default: f64) -> Result<f64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f
            .as_f64()
            .ok_or_else(|| format!("non-number field `{key}`")),
    }
}

/// One parsed protocol line: the request (or the error string to answer
/// with) plus the client's optional correlation `id`, recovered whenever
/// the line was at least valid JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct Parsed {
    /// The `id` field of the request object, if present — echoed verbatim
    /// in the response so pipelined clients can match out-of-order
    /// responses to requests.
    pub id: Option<Value>,
    /// The parsed request, or the error string to send back.
    pub request: Result<Request, String>,
}

/// Parses one protocol line, preserving the correlation `id` even when the
/// request itself is rejected (so the error response still correlates).
pub fn parse_line(line: &str) -> Parsed {
    match serde_json::from_str(line) {
        Err(e) => Parsed {
            id: None,
            request: Err(format!("malformed JSON: {e}")),
        },
        Ok(v) => Parsed {
            id: v.get("id").cloned(),
            request: request_of(&v),
        },
    }
}

/// Parses one protocol line into a [`Request`]; the error string is sent
/// back verbatim in the `error` field.
pub fn parse_request(line: &str) -> Result<Request, String> {
    parse_line(line).request
}

fn request_of(v: &Value) -> Result<Request, String> {
    let op = str_field(v, "op")?;
    match op.as_str() {
        "ping" => Ok(Request::Ping),
        "store" => {
            let name = str_field(v, "name")?;
            let rows = uint_field(v, "rows")? as usize;
            let cols = uint_field(v, "cols")? as usize;
            let raw = v
                .get("entries")
                .and_then(Value::as_array)
                .ok_or("missing or non-array field `entries`")?;
            let mut entries = Vec::with_capacity(raw.len());
            for e in raw {
                let triple = e
                    .as_array()
                    .filter(|t| t.len() == 3)
                    .ok_or("each entry must be a [row, col, value] triple")?;
                let r = triple[0].as_u64().ok_or("entry row must be an integer")? as usize;
                let c = triple[1].as_u64().ok_or("entry col must be an integer")? as usize;
                let val = triple[2].as_f64().ok_or("entry value must be a number")?;
                entries.push((r, c, val));
            }
            Ok(Request::Store {
                name,
                rows,
                cols,
                entries,
            })
        }
        "gen" => {
            let kind = match str_field(v, "kind")?.as_str() {
                "rmat" => GenKind::Rmat,
                "er" => GenKind::Er,
                other => return Err(format!("unknown generator kind `{other}` (rmat|er)")),
            };
            Ok(Request::Gen {
                name: str_field(v, "name")?,
                kind,
                scale: uint_field(v, "scale")? as u32,
                edge_factor: uint_field_or(v, "edge_factor", 8)? as u32,
                seed: uint_field_or(v, "seed", 1)?,
            })
        }
        "load" => Ok(Request::Load {
            name: str_field(v, "name")?,
            path: str_field(v, "path")?,
        }),
        "multiply" => {
            let algorithm = match v.get("algorithm").and_then(Value::as_str) {
                None => None,
                Some(name) => Some(
                    Algorithm::parse(name)
                        .ok_or_else(|| format!("unrecognised algorithm `{name}`"))?,
                ),
            };
            let want_entries = match v.get("return").and_then(Value::as_str) {
                None | Some("summary") => false,
                Some("entries") => true,
                Some(other) => return Err(format!("unknown return mode `{other}`")),
            };
            let ooc_budget_mb = match v.get("ooc_budget_mb") {
                None => None,
                Some(f) => {
                    let mb = f.as_u64().ok_or("non-integer field `ooc_budget_mb`")?;
                    if mb == 0 {
                        return Err("`ooc_budget_mb` must be positive".into());
                    }
                    Some(mb)
                }
            };
            Ok(Request::Multiply {
                a: str_field(v, "a")?,
                b: str_field(v, "b")?,
                algorithm,
                store_as: v
                    .get("store_as")
                    .and_then(Value::as_str)
                    .map(str::to_string),
                want_entries,
                ooc_budget_mb,
            })
        }
        "mcl" => Ok(Request::Mcl {
            name: str_field(v, "name")?,
            inflation: float_field_or(v, "inflation", 2.0)?,
            max_iterations: uint_field_or(v, "max_iterations", 60)? as usize,
        }),
        "bc" => Ok(Request::Bc {
            name: str_field(v, "name")?,
            sources: uint_field_or(v, "sources", 0)? as usize,
            batch_size: uint_field_or(v, "batch_size", 32)?.max(1) as usize,
        }),
        "apsp" => Ok(Request::Apsp {
            name: str_field(v, "name")?,
        }),
        "evict" => Ok(Request::Evict {
            name: str_field(v, "name")?,
        }),
        "list" => Ok(Request::List),
        "metrics" => Ok(Request::Metrics),
        "trace" => {
            let enable = match v.get("enable") {
                None => None,
                Some(b) => Some(b.as_bool().ok_or("non-boolean field `enable`")?),
            };
            Ok(Request::Trace { enable })
        }
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op `{other}`")),
    }
}

/// Builds a JSON object [`Value`] from key/value pairs (field order kept).
pub fn object(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Serialises a success response: `{"ok": true, …fields}` as one line,
/// echoing the request's correlation `id` when it carried one.
pub fn ok_line(mut fields: Vec<(&str, Value)>, id: Option<&Value>) -> String {
    fields.insert(0, ("ok", Value::Bool(true)));
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    serde_json::to_string(&object(fields)).expect("response serialisation cannot fail")
}

/// Serialises an error response: `{"ok": false, "error": msg}` as one
/// line, echoing the request's correlation `id` when it carried one.
pub fn error_line(msg: &str, id: Option<&Value>) -> String {
    let mut fields = vec![
        ("ok", Value::Bool(false)),
        ("error", Value::Str(msg.to_string())),
    ];
    if let Some(id) = id {
        fields.push(("id", id.clone()));
    }
    serde_json::to_string(&object(fields)).expect("response serialisation cannot fail")
}

/// Order-sensitive FNV-1a fingerprint of a CSR matrix (dims, row pointers,
/// column indices, value bits).  Bit-identical products — the batching
/// guarantee — have equal fingerprints.
pub fn fingerprint(m: &Csr<f64>) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(m.nrows() as u64);
    mix(m.ncols() as u64);
    for &p in m.rowptr() {
        mix(p as u64);
    }
    for &c in m.colidx() {
        mix(u64::from(c));
    }
    for &v in m.values() {
        mix(v.to_bits());
    }
    h
}

/// Serialises a small matrix as `[[r, c, v], …]` for `return: "entries"`.
pub fn entries_value(m: &Csr<f64>) -> Value {
    Value::Array(
        m.iter()
            .map(|(r, c, v)| {
                Value::Array(vec![
                    Value::UInt(u64::from(r)),
                    Value::UInt(u64::from(c)),
                    Value::Float(v),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(parse_request(r#"{"op":"ping"}"#), Ok(Request::Ping));
        assert_eq!(parse_request(r#"{"op":"list"}"#), Ok(Request::List));
        assert_eq!(parse_request(r#"{"op":"metrics"}"#), Ok(Request::Metrics));
        assert_eq!(
            parse_request(r#"{"op":"trace"}"#),
            Ok(Request::Trace { enable: None })
        );
        assert_eq!(
            parse_request(r#"{"op":"trace","enable":true}"#),
            Ok(Request::Trace { enable: Some(true) })
        );
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown));
        assert_eq!(
            parse_request(r#"{"op":"store","name":"a","rows":2,"cols":2,"entries":[[0,1,2.5]]}"#),
            Ok(Request::Store {
                name: "a".into(),
                rows: 2,
                cols: 2,
                entries: vec![(0, 1, 2.5)],
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"gen","name":"g","kind":"rmat","scale":6}"#),
            Ok(Request::Gen {
                name: "g".into(),
                kind: GenKind::Rmat,
                scale: 6,
                edge_factor: 8,
                seed: 1,
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"multiply","a":"x","b":"y","algorithm":"pb"}"#),
            Ok(Request::Multiply {
                a: "x".into(),
                b: "y".into(),
                algorithm: Some(Algorithm::Pb),
                store_as: None,
                want_entries: false,
                ooc_budget_mb: None,
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"load","name":"a","path":"a.pbsm"}"#),
            Ok(Request::Load {
                name: "a".into(),
                path: "a.pbsm".into(),
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"multiply","a":"x","b":"y","ooc_budget_mb":64}"#),
            Ok(Request::Multiply {
                a: "x".into(),
                b: "y".into(),
                algorithm: None,
                store_as: None,
                want_entries: false,
                ooc_budget_mb: Some(64),
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"mcl","name":"g","inflation":1.5}"#),
            Ok(Request::Mcl {
                name: "g".into(),
                inflation: 1.5,
                max_iterations: 60,
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"bc","name":"g","sources":4,"batch_size":2}"#),
            Ok(Request::Bc {
                name: "g".into(),
                sources: 4,
                batch_size: 2,
            })
        );
        assert_eq!(
            parse_request(r#"{"op":"apsp","name":"g"}"#),
            Ok(Request::Apsp { name: "g".into() })
        );
        assert_eq!(
            parse_request(r#"{"op":"evict","name":"g"}"#),
            Ok(Request::Evict { name: "g".into() })
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request(r#"{"op":"fly"}"#)
            .unwrap_err()
            .contains("unknown op"));
        assert!(parse_request(r#"{"op":"multiply","a":"x"}"#)
            .unwrap_err()
            .contains("`b`"));
        assert!(
            parse_request(r#"{"op":"multiply","a":"x","b":"y","algorithm":"quantum"}"#)
                .unwrap_err()
                .contains("unrecognised algorithm")
        );
        assert!(
            parse_request(r#"{"op":"store","name":"a","rows":2,"cols":2,"entries":[[0,1]]}"#)
                .is_err()
        );
        assert!(parse_request(r#"{"op":"trace","enable":"yes"}"#)
            .unwrap_err()
            .contains("`enable`"));
        assert!(parse_request(r#"{"op":"load","name":"a"}"#)
            .unwrap_err()
            .contains("`path`"));
        assert!(
            parse_request(r#"{"op":"multiply","a":"x","b":"y","ooc_budget_mb":0}"#)
                .unwrap_err()
                .contains("ooc_budget_mb")
        );
        assert!(
            parse_request(r#"{"op":"multiply","a":"x","b":"y","ooc_budget_mb":"big"}"#)
                .unwrap_err()
                .contains("ooc_budget_mb")
        );
    }

    #[test]
    fn every_op_has_a_wire_name() {
        for (line, name) in [
            (r#"{"op":"ping"}"#, "ping"),
            (r#"{"op":"list"}"#, "list"),
            (r#"{"op":"metrics"}"#, "metrics"),
            (r#"{"op":"trace"}"#, "trace"),
            (r#"{"op":"shutdown"}"#, "shutdown"),
            (r#"{"op":"apsp","name":"g"}"#, "apsp"),
            (r#"{"op":"evict","name":"g"}"#, "evict"),
            (r#"{"op":"multiply","a":"x","b":"y"}"#, "multiply"),
            (r#"{"op":"load","name":"a","path":"a.pbsm"}"#, "load"),
        ] {
            assert_eq!(parse_request(line).unwrap().op_name(), name);
        }
    }

    #[test]
    fn batch_keys_identify_identical_products() {
        let a = parse_request(r#"{"op":"multiply","a":"x","b":"y"}"#).unwrap();
        let b = parse_request(r#"{"op":"multiply","a":"x","b":"y","return":"entries"}"#).unwrap();
        let c = parse_request(r#"{"op":"multiply","a":"x","b":"z"}"#).unwrap();
        assert_eq!(a.batch_key(), b.batch_key());
        assert_ne!(a.batch_key(), c.batch_key());
        assert_eq!(parse_request(r#"{"op":"ping"}"#).unwrap().batch_key(), None);
        // OOC multiplies never batch: a tiled product is not bit-identical
        // to a resident one.
        let ooc = parse_request(r#"{"op":"multiply","a":"x","b":"y","ooc_budget_mb":8}"#).unwrap();
        assert_eq!(ooc.batch_key(), None);
    }

    #[test]
    fn response_lines_round_trip() {
        let line = ok_line(vec![("nnz", Value::UInt(7))], None);
        let v = serde_json::from_str(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("nnz").and_then(Value::as_u64), Some(7));
        assert!(v.get("id").is_none());
        let e = error_line("boom", None);
        let v = serde_json::from_str(&e).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("error").and_then(Value::as_str), Some("boom"));
    }

    #[test]
    fn correlation_ids_survive_parsing_and_serialisation() {
        // Present on a good request.
        let parsed = parse_line(r#"{"op":"ping","id":42}"#);
        assert_eq!(parsed.id, Some(Value::UInt(42)));
        assert_eq!(parsed.request, Ok(Request::Ping));
        // Present on a bad request that is still valid JSON, so the error
        // response can correlate.
        let parsed = parse_line(r#"{"op":"fly","id":"r1"}"#);
        assert_eq!(parsed.id, Some(Value::Str("r1".into())));
        assert!(parsed.request.is_err());
        // Absent when the line is not JSON at all.
        let parsed = parse_line("not json");
        assert_eq!(parsed.id, None);
        assert!(parsed.request.is_err());
        // Echoed on both response kinds.
        let id = Value::Str("r1".into());
        let v = serde_json::from_str(&ok_line(vec![], Some(&id))).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
        let v = serde_json::from_str(&error_line("boom", Some(&id))).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_str), Some("r1"));
    }

    #[test]
    fn fingerprint_distinguishes_matrices() {
        use pb_sparse::Coo;
        let a = Coo::from_entries(2, 2, vec![(0, 1, 2.0)]).unwrap().to_csr();
        let b = Coo::from_entries(2, 2, vec![(1, 0, 2.0)]).unwrap().to_csr();
        assert_eq!(fingerprint(&a), fingerprint(&a));
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }
}
