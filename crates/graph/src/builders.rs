//! Builder-style entry points for the graph kernels.
//!
//! Every kernel in this crate is configured the same way: pick a shared
//! [`SpGemm`] engine, set the kernel's knobs, call `run(&matrix)`.  The
//! builders make that shape explicit and let one engine (with its planner,
//! profile sink and workspace) be threaded through many analytics calls:
//!
//! ```
//! use pb_graph::{Mcl, Triangles, SpGemm};
//! use pb_sparse::{Coo, Csr};
//!
//! let g: Csr<f64> = Coo::from_entries(3, 3, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
//!     .unwrap()
//!     .to_csr();
//! let engine = SpGemm::auto();
//! let clusters = Mcl::new().engine(engine.clone()).inflation(2.0).run(&g);
//! let triangles = Triangles::new().engine(engine).run(&g);
//! assert_eq!(triangles, 1);
//! assert!(clusters.num_clusters >= 1);
//! ```
//!
//! The original free functions ([`markov_cluster`](crate::markov_cluster),
//! [`betweenness_centrality`](crate::betweenness_centrality), …) survive as
//! thin wrappers over these builders; see `docs/API.md` for the migration
//! table.

use pb_sparse::Csr;

use crate::apsp::apsp_minplus_impl;
use crate::bc::betweenness_centrality_impl;
use crate::bfs::{multi_source_bfs_impl, BfsResult};
use crate::mcl::{markov_cluster_impl, MclConfig, MclResult};
use crate::triangles::{
    clustering_coefficients_impl, count_triangles_impl, triangle_counts_per_vertex_impl,
};
use pb_spgemm::SpGemm;

/// Builder for Markov clustering; the builder-style face of
/// [`markov_cluster`](crate::markov_cluster).
///
/// Each setter mirrors one [`MclConfig`] field; unset knobs keep the classic
/// defaults (`inflation = 2`, `prune_threshold = 1e-5`, …).
#[derive(Debug, Clone)]
pub struct Mcl {
    config: MclConfig,
}

impl Default for Mcl {
    fn default() -> Self {
        Self::new()
    }
}

impl Mcl {
    /// Starts from [`MclConfig::default`].
    pub fn new() -> Self {
        Mcl {
            config: MclConfig::default(),
        }
    }

    /// Starts from an existing configuration (how the free-function wrapper
    /// funnels into the builder).
    pub fn from_config(config: MclConfig) -> Self {
        Mcl { config }
    }

    /// SpGEMM engine used for the expansion step.
    pub fn engine(mut self, engine: SpGemm) -> Self {
        self.config.engine = engine;
        self
    }

    /// Inflation exponent `r` (> 1 sharpens; the classic default is 2).
    pub fn inflation(mut self, r: f64) -> Self {
        self.config.inflation = r;
        self
    }

    /// Entries below this value are dropped after every iteration.
    pub fn prune_threshold(mut self, threshold: f64) -> Self {
        self.config.prune_threshold = threshold;
        self
    }

    /// Convergence threshold on the largest entry-wise change.
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.config.tolerance = tolerance;
        self
    }

    /// Hard cap on the number of expansion/inflation rounds.
    pub fn max_iterations(mut self, cap: usize) -> Self {
        self.config.max_iterations = cap;
        self
    }

    /// Weight added to the diagonal before normalisation.
    pub fn self_loop_weight(mut self, weight: f64) -> Self {
        self.config.self_loop_weight = weight;
        self
    }

    /// Runs the clustering on `adjacency` (square; symmetrised internally).
    ///
    /// Runs under a `graph.mcl` trace span; the engine and phase spans it
    /// encloses inherit the caller's correlation id (see
    /// [`pb_spgemm::trace`]).
    pub fn run(&self, adjacency: &Csr<f64>) -> MclResult {
        let _span = pb_spgemm::trace::span(pb_spgemm::trace::SpanName::GraphMcl);
        markov_cluster_impl(adjacency, &self.config)
    }
}

/// Builder for batched Brandes betweenness centrality; the builder-style face
/// of [`betweenness_centrality`](crate::betweenness_centrality).
///
/// Without an explicit [`sources`](Bc::sources) call, `run` computes *exact*
/// betweenness from every vertex.
#[derive(Debug, Clone)]
pub struct Bc {
    sources: Option<Vec<usize>>,
    batch_size: usize,
    engine: SpGemm,
}

impl Default for Bc {
    fn default() -> Self {
        Self::new()
    }
}

impl Bc {
    /// Default: exact scores (all sources), batches of 32, the PB engine.
    pub fn new() -> Self {
        Bc {
            sources: None,
            batch_size: 32,
            engine: SpGemm::pb(),
        }
    }

    /// SpGEMM engine that advances the frontier matrices.
    pub fn engine(mut self, engine: SpGemm) -> Self {
        self.engine = engine;
        self
    }

    /// Restricts the search to this batch of source vertices (source-sampled
    /// approximation when it does not cover every vertex).
    pub fn sources(mut self, sources: impl IntoIterator<Item = usize>) -> Self {
        self.sources = Some(sources.into_iter().collect());
        self
    }

    /// How many sources are processed per SpGEMM batch.
    pub fn batch_size(mut self, batch: usize) -> Self {
        self.batch_size = batch;
        self
    }

    /// Runs the forward/backward sweeps and returns one score per vertex.
    pub fn run<T: pb_sparse::Scalar>(&self, adjacency: &Csr<T>) -> Vec<f64> {
        let _span = pb_spgemm::trace::span(pb_spgemm::trace::SpanName::GraphBc);
        match &self.sources {
            Some(sources) => {
                betweenness_centrality_impl(adjacency, sources, self.batch_size, &self.engine)
            }
            None => {
                let all: Vec<usize> = (0..adjacency.nrows()).collect();
                betweenness_centrality_impl(adjacency, &all, self.batch_size, &self.engine)
            }
        }
    }
}

/// Builder for min-plus all-pairs shortest paths; the builder-style face of
/// [`apsp_minplus`](crate::apsp_minplus).
#[derive(Debug, Clone, Default)]
pub struct Apsp {
    engine: SpGemm,
}

impl Apsp {
    /// Default: the PB engine.
    pub fn new() -> Self {
        Apsp {
            engine: SpGemm::pb(),
        }
    }

    /// SpGEMM engine used for the repeated min-plus squarings.
    pub fn engine(mut self, engine: SpGemm) -> Self {
        self.engine = engine;
        self
    }

    /// Returns the all-pairs distance matrix of `weights` (unreachable pairs
    /// are not stored).
    pub fn run(&self, weights: &Csr<f64>) -> Csr<f64> {
        let _span = pb_spgemm::trace::span(pb_spgemm::trace::SpanName::GraphApsp);
        apsp_minplus_impl(weights, &self.engine)
    }
}

/// Builder for multi-source BFS; the builder-style face of
/// [`multi_source_bfs`](crate::multi_source_bfs).
#[derive(Debug, Clone, Default)]
pub struct Bfs {
    sources: Vec<usize>,
    engine: SpGemm,
}

impl Bfs {
    /// Default: no sources yet, the PB engine.
    pub fn new() -> Self {
        Bfs {
            sources: Vec::new(),
            engine: SpGemm::pb(),
        }
    }

    /// SpGEMM engine that advances the `n × s` frontier matrix.
    pub fn engine(mut self, engine: SpGemm) -> Self {
        self.engine = engine;
        self
    }

    /// Adds one source vertex (one more column in the frontier matrix).
    pub fn source(mut self, vertex: usize) -> Self {
        self.sources.push(vertex);
        self
    }

    /// Adds a batch of source vertices.
    pub fn sources(mut self, sources: impl IntoIterator<Item = usize>) -> Self {
        self.sources.extend(sources);
        self
    }

    /// Runs all searches at once; `levels[k]` belongs to the `k`-th source in
    /// insertion order.
    pub fn run<T: pb_sparse::Scalar>(&self, adjacency: &Csr<T>) -> BfsResult {
        let _span = pb_spgemm::trace::span(pb_spgemm::trace::SpanName::GraphBfs);
        multi_source_bfs_impl(adjacency, &self.sources, &self.engine)
    }
}

/// Builder for triangle analytics; the builder-style face of
/// [`count_triangles`](crate::count_triangles) and friends.
#[derive(Debug, Clone, Default)]
pub struct Triangles {
    engine: SpGemm,
}

impl Triangles {
    /// Default: the PB engine.
    pub fn new() -> Self {
        Triangles {
            engine: SpGemm::pb(),
        }
    }

    /// SpGEMM engine used for the masked `A·A` product.
    pub fn engine(mut self, engine: SpGemm) -> Self {
        self.engine = engine;
        self
    }

    /// Global triangle count of the simple undirected version of `adjacency`.
    pub fn run<T: pb_sparse::Scalar>(&self, adjacency: &Csr<T>) -> u64 {
        let _span = pb_spgemm::trace::span(pb_spgemm::trace::SpanName::GraphTriangles);
        count_triangles_impl(adjacency, &self.engine)
    }

    /// Number of triangles incident to every vertex.
    pub fn per_vertex<T: pb_sparse::Scalar>(&self, adjacency: &Csr<T>) -> Vec<u64> {
        triangle_counts_per_vertex_impl(adjacency, &self.engine)
    }

    /// Local clustering coefficients plus the global triangle count.
    pub fn clustering_coefficients<T: pb_sparse::Scalar>(
        &self,
        adjacency: &Csr<T>,
    ) -> (Vec<f64>, u64) {
        clustering_coefficients_impl(adjacency, &self.engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_sparse::Coo;

    /// A 5-vertex graph: a triangle {0,1,2} plus a path 2–3–4.
    fn toy() -> Csr<f64> {
        let mut entries = Vec::new();
        for &(u, v) in &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)] {
            entries.push((u, v, 1.0));
            entries.push((v, u, 1.0));
        }
        Coo::from_entries(5, 5, entries).unwrap().to_csr()
    }

    #[test]
    fn builders_match_the_free_functions() {
        let g = toy();
        let engine = SpGemm::pb();

        let via_builder = Mcl::new().engine(engine.clone()).inflation(2.0).run(&g);
        let via_free = crate::markov_cluster(&g, &crate::MclConfig::default());
        assert_eq!(via_builder, via_free);

        let sources: Vec<usize> = (0..5).collect();
        let bc_builder = Bc::new().engine(engine.clone()).batch_size(2).run(&g);
        let bc_free = crate::betweenness_centrality(&g, &sources, 2, &engine);
        assert_eq!(bc_builder, bc_free);

        let apsp_builder = Apsp::new().engine(engine.clone()).run(&g);
        let apsp_free = crate::apsp_minplus(&g, &engine);
        assert_eq!(apsp_builder, apsp_free);

        let bfs_builder = Bfs::new().engine(engine.clone()).sources([0, 4]).run(&g);
        let bfs_free = crate::multi_source_bfs(&g, &[0, 4], &engine);
        assert_eq!(bfs_builder, bfs_free);

        let tri = Triangles::new().engine(engine.clone());
        assert_eq!(tri.run(&g), crate::count_triangles(&g, &engine));
        assert_eq!(
            tri.per_vertex(&g),
            crate::triangle_counts_per_vertex(&g, &engine)
        );
        assert_eq!(
            tri.clustering_coefficients(&g),
            crate::clustering_coefficients(&g, &engine)
        );
    }

    #[test]
    fn one_engine_threads_through_many_kernels() {
        // The point of the redesign: one cheap-clone engine with a shared
        // workspace feeds several analytics calls, and the workspace sees
        // every one of the underlying multiplies.
        let g = toy();
        let engine = SpGemm::with_workspace();
        let ws = engine.workspace_handle().cloned().unwrap();

        let t = Triangles::new().engine(engine.clone()).run(&g);
        assert_eq!(t, 1);
        let d = Apsp::new().engine(engine.clone()).run(&g);
        assert_eq!(d.get(0, 4), Some(3.0));
        let b = Bfs::new().engine(engine).source(0).run(&g);
        assert_eq!(b.levels[0][4], Some(3));

        assert!(ws.leases() >= 3, "each kernel leased the shared workspace");
    }

    #[test]
    fn bc_defaults_to_exact_scores() {
        let g = toy();
        let engine = SpGemm::pb();
        let sources: Vec<usize> = (0..5).collect();
        let exact = crate::betweenness_centrality(&g, &sources, 4, &engine);
        let via_default = Bc::new().engine(engine).batch_size(4).run(&g);
        assert_eq!(via_default, exact);
        // Vertex 2 bridges the triangle and the path: strictly the most
        // central.
        let max = via_default
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(via_default[2], max);
    }
}
