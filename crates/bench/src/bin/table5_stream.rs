//! Table V: STREAM benchmark (Copy / Scale / Add / Triad).
//!
//! The paper reports single-socket and dual-socket rates; this machine has a
//! single memory domain, so the table reports the full machine and a
//! half-thread run (the closest analogue of "one socket of two").

use pb_bench::{fmt, print_table, quick_mode, write_json, Table};
use pb_model::stream::{run, StreamConfig};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let base = if quick_mode() {
        StreamConfig::quick()
    } else {
        StreamConfig::default()
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let full = run(&StreamConfig {
        threads: None,
        ..base
    });
    let half = run(&StreamConfig {
        threads: Some((threads / 2).max(1)),
        ..base
    });

    let mut table = Table::new(
        "Table V — STREAM sustainable bandwidth (GB/s)",
        &["threads", "Copy", "Scale", "Add", "Triad"],
    );
    table.push_row(vec![
        format!("{} (half machine)", (threads / 2).max(1)),
        fmt(half.copy, 2),
        fmt(half.scale, 2),
        fmt(half.add, 2),
        fmt(half.triad, 2),
    ]);
    table.push_row(vec![
        format!("{threads} (full machine)"),
        fmt(full.copy, 2),
        fmt(full.scale, 2),
        fmt(full.add, 2),
        fmt(full.triad, 2),
    ]);
    print_table(&table);
    write_json("table5_stream", &[("half", half), ("full", full)]);
    println!(
        "beta (Roofline bandwidth) = {:.2} GB/s; the paper measured 57.04 / 108.42 GB/s Triad \
         on one/two Skylake sockets.",
        full.beta_gbps()
    );
}
