//! Minimal stand-in for the [proptest] property-testing crate.
//!
//! The build environment has no network access to crates.io, so the real
//! proptest cannot be fetched. This shim supports the subset the
//! workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `pattern in strategy` argument bindings;
//! * [`Strategy`](strategy::Strategy) implemented for numeric ranges and
//!   tuples, with `prop_map`/`prop_flat_map` combinators;
//! * [`collection::vec`] for variable-length vectors;
//! * `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Generation is deterministic (fixed-seed splitmix64) and there is **no
//! shrinking**: a failing case reports the assertion directly, which is
//! adequate for a CI gate. Swapping the real crate back in via
//! `[workspace.dependencies]` is a drop-in change.
//!
//! [proptest]: https://docs.rs/proptest

/// Deterministic random-number generation for test-case synthesis.
pub mod test_runner {
    /// Per-run configuration (case count).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Fixed-seed splitmix64 generator; deterministic across runs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The generator used by [`proptest!`](crate::proptest) expansions.
        pub fn deterministic() -> Self {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Seeds explicitly (useful for shim-internal tests).
        pub fn from_seed(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform float in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`; mirrors proptest's
    /// trait of the same name (without shrinking).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128) - (self.start as i128);
                    assert!(span > 0, "empty integer range strategy");
                    (self.start as i128 + rng.below(span as u64) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                    assert!(span > 0, "empty integer range strategy");
                    // A full-width 64-bit range has span = 2^64, which would
                    // truncate to 0 in the modulo draw below; every u64 draw
                    // is already in range there.
                    let offset = if span > u64::MAX as i128 {
                        rng.next_u64()
                    } else {
                        rng.below(span as u64)
                    };
                    (*self.start() as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty float range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive size range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// See [`vec`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates `Vec`s whose length lies in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-imported surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (plain `assert!` in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (plain `assert_eq!` in the shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (plain `assert_ne!` in the shim).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, v in collection::vec(0..100u32, 0..8)) {
///         prop_assert!(x < 10 && v.len() < 8);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); ) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut __rng);
                )*
                $body
            }
        }
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -5i32..=5, z in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((-1.0..1.0).contains(&z));
        }

        #[test]
        fn vec_and_flat_map_compose(
            v in collection::vec((0usize..4, 0.0f64..1.0), 0..=6),
            w in (1usize..5).prop_flat_map(|n| collection::vec(0usize..n, n..n + 1)),
        ) {
            prop_assert!(v.len() <= 6);
            prop_assert!(!w.is_empty() && w.len() < 5);
        }
    }

    #[test]
    fn full_width_inclusive_ranges_generate() {
        use crate::strategy::Strategy;
        let mut rng = crate::test_runner::TestRng::deterministic();
        // span = 2^64 must not truncate to a zero modulo bound.
        let _: u64 = (0u64..=u64::MAX).generate(&mut rng);
        let _: i64 = (i64::MIN..=i64::MAX).generate(&mut rng);
        let edge: u8 = (u8::MAX..=u8::MAX).generate(&mut rng);
        assert_eq!(edge, u8::MAX);
    }

    #[test]
    #[should_panic(expected = "empty collection size range")]
    #[allow(clippy::reversed_empty_ranges)]
    fn inverted_inclusive_size_range_panics_clearly() {
        let _ = crate::collection::SizeRange::from(3usize..=2);
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = collection::vec(0u64..1000, 5..=5);
        let mut a = crate::test_runner::TestRng::deterministic();
        let mut b = crate::test_runner::TestRng::deterministic();
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
