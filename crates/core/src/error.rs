//! Typed errors for the fallible configuration surface.
//!
//! Historically every environment knob in this crate failed *loudly*: a
//! misspelt `PB_ALGORITHM` or `PB_SIMD` in a CI mode must abort the test
//! suite, not silently fall back to a default — so [`SpGemm::from_env`]
//! and [`simd::active`] panic on unrecognised names.  That contract is
//! right for batch tools and wrong for a resident service: a long-lived
//! `pb-spgemm-serve` process must *reject* a bad environment or request
//! and keep serving, not die.
//!
//! [`PbError`] is the typed error those callers need.  The panicking
//! entry points still exist (and still panic, with the same messages, by
//! unwrapping these errors), so batch behaviour is unchanged; services
//! and the CLI call the `try_*` variants and map the error to a response
//! or an exit code:
//!
//! * [`Algorithm::from_env`](crate::Algorithm::from_env) /
//!   [`SpGemm::try_from_env`](crate::SpGemm::try_from_env) — `PB_ALGORITHM`;
//! * [`simd::try_env_isa`](crate::simd::try_env_isa) — `PB_SIMD`;
//! * [`topology::try_forced_domains`](crate::topology::try_forced_domains)
//!   — `PB_NUMA_DOMAINS` (the vendored pool's own reader silently ignores
//!   malformed values, so this is the *only* loud check for that knob);
//! * [`TiledConfig::from_env`](crate::tiled::TiledConfig::from_env) —
//!   `PB_OOC_BUDGET_MB`, the out-of-core tile-store byte budget;
//! * [`validate_env`] — all of the above in one call, for process startup.
//!
//! [`SpGemm::from_env`]: crate::SpGemm::from_env
//! [`simd::active`]: crate::simd::active

use std::fmt;

/// A typed configuration / environment error.
#[derive(Debug)]
pub enum PbError {
    /// An environment variable holds a value the parser rejects.
    InvalidEnv {
        /// The variable name (`PB_ALGORITHM`, `PB_SIMD`, …).
        var: &'static str,
        /// The offending value, verbatim.
        value: String,
        /// What the parser accepts, for the error message.
        expected: &'static str,
    },
    /// A configuration value (from a file, a flag, or a service request)
    /// is out of range or malformed.
    InvalidConfig(String),
    /// An underlying I/O failure (binding a listener, reading a file).
    Io(std::io::Error),
    /// A matrix could not be loaded, decoded or validated (wraps the
    /// sparse substrate's typed error — malformed Matrix Market text, a
    /// truncated binary file, a shape mismatch, …).
    Matrix(pb_sparse::SparseError),
}

impl fmt::Display for PbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Keep the historical panic wording ("unrecognised VAR=value")
            // so the loud batch-mode failures read exactly as before.
            PbError::InvalidEnv {
                var,
                value,
                expected,
            } => {
                write!(f, "unrecognised {var}={value} (expected {expected})")
            }
            PbError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PbError::Io(e) => write!(f, "i/o error: {e}"),
            PbError::Matrix(e) => write!(f, "matrix error: {e}"),
        }
    }
}

impl std::error::Error for PbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PbError::Io(e) => Some(e),
            PbError::Matrix(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for PbError {
    fn from(e: std::io::Error) -> Self {
        PbError::Io(e)
    }
}

impl From<pb_sparse::SparseError> for PbError {
    fn from(e: pb_sparse::SparseError) -> Self {
        PbError::Matrix(e)
    }
}

/// Validates every `PB_*` environment knob this crate reads, without
/// caching or acting on any of them: `PB_ALGORITHM`, `PB_SIMD` and
/// `PB_NUMA_DOMAINS`.  Unset variables are fine; set-but-unparseable ones
/// return the first error.  A resident service calls this once at startup
/// so a broken environment is a clean refusal instead of a later panic
/// (or, for `PB_NUMA_DOMAINS`, a silent fallback).
pub fn validate_env() -> Result<(), PbError> {
    crate::engine::Algorithm::from_env()?;
    crate::simd::try_env_isa()?;
    crate::topology::try_forced_domains()?;
    crate::tiled::TiledConfig::from_env()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_the_historical_panic_wording() {
        let e = PbError::InvalidEnv {
            var: "PB_ALGORITHM",
            value: "quantum".into(),
            expected: "auto|pb|heap|…",
        };
        let msg = e.to_string();
        assert!(msg.contains("unrecognised PB_ALGORITHM=quantum"));
        assert!(msg.contains("expected"));
    }

    #[test]
    fn io_errors_wrap_with_a_source() {
        let e = PbError::from(std::io::Error::new(
            std::io::ErrorKind::AddrInUse,
            "port taken",
        ));
        assert!(e.to_string().contains("port taken"));
        assert!(std::error::Error::source(&e).is_some());
        let c = PbError::InvalidConfig("budget must be positive".into());
        assert!(c.to_string().contains("budget"));
        assert!(std::error::Error::source(&c).is_none());
    }
}
