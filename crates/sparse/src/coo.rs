//! Coordinate (triplet) format.
//!
//! The expanded intermediate matrix `Ĉ` of an expand–sort–compress SpGEMM is
//! naturally a stream of `(row, col, value)` tuples, which is exactly what
//! this type stores (structure-of-arrays, so the index and value streams can
//! be moved independently).  It is also the interchange format used by the
//! Matrix Market reader and the generators.

use crate::csc::Csc;
use crate::csr::Csr;
use crate::dense::Dense;
use crate::error::SparseError;
use crate::semiring::{Numeric, PlusTimes, Semiring};
use crate::{Index, Scalar, MAX_DIM};

/// A sparse matrix in coordinate (COO / triplet) format.
///
/// Entries are stored in three parallel arrays and may be unsorted and may
/// contain duplicates; [`Coo::sort_row_major`] and the conversion routines
/// bring them into canonical form.
#[derive(Debug, Clone, PartialEq)]
pub struct Coo<T> {
    nrows: usize,
    ncols: usize,
    rows: Vec<Index>,
    cols: Vec<Index>,
    vals: Vec<T>,
}

impl<T: Scalar> Coo<T> {
    /// Creates an empty matrix with the given shape.
    ///
    /// # Errors
    /// Returns [`SparseError::DimensionTooLarge`] if either dimension exceeds
    /// the `u32` index space.
    pub fn new(nrows: usize, ncols: usize) -> Result<Self, SparseError> {
        Self::with_capacity(nrows, ncols, 0)
    }

    /// Creates an empty matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Result<Self, SparseError> {
        check_dims(nrows, ncols)?;
        Ok(Coo {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        })
    }

    /// Builds a matrix from `(row, col, value)` entries, validating bounds.
    pub fn from_entries(
        nrows: usize,
        ncols: usize,
        entries: Vec<(usize, usize, T)>,
    ) -> Result<Self, SparseError> {
        let mut m = Self::with_capacity(nrows, ncols, entries.len())?;
        for (r, c, v) in entries {
            m.push(r, c, v)?;
        }
        Ok(m)
    }

    /// Builds a matrix from parallel index/value arrays, validating bounds.
    pub fn from_parts(
        nrows: usize,
        ncols: usize,
        rows: Vec<Index>,
        cols: Vec<Index>,
        vals: Vec<T>,
    ) -> Result<Self, SparseError> {
        check_dims(nrows, ncols)?;
        if rows.len() != cols.len() || rows.len() != vals.len() {
            return Err(SparseError::LengthMismatch {
                rows: rows.len(),
                cols: cols.len(),
                vals: vals.len(),
            });
        }
        for (&r, &c) in rows.iter().zip(&cols) {
            if r as usize >= nrows || c as usize >= ncols {
                return Err(SparseError::IndexOutOfBounds {
                    row: r as usize,
                    col: c as usize,
                    nrows,
                    ncols,
                });
            }
        }
        Ok(Coo {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        })
    }

    /// Builds a matrix from parallel arrays without validating entry bounds.
    ///
    /// The caller must guarantee that every index is within `nrows`/`ncols`;
    /// the shape itself is still checked against [`MAX_DIM`].  Generators use
    /// this to avoid an O(nnz) validation pass on data they constructed
    /// in-bounds by design.
    pub fn from_parts_unchecked(
        nrows: usize,
        ncols: usize,
        rows: Vec<Index>,
        cols: Vec<Index>,
        vals: Vec<T>,
    ) -> Self {
        debug_assert!(nrows <= MAX_DIM && ncols <= MAX_DIM);
        debug_assert_eq!(rows.len(), cols.len());
        debug_assert_eq!(rows.len(), vals.len());
        debug_assert!(rows.iter().all(|&r| (r as usize) < nrows));
        debug_assert!(cols.iter().all(|&c| (c as usize) < ncols));
        Coo {
            nrows,
            ncols,
            rows,
            cols,
            vals,
        }
    }

    /// Appends one entry.
    pub fn push(&mut self, row: usize, col: usize, val: T) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        self.rows.push(row as Index);
        self.cols.push(col as Index);
        self.vals.push(val);
        Ok(())
    }

    /// Number of stored entries (including any duplicates).
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Row indices of the stored entries.
    #[inline]
    pub fn row_indices(&self) -> &[Index] {
        &self.rows
    }

    /// Column indices of the stored entries.
    #[inline]
    pub fn col_indices(&self) -> &[Index] {
        &self.cols
    }

    /// Values of the stored entries.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.vals
    }

    /// Iterates over `(row, col, value)` entries in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, T)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Consumes the matrix and returns `(nrows, ncols, rows, cols, vals)`.
    pub fn into_parts(self) -> (usize, usize, Vec<Index>, Vec<Index>, Vec<T>) {
        (self.nrows, self.ncols, self.rows, self.cols, self.vals)
    }

    /// Sorts entries by `(row, col)`.
    pub fn sort_row_major(&mut self) {
        let mut order: Vec<usize> = (0..self.nnz()).collect();
        order.sort_unstable_by_key(|&i| (self.rows[i], self.cols[i]));
        self.apply_order(&order);
    }

    /// Sorts entries by `(col, row)`.
    pub fn sort_col_major(&mut self) {
        let mut order: Vec<usize> = (0..self.nnz()).collect();
        order.sort_unstable_by_key(|&i| (self.cols[i], self.rows[i]));
        self.apply_order(&order);
    }

    fn apply_order(&mut self, order: &[usize]) {
        self.rows = order.iter().map(|&i| self.rows[i]).collect();
        self.cols = order.iter().map(|&i| self.cols[i]).collect();
        self.vals = order.iter().map(|&i| self.vals[i]).collect();
    }

    /// Returns `true` if the entries are sorted by `(row, col)` with no
    /// duplicate coordinates.
    pub fn is_canonical(&self) -> bool {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(self.rows.iter().zip(&self.cols).skip(1))
            .all(|((r0, c0), (r1, c1))| (r0, c0) < (r1, c1))
    }

    /// Merges duplicate coordinates using the semiring's `add`.
    ///
    /// The result is sorted row-major and free of duplicates.
    pub fn sum_duplicates_with<S>(&mut self)
    where
        S: Semiring<Elem = T>,
    {
        if self.nnz() == 0 {
            return;
        }
        self.sort_row_major();
        let mut write = 0usize;
        for read in 1..self.nnz() {
            if self.rows[read] == self.rows[write] && self.cols[read] == self.cols[write] {
                self.vals[write] = S::add(self.vals[write], self.vals[read]);
            } else {
                write += 1;
                self.rows[write] = self.rows[read];
                self.cols[write] = self.cols[read];
                self.vals[write] = self.vals[read];
            }
        }
        self.rows.truncate(write + 1);
        self.cols.truncate(write + 1);
        self.vals.truncate(write + 1);
    }

    /// Transposes the matrix (swaps rows and columns) in place.
    pub fn transpose_inplace(&mut self) {
        std::mem::swap(&mut self.rows, &mut self.cols);
        std::mem::swap(&mut self.nrows, &mut self.ncols);
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> Self {
        let mut t = self.clone();
        t.transpose_inplace();
        t
    }

    /// Converts to CSR, merging duplicates with the given semiring.
    pub fn to_csr_with<S>(&self) -> Csr<T>
    where
        S: Semiring<Elem = T>,
    {
        // Counting sort by row: stable, O(nnz + nrows).
        let nnz = self.nnz();
        let mut counts = vec![0usize; self.nrows + 1];
        for &r in &self.rows {
            counts[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let rowptr = counts.clone();
        let mut colidx = vec![0 as Index; nnz];
        let mut values = vec![S::zero(); nnz];
        let mut cursor = counts;
        for i in 0..nnz {
            let r = self.rows[i] as usize;
            let dst = cursor[r];
            colidx[dst] = self.cols[i];
            values[dst] = self.vals[i];
            cursor[r] += 1;
        }
        let mut csr = Csr::from_parts_unchecked(self.nrows, self.ncols, rowptr, colidx, values);
        csr.sort_indices();
        csr.sum_duplicates_with::<S>();
        csr
    }

    /// Converts to CSC, merging duplicates with the given semiring.
    pub fn to_csc_with<S>(&self) -> Csc<T>
    where
        S: Semiring<Elem = T>,
    {
        self.transpose().to_csr_with::<S>().transpose_into_csc()
    }

    /// Converts to a dense matrix, merging duplicates with the semiring.
    pub fn to_dense_with<S>(&self) -> Dense<T>
    where
        S: Semiring<Elem = T>,
    {
        let mut d = Dense::filled(self.nrows, self.ncols, S::zero());
        for (r, c, v) in self.iter() {
            let cur = d[(r as usize, c as usize)];
            d[(r as usize, c as usize)] = S::add(cur, v);
        }
        d
    }
}

impl<T: Numeric> Coo<T> {
    /// Converts to CSR, summing duplicates with ordinary addition.
    pub fn to_csr(&self) -> Csr<T> {
        self.to_csr_with::<PlusTimes<T>>()
    }

    /// Converts to CSC, summing duplicates with ordinary addition.
    pub fn to_csc(&self) -> Csc<T> {
        self.to_csc_with::<PlusTimes<T>>()
    }

    /// Converts to a dense matrix, summing duplicates.
    pub fn to_dense(&self) -> Dense<T> {
        self.to_dense_with::<PlusTimes<T>>()
    }
}

fn check_dims(nrows: usize, ncols: usize) -> Result<(), SparseError> {
    if nrows > MAX_DIM {
        return Err(SparseError::DimensionTooLarge { dim: nrows });
    }
    if ncols > MAX_DIM {
        return Err(SparseError::DimensionTooLarge { dim: ncols });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semiring::PlusTimes;

    fn sample() -> Coo<f64> {
        Coo::from_entries(
            3,
            4,
            vec![
                (2, 1, 3.0),
                (0, 0, 1.0),
                (1, 3, 2.0),
                (0, 0, 4.0),
                (2, 3, -1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn push_and_bounds() {
        let mut m: Coo<f64> = Coo::new(2, 2).unwrap();
        m.push(0, 1, 1.0).unwrap();
        m.push(1, 1, 2.0).unwrap();
        assert_eq!(m.nnz(), 2);
        assert!(m.push(2, 0, 1.0).is_err());
        assert!(m.push(0, 2, 1.0).is_err());
    }

    #[test]
    fn from_parts_validates() {
        let err = Coo::<f64>::from_parts(2, 2, vec![0, 5], vec![0, 0], vec![1.0, 1.0]);
        assert!(matches!(err, Err(SparseError::IndexOutOfBounds { .. })));
        let err = Coo::<f64>::from_parts(2, 2, vec![0], vec![0, 0], vec![1.0, 1.0]);
        assert!(matches!(err, Err(SparseError::LengthMismatch { .. })));
    }

    #[test]
    fn sort_and_canonical() {
        let mut m = sample();
        assert!(!m.is_canonical());
        m.sort_row_major();
        let coords: Vec<_> = m.iter().map(|(r, c, _)| (r, c)).collect();
        let mut sorted = coords.clone();
        sorted.sort_unstable();
        assert_eq!(coords, sorted);
        // Still has the duplicate (0,0) so not canonical yet.
        assert!(!m.is_canonical());
        m.sum_duplicates_with::<PlusTimes<f64>>();
        assert!(m.is_canonical());
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.iter().next().unwrap(), (0, 0, 5.0));
    }

    #[test]
    fn sort_col_major_orders_by_column() {
        let mut m = sample();
        m.sort_col_major();
        let coords: Vec<_> = m.iter().map(|(r, c, _)| (c, r)).collect();
        let mut sorted = coords.clone();
        sorted.sort_unstable();
        assert_eq!(coords, sorted);
    }

    #[test]
    fn transpose_swaps_shape_and_coords() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (4, 3));
        assert_eq!(t.nnz(), m.nnz());
        for ((r, c, v), (tr, tc, tv)) in m.iter().zip(t.iter()) {
            assert_eq!((r, c, v), (tc, tr, tv));
        }
    }

    #[test]
    fn conversion_to_dense_sums_duplicates() {
        let d = sample().to_dense();
        assert_eq!(d[(0, 0)], 5.0);
        assert_eq!(d[(2, 1)], 3.0);
        assert_eq!(d[(1, 3)], 2.0);
        assert_eq!(d[(2, 3)], -1.0);
        assert_eq!(d[(1, 1)], 0.0);
    }

    #[test]
    fn conversion_to_csr_matches_dense() {
        let m = sample();
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 4);
        assert_eq!(csr.to_dense(), m.to_dense());
        assert!(csr.has_sorted_indices());
    }

    #[test]
    fn conversion_to_csc_matches_dense() {
        let m = sample();
        let csc = m.to_csc();
        assert_eq!(csc.nnz(), 4);
        assert_eq!(csc.to_dense(), m.to_dense());
    }

    #[test]
    fn empty_matrix_conversions() {
        let m: Coo<f64> = Coo::new(5, 7).unwrap();
        assert_eq!(m.nnz(), 0);
        let csr = m.to_csr();
        assert_eq!(csr.shape(), (5, 7));
        assert_eq!(csr.nnz(), 0);
        let csc = m.to_csc();
        assert_eq!(csc.shape(), (5, 7));
        assert_eq!(csc.nnz(), 0);
    }

    #[test]
    fn dimension_limit_enforced() {
        assert!(Coo::<f64>::new(MAX_DIM + 1, 2).is_err());
        assert!(Coo::<f64>::new(2, MAX_DIM + 1).is_err());
    }

    #[test]
    fn into_parts_roundtrip() {
        let m = sample();
        let nnz = m.nnz();
        let (nr, nc, rows, cols, vals) = m.clone().into_parts();
        let back = Coo::from_parts(nr, nc, rows, cols, vals).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.nnz(), nnz);
    }
}
