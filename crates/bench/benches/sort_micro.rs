//! Criterion micro-benchmarks of the in-bin sorting ablation: LSD radix vs
//! American-flag vs comparison sort, at the key widths produced by the
//! paper's key-compression optimisation (4-byte keys) and without it
//! (8-byte keys).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pb_gen::Xoshiro256pp;
use pb_spgemm::sort::sort_slice;
use pb_spgemm::{Entry, SortAlgorithm};

fn make_entries(n: usize, key_bits: u32, seed: u64) -> Vec<Entry<f64>> {
    let mut rng = Xoshiro256pp::new(seed);
    (0..n)
        .map(|_| Entry {
            key: rng.next_u64() & ((1u64 << key_bits) - 1),
            val: rng.next_f64(),
        })
        .collect()
}

fn bench_sorters(c: &mut Criterion) {
    let mut group = c.benchmark_group("bin_sort");
    group.sample_size(20);
    // 16K tuples of 16 bytes = 256 KiB: the in-L2 bin size the paper targets.
    let n = 16 * 1024;
    for &(label, bits) in &[("packed_30bit_keys", 30u32), ("full_60bit_keys", 60u32)] {
        let data = make_entries(n, bits, bits as u64);
        let key_bytes = (bits as usize).div_ceil(8);
        for (name, algo) in [
            ("lsd_radix", SortAlgorithm::LsdRadix),
            ("american_flag", SortAlgorithm::AmericanFlag),
            ("comparison", SortAlgorithm::Comparison),
        ] {
            group.bench_with_input(BenchmarkId::new(name, label), &data, |bench, data| {
                bench.iter(|| {
                    let mut copy = data.clone();
                    sort_slice(&mut copy, key_bytes, algo);
                    black_box(copy.len())
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sorters);
criterion_main!(benches);
