//! Per-phase instrumentation: wall-clock timings, the data-movement model of
//! Table III, the derived bandwidth / FLOPS rates used throughout the
//! paper's evaluation (Figs. 6, 7b, 9b, 13), and the runtime telemetry
//! ([`PhaseStats`] / [`StatsCollector`]) that feeds the
//! [`AutoTune`](crate::config::AutoTune) policy.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Wall-clock time spent in each phase of one PB-SpGEMM multiplication.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Symbolic phase (flop counting + bin sizing).
    pub symbolic: Duration,
    /// Expand phase (outer products + propagation blocking).
    pub expand: Duration,
    /// Sort phase (per-bin radix sort).
    pub sort: Duration,
    /// Compress phase (per-bin two-pointer merge).
    pub compress: Duration,
    /// CSR assembly.
    pub assemble: Duration,
}

impl PhaseTimings {
    /// Total time across all phases.
    pub fn total(&self) -> Duration {
        self.symbolic + self.expand + self.sort + self.compress + self.assemble
    }
}

/// The phases of PB-SpGEMM, used to index per-phase reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Symbolic phase.
    Symbolic,
    /// Expand phase.
    Expand,
    /// Sort phase.
    Sort,
    /// Compress phase.
    Compress,
    /// CSR assembly.
    Assemble,
}

impl Phase {
    /// The three data-movement-heavy phases the paper reports bandwidth for.
    pub fn paper_phases() -> &'static [Phase] {
        &[Phase::Expand, Phase::Sort, Phase::Compress]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Phase::Symbolic => "symbolic",
            Phase::Expand => "expand",
            Phase::Sort => "sort",
            Phase::Compress => "compress",
            Phase::Assemble => "assemble",
        }
    }
}

/// Number of buckets of the flush-fill histogram: bucket `i` counts flushes
/// that filled `(i/8, (i+1)/8]` of the local-bin capacity, so bucket 7 holds
/// the capacity-triggered (full) flushes and bucket 0 the tiniest
/// end-of-segment partials.
pub const FLUSH_HIST_BUCKETS: usize = 8;

/// Number of NUMA domains whose bin occupancy is reported individually in
/// [`PhaseStats::domain_flop`]; domains beyond this fold into the last slot
/// (keeps the stats `Copy`, and 8 sockets covers every machine the paper's
/// class of hardware ships in).
pub const MAX_TELEMETRY_DOMAINS: usize = 8;

/// Which SIMD code paths one multiplication actually executed.
///
/// The dispatch level ([`Isa`](crate::simd::Isa)) is resolved once per
/// multiply, but the *counters* are the ground truth: they are incremented
/// inside the kernels' dispatch points, so a profile claiming `avx512` with
/// zero `simd_histograms` is immediately visible as a build or detection
/// problem.  `bench_pb --gate` asserts on these instead of trusting the
/// build (telemetry-as-proof).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsaDispatch {
    /// The resolved dispatch level this multiply ran under.
    pub isa: crate::simd::Isa,
    /// Sort-phase byte-histogram invocations (LSD passes and MSD partition
    /// counts) that ran a SIMD kernel.
    pub simd_histograms: u64,
    /// Byte-histogram invocations that ran the scalar loop (forced scalar,
    /// unsupported host, or inputs below
    /// [`SIMD_MIN_LEN`](crate::simd::SIMD_MIN_LEN)).
    pub scalar_histograms: u64,
    /// LSD scatter passes that issued software prefetch on the destination
    /// stream.
    pub prefetched_scatters: u64,
    /// Expand-phase local-bin flushes that prefetched their destination
    /// lines before the copy.
    pub prefetched_flushes: u64,
}

impl Default for IsaDispatch {
    fn default() -> Self {
        IsaDispatch {
            isa: crate::simd::Isa::Scalar,
            simd_histograms: 0,
            scalar_histograms: 0,
            prefetched_scatters: 0,
            prefetched_flushes: 0,
        }
    }
}

/// Runtime telemetry collected across the four phases of one multiplication.
///
/// All fields are plain counters so the struct stays `Copy` and can ride
/// inside [`SpGemmProfile`]; the derived rates the
/// [`AutoTune`](crate::config::AutoTune) policy consumes are exposed as
/// methods.  Collected by [`StatsCollector`] and threaded through
/// [`expand`](crate::expand), [`sort`](crate::sort),
/// [`compress`](crate::compress) and [`assemble`](crate::assemble).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Local-bin capacity (tuples per thread-private bin) the expand phase
    /// actually used — the resolved value of
    /// [`local_bin_capacity`](crate::expand::local_bin_capacity).
    pub local_bin_capacity: usize,
    /// Total local-bin flushes across all threads (Reserved strategy only;
    /// zero under `ThreadLocal`).
    pub flushes: u64,
    /// Total tuples moved by those flushes (equals the flop under the
    /// Reserved strategy).
    pub flushed_tuples: u64,
    /// Histogram of flush sizes by fill fraction of the local-bin capacity
    /// (see [`FLUSH_HIST_BUCKETS`]).
    pub flush_fill_hist: [u64; FLUSH_HIST_BUCKETS],
    /// Number of expand-phase fold segments that reported flush counts —
    /// the per-thread granularity of the telemetry (one segment never spans
    /// threads, so this bounds the parallelism the expand phase saw).
    pub expand_segments: usize,
    /// Fewest flushes reported by any one expand segment.
    pub min_segment_flushes: u64,
    /// Most flushes reported by any one expand segment.
    pub max_segment_flushes: u64,
    /// Expanded tuples landing in the fullest global bin.
    pub max_bin_flop: u64,
    /// Mean expanded tuples per global bin.
    pub mean_bin_flop: f64,
    /// NUMA domains the multiplication's bins were partitioned over (1 =
    /// no partitioning).
    pub numa_domains: usize,
    /// Flushes whose destination segment belonged to the flushing worker's
    /// own NUMA domain (Reserved strategy only).
    pub local_flushes: u64,
    /// Flushes that crossed domains — work stolen from another domain's
    /// column range, or runs on a pool whose domain labels disagree with
    /// the partition.  `local_flushes + remote_flushes == flushes`.
    pub remote_flushes: u64,
    /// Tuples moved by domain-local flushes.
    pub local_flushed_tuples: u64,
    /// Tuples moved by cross-domain flushes.
    pub remote_flushed_tuples: u64,
    /// Expanded tuples owned by each domain's bin segments (slot `d` for
    /// domain `d`; domains past [`MAX_TELEMETRY_DOMAINS`] fold into the
    /// last slot).  Sums to the flop when partitioning ran.
    pub domain_flop: [u64; MAX_TELEMETRY_DOMAINS],
    /// Bytes of workspace-managed buffers (expand tuple buffer, sort
    /// scratch, bin/row staging — see [`Workspace`](crate::Workspace))
    /// newly allocated by this multiply.  Repeated same-shape multiplies
    /// through one workspace report 0 here in steady state — the number the
    /// zero-allocation acceptance gate reads.
    pub bytes_allocated: u64,
    /// Bytes of workspace-managed buffers served from recycled capacity
    /// without touching the heap.
    pub bytes_reused: u64,
    /// Workspace-managed buffer acquisitions served entirely from recycled
    /// capacity (up to 5 per multiply: tuple buffer, sort scratch, bin
    /// offsets, compressed lengths, row counts).  0 without a workspace.
    pub workspace_hits: u64,
    /// Bins the sort phase processed with in-bin parallelism.
    pub par_sorted_bins: usize,
    /// Bins the compress phase split at key boundaries for in-bin
    /// parallelism.
    pub split_bins: usize,
    /// Total chunks those split bins were divided into.
    pub split_chunks: usize,
    /// Output rows with at least one nonzero (assemble phase).
    pub nonempty_rows: usize,
    /// Which SIMD code paths the multiply executed (dispatch level plus
    /// per-kernel invocation counters — see [`IsaDispatch`]).
    pub isa: IsaDispatch,
    /// Which kernel the [`Planner`](crate::planner::Planner) dispatched this
    /// multiply to, or
    /// [`PlannedKernel::Unplanned`](crate::planner::PlannedKernel::Unplanned)
    /// when the caller forced
    /// an algorithm (every direct `multiply_*` call and every explicit
    /// engine algorithm reports `Unplanned`).
    pub planned_algorithm: crate::planner::PlannedKernel,
    /// The planner's pre-multiply compression-factor estimate (`flop /
    /// estimated nnz(C)`; 0 when unplanned).  Compare with
    /// [`SpGemmProfile::cf`] to judge the estimator.
    pub planned_cf_estimate: f64,
    /// Row-nnz skew of `B` (max row nnz over mean row nnz) the planner saw;
    /// 0 when unplanned.
    pub planned_row_skew: f64,
    /// Bin-occupancy skew the planner projected from the per-column flop
    /// distribution; 0 when unplanned.
    pub planned_bin_skew: f64,
    /// Arithmetic intensity signal `flop / (nnz(A) + nnz(B))` the planner
    /// saw; 0 when unplanned.
    pub planned_flop_per_nnz: f64,
    /// Tiles multiplied by an out-of-core tiled run (see
    /// [`tiled`](crate::tiled)); 0 for resident multiplies.
    pub ooc_tiles: u64,
    /// Bytes the tile store spilled to its scratch file; 0 for resident
    /// multiplies (and for tiled runs whose working set fit the budget).
    pub ooc_spill_bytes: u64,
    /// Peak resident bytes of the tile store.  Bounded by the configured
    /// budget plus one tile's slack; 0 for resident multiplies.
    pub ooc_resident_high_water: u64,
}

impl Default for PhaseStats {
    fn default() -> Self {
        PhaseStats {
            local_bin_capacity: 0,
            flushes: 0,
            flushed_tuples: 0,
            flush_fill_hist: [0; FLUSH_HIST_BUCKETS],
            expand_segments: 0,
            min_segment_flushes: 0,
            max_segment_flushes: 0,
            max_bin_flop: 0,
            mean_bin_flop: 0.0,
            numa_domains: 1,
            local_flushes: 0,
            remote_flushes: 0,
            local_flushed_tuples: 0,
            remote_flushed_tuples: 0,
            domain_flop: [0; MAX_TELEMETRY_DOMAINS],
            bytes_allocated: 0,
            bytes_reused: 0,
            workspace_hits: 0,
            par_sorted_bins: 0,
            split_bins: 0,
            split_chunks: 0,
            nonempty_rows: 0,
            isa: IsaDispatch::default(),
            planned_algorithm: crate::planner::PlannedKernel::Unplanned,
            planned_cf_estimate: 0.0,
            planned_row_skew: 0.0,
            planned_bin_skew: 0.0,
            planned_flop_per_nnz: 0.0,
            ooc_tiles: 0,
            ooc_spill_bytes: 0,
            ooc_resident_high_water: 0,
        }
    }
}

impl PhaseStats {
    /// Mean tuples carried per flush (0 when nothing flushed).
    pub fn mean_flush_tuples(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.flushed_tuples as f64 / self.flushes as f64
        }
    }

    /// Flushes per expanded tuple — the "flush rate" the autotuner watches.
    /// A healthy rate is `1 / capacity`; rates far above it mean the local
    /// bins are too small and every reservation `fetch_add` moves only a few
    /// tuples.
    pub fn flush_rate(&self) -> f64 {
        if self.flushed_tuples == 0 {
            0.0
        } else {
            self.flushes as f64 / self.flushed_tuples as f64
        }
    }

    /// Fraction of flushes that were capacity-triggered (fell in the top
    /// histogram bucket).  Distinguishes "local bins too small" (high) from
    /// "workload too small to ever fill a bin" (low).
    pub fn full_flush_fraction(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.flush_fill_hist[FLUSH_HIST_BUCKETS - 1] as f64 / self.flushes as f64
        }
    }

    /// Bin occupancy skew: fullest bin over mean bin (1.0 = perfectly even,
    /// large = one bin dominates and serialises the sort/compress phases).
    pub fn occupancy_skew(&self) -> f64 {
        if self.mean_bin_flop == 0.0 {
            0.0
        } else {
            self.max_bin_flop as f64 / self.mean_bin_flop
        }
    }

    /// Fraction of flushes that stayed inside the flushing worker's own
    /// NUMA domain.  1.0 when nothing flushed (vacuously local: the
    /// ThreadLocal strategy and empty products move no flush traffic at
    /// all) — this is the number the acceptance telemetry gates on, so it
    /// is *measured* locality, not an assumption.
    pub fn local_flush_fraction(&self) -> f64 {
        if self.flushes == 0 {
            1.0
        } else {
            self.local_flushes as f64 / self.flushes as f64
        }
    }

    /// Per-domain share of the expanded tuples, for the domains that ran
    /// (`numa_domains` entries).
    pub fn domain_occupancy(&self) -> &[u64] {
        &self.domain_flop[..self.numa_domains.clamp(1, MAX_TELEMETRY_DOMAINS)]
    }
}

/// Thread-safe accumulator for [`PhaseStats`].
///
/// One collector lives for the duration of one multiplication; the phases
/// record into it with relaxed atomics (every parallel region already ends
/// with the pool's Release/Acquire completion handshake, so the final
/// [`StatsCollector::snapshot`] reads settled values).  Expand-phase
/// counters are accumulated *locally* per fold segment and merged once per
/// segment, so the hot flush path pays no atomics for telemetry.
#[derive(Debug)]
pub struct StatsCollector {
    local_bin_capacity: AtomicUsize,
    flushes: AtomicU64,
    flushed_tuples: AtomicU64,
    flush_fill_hist: [AtomicU64; FLUSH_HIST_BUCKETS],
    expand_segments: AtomicUsize,
    min_segment_flushes: AtomicU64,
    max_segment_flushes: AtomicU64,
    max_bin_flop: AtomicU64,
    bin_flop_sum: AtomicU64,
    bins: AtomicUsize,
    numa_domains: AtomicUsize,
    local_flushes: AtomicU64,
    remote_flushes: AtomicU64,
    local_flushed_tuples: AtomicU64,
    remote_flushed_tuples: AtomicU64,
    domain_flop: [AtomicU64; MAX_TELEMETRY_DOMAINS],
    bytes_allocated: AtomicU64,
    bytes_reused: AtomicU64,
    workspace_hits: AtomicU64,
    par_sorted_bins: AtomicUsize,
    split_bins: AtomicUsize,
    split_chunks: AtomicUsize,
    nonempty_rows: AtomicUsize,
    // Stored as Isa::index() so the collector stays lock-free.
    isa_level: AtomicUsize,
    simd_histograms: AtomicU64,
    scalar_histograms: AtomicU64,
    prefetched_scatters: AtomicU64,
    prefetched_flushes: AtomicU64,
}

impl Default for StatsCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl StatsCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        StatsCollector {
            local_bin_capacity: AtomicUsize::new(0),
            flushes: AtomicU64::new(0),
            flushed_tuples: AtomicU64::new(0),
            flush_fill_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            expand_segments: AtomicUsize::new(0),
            min_segment_flushes: AtomicU64::new(u64::MAX),
            max_segment_flushes: AtomicU64::new(0),
            max_bin_flop: AtomicU64::new(0),
            bin_flop_sum: AtomicU64::new(0),
            bins: AtomicUsize::new(0),
            numa_domains: AtomicUsize::new(1),
            local_flushes: AtomicU64::new(0),
            remote_flushes: AtomicU64::new(0),
            local_flushed_tuples: AtomicU64::new(0),
            remote_flushed_tuples: AtomicU64::new(0),
            domain_flop: std::array::from_fn(|_| AtomicU64::new(0)),
            bytes_allocated: AtomicU64::new(0),
            bytes_reused: AtomicU64::new(0),
            workspace_hits: AtomicU64::new(0),
            par_sorted_bins: AtomicUsize::new(0),
            split_bins: AtomicUsize::new(0),
            split_chunks: AtomicUsize::new(0),
            nonempty_rows: AtomicUsize::new(0),
            isa_level: AtomicUsize::new(crate::simd::Isa::Scalar.index()),
            simd_histograms: AtomicU64::new(0),
            scalar_histograms: AtomicU64::new(0),
            prefetched_scatters: AtomicU64::new(0),
            prefetched_flushes: AtomicU64::new(0),
        }
    }

    /// Records the [`Isa`](crate::simd::Isa) dispatch level the pipeline
    /// resolved for this multiply.
    pub fn record_isa(&self, isa: crate::simd::Isa) {
        self.isa_level.store(isa.index(), Ordering::Relaxed);
    }

    /// Merges one bin's (or one MSD bucket's) locally accumulated sort
    /// kernel counters — the sort analogue of `record_expand_segment`'s
    /// merge-once-per-segment discipline.
    pub fn record_sort_kernels(&self, ctr: &crate::simd::KernelCounters) {
        if ctr.simd_histograms > 0 {
            self.simd_histograms
                .fetch_add(ctr.simd_histograms, Ordering::Relaxed);
        }
        if ctr.scalar_histograms > 0 {
            self.scalar_histograms
                .fetch_add(ctr.scalar_histograms, Ordering::Relaxed);
        }
        if ctr.prefetched_scatters > 0 {
            self.prefetched_scatters
                .fetch_add(ctr.prefetched_scatters, Ordering::Relaxed);
        }
    }

    /// Records the resolved local-bin capacity (tuples) the expand phase is
    /// about to use.
    pub fn record_local_bin_capacity(&self, capacity: usize) {
        self.local_bin_capacity.store(capacity, Ordering::Relaxed);
    }

    /// Merges one expand fold segment's locally accumulated flush counters.
    /// `local_flushes`/`local_tuples` are the subset that stayed inside the
    /// flushing worker's own NUMA domain (all of them on an unpartitioned
    /// run); the remote counts are derived.  `prefetched_flushes` counts
    /// the flushes that hinted their destination lines with software
    /// prefetch (all or none per multiply, depending on the ISA level).
    pub fn record_expand_segment(
        &self,
        flushes: u64,
        tuples: u64,
        hist: &[u64; FLUSH_HIST_BUCKETS],
        local_flushes: u64,
        local_tuples: u64,
        prefetched_flushes: u64,
    ) {
        debug_assert!(local_flushes <= flushes && local_tuples <= tuples);
        debug_assert!(prefetched_flushes <= flushes);
        if prefetched_flushes > 0 {
            self.prefetched_flushes
                .fetch_add(prefetched_flushes, Ordering::Relaxed);
        }
        self.expand_segments.fetch_add(1, Ordering::Relaxed);
        self.flushes.fetch_add(flushes, Ordering::Relaxed);
        self.flushed_tuples.fetch_add(tuples, Ordering::Relaxed);
        self.local_flushes
            .fetch_add(local_flushes, Ordering::Relaxed);
        self.remote_flushes
            .fetch_add(flushes - local_flushes, Ordering::Relaxed);
        self.local_flushed_tuples
            .fetch_add(local_tuples, Ordering::Relaxed);
        self.remote_flushed_tuples
            .fetch_add(tuples - local_tuples, Ordering::Relaxed);
        for (slot, &count) in self.flush_fill_hist.iter().zip(hist) {
            if count > 0 {
                slot.fetch_add(count, Ordering::Relaxed);
            }
        }
        self.min_segment_flushes
            .fetch_min(flushes, Ordering::Relaxed);
        self.max_segment_flushes
            .fetch_max(flushes, Ordering::Relaxed);
    }

    /// Records the NUMA partition the symbolic phase chose: the domain
    /// count and each domain's share of the expanded tuples (folding
    /// domains past [`MAX_TELEMETRY_DOMAINS`] into the last slot).
    pub fn record_numa(&self, domains: usize, domain_flop: &[u64]) {
        self.numa_domains.store(domains.max(1), Ordering::Relaxed);
        for (d, &f) in domain_flop.iter().enumerate() {
            if f > 0 {
                self.domain_flop[d.min(MAX_TELEMETRY_DOMAINS - 1)].fetch_add(f, Ordering::Relaxed);
            }
        }
    }

    /// Records the per-bin flop distribution the symbolic phase computed.
    pub fn record_bin_flop(&self, bin_flop: &[u64]) {
        let max = bin_flop.iter().copied().max().unwrap_or(0);
        let sum: u64 = bin_flop.iter().sum();
        self.max_bin_flop.fetch_max(max, Ordering::Relaxed);
        self.bin_flop_sum.fetch_add(sum, Ordering::Relaxed);
        self.bins.fetch_add(bin_flop.len(), Ordering::Relaxed);
    }

    /// Records one workspace-managed buffer acquisition: bytes newly
    /// allocated, bytes served from recycled capacity, and whether the
    /// whole acquisition was a hit (no heap traffic at all).  Also used by
    /// the sort phase's heap-fallback scratch path (`allocated` only).
    pub fn record_workspace(&self, allocated: u64, reused: u64, hit: bool) {
        if allocated > 0 {
            self.bytes_allocated.fetch_add(allocated, Ordering::Relaxed);
        }
        if reused > 0 {
            self.bytes_reused.fetch_add(reused, Ordering::Relaxed);
        }
        if hit {
            self.workspace_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counts one bin sorted with in-bin parallelism.
    pub fn record_par_sorted_bin(&self) {
        self.par_sorted_bins.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one bin split into `chunks` key-boundary chunks by the
    /// compress phase.
    pub fn record_split_bin(&self, chunks: usize) {
        self.split_bins.fetch_add(1, Ordering::Relaxed);
        self.split_chunks.fetch_add(chunks, Ordering::Relaxed);
    }

    /// Records the number of output rows holding at least one nonzero.
    pub fn record_nonempty_rows(&self, rows: usize) {
        self.nonempty_rows.store(rows, Ordering::Relaxed);
    }

    /// Freezes the counters into a plain [`PhaseStats`].
    pub fn snapshot(&self) -> PhaseStats {
        let segments = self.expand_segments.load(Ordering::Relaxed);
        let bins = self.bins.load(Ordering::Relaxed);
        let sum = self.bin_flop_sum.load(Ordering::Relaxed);
        PhaseStats {
            local_bin_capacity: self.local_bin_capacity.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            flushed_tuples: self.flushed_tuples.load(Ordering::Relaxed),
            flush_fill_hist: std::array::from_fn(|i| {
                self.flush_fill_hist[i].load(Ordering::Relaxed)
            }),
            expand_segments: segments,
            min_segment_flushes: if segments == 0 {
                0
            } else {
                self.min_segment_flushes.load(Ordering::Relaxed)
            },
            max_segment_flushes: self.max_segment_flushes.load(Ordering::Relaxed),
            max_bin_flop: self.max_bin_flop.load(Ordering::Relaxed),
            mean_bin_flop: if bins == 0 {
                0.0
            } else {
                sum as f64 / bins as f64
            },
            numa_domains: self.numa_domains.load(Ordering::Relaxed),
            local_flushes: self.local_flushes.load(Ordering::Relaxed),
            remote_flushes: self.remote_flushes.load(Ordering::Relaxed),
            local_flushed_tuples: self.local_flushed_tuples.load(Ordering::Relaxed),
            remote_flushed_tuples: self.remote_flushed_tuples.load(Ordering::Relaxed),
            domain_flop: std::array::from_fn(|i| self.domain_flop[i].load(Ordering::Relaxed)),
            bytes_allocated: self.bytes_allocated.load(Ordering::Relaxed),
            bytes_reused: self.bytes_reused.load(Ordering::Relaxed),
            workspace_hits: self.workspace_hits.load(Ordering::Relaxed),
            par_sorted_bins: self.par_sorted_bins.load(Ordering::Relaxed),
            split_bins: self.split_bins.load(Ordering::Relaxed),
            split_chunks: self.split_chunks.load(Ordering::Relaxed),
            nonempty_rows: self.nonempty_rows.load(Ordering::Relaxed),
            isa: IsaDispatch {
                isa: crate::simd::Isa::from_index(self.isa_level.load(Ordering::Relaxed)),
                simd_histograms: self.simd_histograms.load(Ordering::Relaxed),
                scalar_histograms: self.scalar_histograms.load(Ordering::Relaxed),
                prefetched_scatters: self.prefetched_scatters.load(Ordering::Relaxed),
                prefetched_flushes: self.prefetched_flushes.load(Ordering::Relaxed),
            },
            // The planner stamps its decision onto the profile after the
            // multiply returns (see `SpGemm::multiply_with_profile`); the
            // collector itself only ever sees a forced-kernel pipeline.
            planned_algorithm: crate::planner::PlannedKernel::Unplanned,
            planned_cf_estimate: 0.0,
            planned_row_skew: 0.0,
            planned_bin_skew: 0.0,
            planned_flop_per_nnz: 0.0,
            // Stamped by the tiled driver (see `tiled`), never by the
            // per-multiply collector.
            ooc_tiles: 0,
            ooc_spill_bytes: 0,
            ooc_resident_high_water: 0,
        }
    }
}

/// Everything measured and derived from one PB-SpGEMM multiplication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpGemmProfile {
    /// Per-phase wall-clock timings.
    pub timings: PhaseTimings,
    /// Number of scalar multiplications performed.
    pub flop: u64,
    /// `nnz(A)`.
    pub nnz_a: usize,
    /// `nnz(B)`.
    pub nnz_b: usize,
    /// `nnz(C)`.
    pub nnz_c: usize,
    /// Number of propagation bins used.
    pub nbins: usize,
    /// Significant bytes per packed sort key (radix passes).
    pub key_bytes: u32,
    /// Bytes per expanded tuple in memory.
    pub tuple_bytes: usize,
    /// Bytes per nonzero used by the Roofline model (`b` in the paper, 16
    /// for `u32` indices + `f64` values in COO).
    pub coo_bytes: usize,
    /// Runtime telemetry collected across the phases.
    pub stats: PhaseStats,
}

impl SpGemmProfile {
    /// Compression factor `flop / nnz(C)` (1.0 for empty products).
    pub fn cf(&self) -> f64 {
        if self.nnz_c == 0 {
            1.0
        } else {
            self.flop as f64 / self.nnz_c as f64
        }
    }

    /// Achieved GFLOPS (`flop / total time`), the paper's headline metric.
    pub fn gflops(&self) -> f64 {
        let t = self.timings.total().as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.flop as f64 / t / 1e9
        }
    }

    /// Bytes moved to/from memory by a phase according to the model of
    /// Table III.
    pub fn phase_bytes(&self, phase: Phase) -> u64 {
        let b = self.coo_bytes as u64;
        let t = self.tuple_bytes as u64;
        match phase {
            // Streams the offset arrays only; negligible, modelled as the two
            // pointer arrays.
            Phase::Symbolic => 8 * (self.nnz_a.min(self.nnz_b)) as u64,
            // Reads both inputs, writes flop tuples.
            Phase::Expand => b * (self.nnz_a + self.nnz_b) as u64 + t * self.flop,
            // Reads flop tuples (in-cache shuffles not counted as memory
            // traffic, as in the paper).
            Phase::Sort => t * self.flop,
            // Writes nnz(C) merged tuples; the reads happen on data the sort
            // just brought into cache, so Table III does not charge them to
            // memory traffic.
            Phase::Compress => t * self.nnz_c as u64,
            // Reads nnz(C) tuples, writes the CSR arrays.
            Phase::Assemble => t * self.nnz_c as u64 + b * self.nnz_c as u64,
        }
    }

    /// Time spent in a phase.
    pub fn phase_time(&self, phase: Phase) -> Duration {
        match phase {
            Phase::Symbolic => self.timings.symbolic,
            Phase::Expand => self.timings.expand,
            Phase::Sort => self.timings.sort,
            Phase::Compress => self.timings.compress,
            Phase::Assemble => self.timings.assemble,
        }
    }

    /// Sustained bandwidth of a phase in GB/s under the Table III model.
    pub fn phase_bandwidth_gbps(&self, phase: Phase) -> f64 {
        let t = self.phase_time(phase).as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            self.phase_bytes(phase) as f64 / t / 1e9
        }
    }

    /// Sustained bandwidth over the whole multiplication (total modelled
    /// bytes / total time).
    pub fn overall_bandwidth_gbps(&self) -> f64 {
        let t = self.timings.total().as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        let bytes: u64 = [Phase::Expand, Phase::Sort, Phase::Compress, Phase::Assemble]
            .iter()
            .map(|&p| self.phase_bytes(p))
            .sum();
        bytes as f64 / t / 1e9
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "flop={} nnz(C)={} cf={:.2} nbins={} keyB={} | total={:.3}ms ({:.0} MFLOPS) | \
             expand {:.3}ms sort {:.3}ms compress {:.3}ms | bw e/s/c = {:.1}/{:.1}/{:.1} GB/s",
            self.flop,
            self.nnz_c,
            self.cf(),
            self.nbins,
            self.key_bytes,
            self.timings.total().as_secs_f64() * 1e3,
            self.gflops() * 1e3,
            self.timings.expand.as_secs_f64() * 1e3,
            self.timings.sort.as_secs_f64() * 1e3,
            self.timings.compress.as_secs_f64() * 1e3,
            self.phase_bandwidth_gbps(Phase::Expand),
            self.phase_bandwidth_gbps(Phase::Sort),
            self.phase_bandwidth_gbps(Phase::Compress),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpGemmProfile {
        SpGemmProfile {
            timings: PhaseTimings {
                symbolic: Duration::from_millis(1),
                expand: Duration::from_millis(10),
                sort: Duration::from_millis(5),
                compress: Duration::from_millis(4),
                assemble: Duration::from_millis(2),
            },
            flop: 16_000_000,
            nnz_a: 4_000_000,
            nnz_b: 4_000_000,
            nnz_c: 14_000_000,
            nbins: 1024,
            key_bytes: 4,
            tuple_bytes: 16,
            coo_bytes: 16,
            stats: PhaseStats::default(),
        }
    }

    #[test]
    fn totals_and_cf() {
        let p = sample();
        assert_eq!(p.timings.total(), Duration::from_millis(22));
        assert!((p.cf() - 16.0 / 14.0).abs() < 1e-12);
        // 16 Mflop / 22 ms ~= 0.727 GFLOPS.
        assert!((p.gflops() - 16.0e6 / 0.022 / 1e9).abs() < 1e-9);
    }

    #[test]
    fn phase_bytes_follow_table_iii() {
        let p = sample();
        // Expand: reads A and B (16 bytes each nnz), writes 16 bytes per flop.
        assert_eq!(
            p.phase_bytes(Phase::Expand),
            16 * 8_000_000 + 16 * 16_000_000
        );
        // Sort: reads flop tuples.
        assert_eq!(p.phase_bytes(Phase::Sort), 16 * 16_000_000);
        // Compress: writes nnz(C) tuples (its reads stay in cache).
        assert_eq!(p.phase_bytes(Phase::Compress), 16 * 14_000_000);
    }

    #[test]
    fn bandwidths_are_consistent_with_bytes_and_time() {
        let p = sample();
        let bw = p.phase_bandwidth_gbps(Phase::Sort);
        let expected = (16.0 * 16.0e6) / 0.005 / 1e9;
        assert!((bw - expected).abs() < 1e-9);
        assert!(p.overall_bandwidth_gbps() > 0.0);
        // Zero-duration phases report zero bandwidth instead of dividing by
        // zero.
        let mut zeroed = p;
        zeroed.timings.sort = Duration::ZERO;
        assert_eq!(zeroed.phase_bandwidth_gbps(Phase::Sort), 0.0);
    }

    #[test]
    fn empty_product_degenerate_values() {
        let p = SpGemmProfile {
            timings: PhaseTimings::default(),
            flop: 0,
            nnz_a: 0,
            nnz_b: 0,
            nnz_c: 0,
            nbins: 1,
            key_bytes: 1,
            tuple_bytes: 16,
            coo_bytes: 16,
            stats: PhaseStats::default(),
        };
        assert_eq!(p.cf(), 1.0);
        assert_eq!(p.gflops(), 0.0);
        assert_eq!(p.overall_bandwidth_gbps(), 0.0);
    }

    #[test]
    fn summary_mentions_key_quantities() {
        let s = sample().summary();
        assert!(s.contains("cf=1.14"));
        assert!(s.contains("nbins=1024"));
        assert!(s.contains("GB/s"));
    }

    #[test]
    fn phase_helpers() {
        assert_eq!(Phase::paper_phases().len(), 3);
        assert_eq!(Phase::Expand.name(), "expand");
        let p = sample();
        assert_eq!(p.phase_time(Phase::Assemble), Duration::from_millis(2));
    }

    #[test]
    fn collector_merges_segments_and_snapshots() {
        let c = StatsCollector::new();
        c.record_local_bin_capacity(32);
        let mut hist = [0u64; FLUSH_HIST_BUCKETS];
        hist[FLUSH_HIST_BUCKETS - 1] = 10;
        hist[0] = 2;
        c.record_expand_segment(12, 330, &hist, 10, 300, 12);
        c.record_expand_segment(4, 100, &[0; FLUSH_HIST_BUCKETS], 4, 100, 0);
        c.record_bin_flop(&[100, 300, 200]);
        c.record_numa(2, &[250, 180]);
        c.record_par_sorted_bin();
        c.record_split_bin(4);
        c.record_split_bin(2);
        c.record_nonempty_rows(77);
        c.record_workspace(1024, 0, false);
        c.record_workspace(0, 4096, true);
        c.record_isa(crate::simd::Isa::Avx2);
        c.record_sort_kernels(&crate::simd::KernelCounters {
            simd_histograms: 5,
            scalar_histograms: 2,
            prefetched_scatters: 3,
        });
        c.record_sort_kernels(&crate::simd::KernelCounters {
            simd_histograms: 1,
            scalar_histograms: 0,
            prefetched_scatters: 1,
        });

        let s = c.snapshot();
        assert_eq!(s.local_bin_capacity, 32);
        assert_eq!(s.flushes, 16);
        assert_eq!(s.flushed_tuples, 430);
        assert_eq!(s.expand_segments, 2);
        assert_eq!(s.min_segment_flushes, 4);
        assert_eq!(s.max_segment_flushes, 12);
        assert_eq!(s.flush_fill_hist[FLUSH_HIST_BUCKETS - 1], 10);
        assert_eq!(s.max_bin_flop, 300);
        assert!((s.mean_bin_flop - 200.0).abs() < 1e-12);
        assert_eq!(s.par_sorted_bins, 1);
        assert_eq!(s.split_bins, 2);
        assert_eq!(s.split_chunks, 6);
        assert_eq!(s.nonempty_rows, 77);
        assert_eq!(s.bytes_allocated, 1024);
        assert_eq!(s.bytes_reused, 4096);
        assert_eq!(s.workspace_hits, 1);

        // ISA dispatch telemetry: level plus merged kernel counters.
        assert_eq!(s.isa.isa, crate::simd::Isa::Avx2);
        assert_eq!(s.isa.simd_histograms, 6);
        assert_eq!(s.isa.scalar_histograms, 2);
        assert_eq!(s.isa.prefetched_scatters, 4);
        assert_eq!(s.isa.prefetched_flushes, 12);

        assert!((s.mean_flush_tuples() - 430.0 / 16.0).abs() < 1e-12);
        assert!((s.flush_rate() - 16.0 / 430.0).abs() < 1e-12);
        assert!((s.full_flush_fraction() - 10.0 / 16.0).abs() < 1e-12);
        assert!((s.occupancy_skew() - 1.5).abs() < 1e-12);

        // NUMA telemetry: 14 of 16 flushes stayed domain-local.
        assert_eq!(s.numa_domains, 2);
        assert_eq!(s.local_flushes, 14);
        assert_eq!(s.remote_flushes, 2);
        assert_eq!(s.local_flushed_tuples, 400);
        assert_eq!(s.remote_flushed_tuples, 30);
        assert!((s.local_flush_fraction() - 14.0 / 16.0).abs() < 1e-12);
        assert_eq!(s.domain_occupancy(), &[250, 180]);
    }

    #[test]
    fn numa_telemetry_folds_excess_domains_and_defaults_local() {
        let c = StatsCollector::new();
        // 10 domains fold into the 8 telemetry slots (last slot aggregates).
        let flop: Vec<u64> = (1..=10).collect();
        c.record_numa(10, &flop);
        let s = c.snapshot();
        assert_eq!(s.numa_domains, 10);
        assert_eq!(s.domain_occupancy().len(), MAX_TELEMETRY_DOMAINS);
        assert_eq!(s.domain_flop[MAX_TELEMETRY_DOMAINS - 1], 8 + 9 + 10);
        assert_eq!(s.domain_flop.iter().sum::<u64>(), flop.iter().sum::<u64>());
        // No flushes at all is vacuously local.
        assert_eq!(s.local_flush_fraction(), 1.0);
    }

    #[test]
    fn empty_stats_rates_are_zero_not_nan() {
        let s = PhaseStats::default();
        assert_eq!(s.mean_flush_tuples(), 0.0);
        assert_eq!(s.flush_rate(), 0.0);
        assert_eq!(s.full_flush_fraction(), 0.0);
        assert_eq!(s.occupancy_skew(), 0.0);
        let snap = StatsCollector::new().snapshot();
        assert_eq!(snap, s);
    }
}
