//! End-to-end exercises of the unified `MatrixSource` I/O layer: format
//! round trips are bit-identical, zero-copy mapped views agree with the
//! copying reader, generator specs are deterministic, and adversarial
//! inputs — malformed, truncated, or with lying headers — come back as
//! typed errors instead of panics or aborts.

use proptest::prelude::*;

use pb_spgemm_suite::gen::io::{open_source, BinarySource, MatrixSource};
use pb_spgemm_suite::gen::{erdos_renyi_square, load_matrix, rmat_square, save_matrix};
use pb_spgemm_suite::sparse::binfmt::{self, read_csr_from, write_csr_to, MappedCsr, HEADER_BYTES};
use pb_spgemm_suite::sparse::{Coo, Csr, SparseError};

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("pb_matrix_source_tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Bit-exact equality: rounded-trip floats must come back identical to the
/// last bit, not merely approximately.
fn bits_equal(a: &Csr<f64>, b: &Csr<f64>) -> bool {
    a.shape() == b.shape()
        && a.rowptr() == b.rowptr()
        && a.colidx() == b.colidx()
        && a.values().len() == b.values().len()
        && a.values()
            .iter()
            .zip(b.values())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

#[test]
fn mtx_to_binary_to_mmap_is_bit_identical() {
    // Matrix Market is a decimal text format, so the canonical reference is
    // the matrix *as loaded from text*; from there every binary hop must be
    // exact to the last bit.
    let m = rmat_square(6, 8, 42);
    let mtx = temp_path("rt.mtx");
    let pbsm = temp_path("rt.pbsm");
    save_matrix(&mtx, &m).unwrap();

    let from_text = load_matrix(mtx.to_str().unwrap()).unwrap();
    assert_eq!(from_text.shape(), m.shape());
    assert_eq!(from_text.nnz(), m.nnz());

    save_matrix(&pbsm, &from_text).unwrap();
    let from_binary = load_matrix(pbsm.to_str().unwrap()).unwrap();
    assert!(bits_equal(&from_text, &from_binary));

    // The zero-copy mapped view serves the identical bytes without a heap
    // copy of the matrix.
    let mapped = MappedCsr::<f64>::open(&pbsm).unwrap();
    assert_eq!(mapped.shape(), from_text.shape());
    assert_eq!(mapped.nnz(), from_text.nnz());
    assert_eq!(mapped.colidx(), from_text.colidx());
    assert!(mapped
        .values()
        .iter()
        .zip(from_text.values())
        .all(|(x, y)| x.to_bits() == y.to_bits()));
    assert!(bits_equal(&mapped.to_csr().unwrap(), &from_binary));
}

#[test]
fn legacy_v1_files_load_through_the_same_source() {
    let m = erdos_renyi_square(5, 4, 7);
    let path = temp_path("legacy.pbsm");
    let file = std::fs::File::create(&path).unwrap();
    binfmt::write_csr_v1_to(std::io::BufWriter::new(file), &m).unwrap();

    // The mapped view refuses unaligned v1 sections with a typed error...
    let err = MappedCsr::<f64>::open(&path).unwrap_err();
    assert!(err.to_string().contains("version 1"), "{err}");
    // ...but the BinarySource falls back to the copying reader transparently.
    let back = BinarySource::new(&path).load().unwrap();
    assert!(bits_equal(&m, &back));
}

#[test]
fn generator_specs_are_deterministic_and_described() {
    let spec = "er:scale=6,edge_factor=4,seed=11";
    let source = open_source(spec).unwrap();
    assert_eq!(source.describe(), spec);
    let a = source.load().unwrap();
    let b = load_matrix(spec).unwrap();
    assert!(bits_equal(&a, &b), "same spec, same matrix");
    assert!(bits_equal(&a, &erdos_renyi_square(6, 4, 11)));

    // The admission estimate is an upper bound on the real resident bytes.
    let estimate = source.estimated_bytes().unwrap();
    let actual = ((a.nrows() + 1) * 8 + a.nnz() * 12) as u64;
    assert!(estimate >= actual, "estimate {estimate} < actual {actual}");
}

// ---------------------------------------------------------------------------
// Adversarial inputs
// ---------------------------------------------------------------------------

#[test]
fn malformed_specs_and_files_are_typed_errors() {
    // Unknown extensions, families and parameters.
    assert!(matches!(
        open_source("matrix.xyz").unwrap_err(),
        SparseError::Spec { .. }
    ));
    assert!(matches!(
        open_source("wormhole:scale=4").unwrap_err(),
        SparseError::Spec { .. }
    ));
    assert!(open_source("rmat:scale=banana").is_err());
    assert!(open_source("standin:name=no-such-matrix").is_err());

    // Nonexistent files surface I/O errors at load time, not panics.
    assert!(load_matrix("/nonexistent/dir/m.mtx").is_err());
    assert!(load_matrix("/nonexistent/dir/m.pbsm").is_err());

    // Matrix Market garbage: wrong banner, non-numeric entries, indices out
    // of the declared bounds.
    for (name, text) in [
        ("bad_banner.mtx", "%%NotMatrixMarket\n2 2 1\n1 1 1.0\n"),
        (
            "bad_entry.mtx",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 one 1.0\n",
        ),
        (
            "oob_entry.mtx",
            "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n",
        ),
        (
            "short.mtx",
            "%%MatrixMarket matrix coordinate real general\n4 4 9\n1 1 1.0\n",
        ),
    ] {
        let path = temp_path(name);
        std::fs::write(&path, text).unwrap();
        let err =
            load_matrix(path.to_str().unwrap()).expect_err(&format!("{name} should fail to parse"));
        assert!(
            !err.to_string().is_empty(),
            "{name}: error must carry detail"
        );
    }
}

#[test]
fn truncated_and_lying_binary_headers_never_panic() {
    let m = erdos_renyi_square(5, 4, 3);
    let mut good = Vec::new();
    write_csr_to(&mut good, &m).unwrap();

    // Every strict prefix is a typed error from both readers.
    for cut in [
        0,
        3,
        HEADER_BYTES - 1,
        HEADER_BYTES,
        good.len() / 2,
        good.len() - 1,
    ] {
        let err = read_csr_from::<_, f64>(&good[..cut]).unwrap_err();
        assert!(
            matches!(err, SparseError::Binary { .. }),
            "cut={cut}: {err}"
        );
        let path = temp_path("trunc.pbsm");
        std::fs::write(&path, &good[..cut]).unwrap();
        assert!(MappedCsr::<f64>::open(&path).is_err(), "mapped cut={cut}");
    }

    // Bad magic and unsupported version.
    let mut bad = good.clone();
    bad[..4].copy_from_slice(b"NOPE");
    assert!(read_csr_from::<_, f64>(bad.as_slice()).is_err());
    let mut bad = good.clone();
    bad[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert!(read_csr_from::<_, f64>(bad.as_slice()).is_err());

    // A header declaring an absurd nnz must be rejected up front — not
    // drive a pre-allocation or layout-arithmetic abort.  (Offsets: magic 4,
    // version 4, tag 4, nrows 8, ncols 8, then nnz.)
    let mut lying = good.clone();
    lying[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
    let err = read_csr_from::<_, f64>(lying.as_slice()).unwrap_err();
    assert!(err.to_string().contains("nnz"), "{err}");
    let path = temp_path("lying.pbsm");
    std::fs::write(&path, &lying).unwrap();
    assert!(MappedCsr::<f64>::open(&path).is_err());

    // A shape past the u32 index space is refused before any read.
    let mut huge = good.clone();
    huge[12..20].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    let err = read_csr_from::<_, f64>(huge.as_slice()).unwrap_err();
    assert!(err.to_string().contains("index space"), "{err}");

    // Extra trailing bytes: the exact-length mapped reader refuses them.
    let mut oversized = good.clone();
    oversized.extend_from_slice(&[0u8; 128]);
    let path = temp_path("oversized.pbsm");
    std::fs::write(&path, &oversized).unwrap();
    let err = MappedCsr::<f64>::open(&path).unwrap_err();
    assert!(err.to_string().contains("bytes"), "{err}");

    // The untouched original still loads, bit-exact.
    let back = read_csr_from::<_, f64>(good.as_slice()).unwrap();
    assert!(bits_equal(&m, &back));
}

#[test]
fn wrong_element_type_tag_is_rejected() {
    let m = erdos_renyi_square(4, 2, 1).map_values(|v: f64| v as u64);
    let mut buf = Vec::new();
    write_csr_to(&mut buf, &m).unwrap();
    let err = read_csr_from::<_, f64>(buf.as_slice()).unwrap_err();
    assert!(err.to_string().contains("type"), "{err}");
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// Strategy: an arbitrary COO matrix (may contain duplicate coordinates).
fn coo_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Coo<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, -100.0f64..100.0f64);
        proptest::collection::vec(entry, 0..=max_nnz)
            .prop_map(move |entries| Coo::from_entries(nrows, ncols, entries).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// v2 write -> read is bit-identical for arbitrary matrices, and every
    /// strict prefix of the serialised bytes is a typed error.
    #[test]
    fn binary_roundtrip_is_bit_exact_and_prefixes_fail(
        coo in coo_matrix(40, 200),
        cut_fraction in 0.0f64..1.0,
    ) {
        let m = coo.to_csr();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let back = read_csr_from::<_, f64>(buf.as_slice()).unwrap();
        prop_assert!(bits_equal(&m, &back));

        let cut = ((buf.len() as f64) * cut_fraction) as usize;
        if cut < buf.len() {
            prop_assert!(read_csr_from::<_, f64>(&buf[..cut]).is_err());
        }
    }

    /// Single-byte corruption anywhere in the stream never panics: the
    /// reader either returns a typed error or a structurally valid matrix
    /// (a flipped *value* byte is invisible to structural validation).
    #[test]
    fn corrupted_bytes_never_panic(
        coo in coo_matrix(24, 96),
        offset_fraction in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let m = coo.to_csr();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let offset = (((buf.len() - 1) as f64) * offset_fraction) as usize;
        buf[offset] ^= flip;
        if let Ok(parsed) = read_csr_from::<_, f64>(buf.as_slice()) {
            prop_assert!(parsed.validate().is_ok());
        }
    }
}
