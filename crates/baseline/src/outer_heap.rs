//! Outer-product SpGEMM with heap-based merging.
//!
//! The other outer-product formulation Table I mentions (Buluç & Gilbert,
//! reference \[23\] of the paper): every outer product `A(:, i) × B(i, :)`
//! yields its tuples already in `(row, col)` order, so the `k` outer products
//! form `k` sorted runs that a binary heap can merge into the final CSR
//! output in one pass, accumulating duplicates as they surface.
//!
//! The paper dismisses this algorithm as "too expensive" because the heap
//! adds a `log k` factor to every one of the `flop` tuples and the merge is
//! inherently sequential; it is implemented here exactly so the benchmark
//! suite can quantify that claim against PB-SpGEMM's sort-based merging.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::{Csc, Csr, Index};

/// Cursor into one outer product's sorted run of tuples.
///
/// The run for inner index `i` enumerates `(r, c)` for every `r` in
/// `A(:, i)` (ascending) crossed with every `c` in `B(i, :)` (ascending),
/// which is exactly `(row, col)`-sorted order.
#[derive(Debug, Clone, Copy)]
struct RunCursor {
    /// Inner index (column of `A` / row of `B`).
    inner: usize,
    /// Position within `A(:, inner)`.
    a_pos: usize,
    /// Position within `B(inner, :)`.
    b_pos: usize,
}

/// Computes `C = A·B` by merging the `k` outer-product runs with a binary
/// heap, under an arbitrary semiring.  `A` is taken in CSC and `B` in CSR,
/// the same operand formats as PB-SpGEMM.
pub fn outer_heap_spgemm_with<S: Semiring>(a: &Csc<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "outer-product SpGEMM shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let (nrows, ncols) = (a.nrows(), b.ncols());
    let k = a.ncols();

    // Key helper: (row, col) packed so the heap orders tuples row-major.
    let key_of = |r: Index, c: Index| ((r as u64) << 32) | c as u64;

    // Seed the heap with the first tuple of every non-empty run.
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut cursors: Vec<RunCursor> = Vec::with_capacity(k);
    for i in 0..k {
        if a.col_nnz(i) > 0 && b.row_nnz(i) > 0 {
            let cursor = RunCursor {
                inner: i,
                a_pos: 0,
                b_pos: 0,
            };
            let r = a.col(i).0[0];
            let c = b.row(i).0[0];
            heap.push(Reverse((key_of(r, c), cursors.len())));
            cursors.push(cursor);
        }
    }

    let mut rowptr = vec![0usize; nrows + 1];
    let mut colidx: Vec<Index> = Vec::new();
    let mut values: Vec<S::Elem> = Vec::new();
    let mut last_key: Option<u64> = None;

    while let Some(Reverse((key, run))) = heap.pop() {
        let cursor = &mut cursors[run];
        let i = cursor.inner;
        let (a_rows, a_vals) = a.col(i);
        let (b_cols, b_vals) = b.row(i);
        let val = S::mul(a_vals[cursor.a_pos], b_vals[cursor.b_pos]);
        let (r, c) = (a_rows[cursor.a_pos], b_cols[cursor.b_pos]);

        if last_key == Some(key) {
            // Same (row, col) as the previous tuple: accumulate in place.
            let last = values
                .last_mut()
                .expect("a previous tuple exists when keys repeat");
            *last = S::add(*last, val);
        } else {
            rowptr[r as usize + 1] += 1;
            colidx.push(c);
            values.push(val);
            last_key = Some(key);
        }

        // Advance this run: next column of B, wrapping to the next row of A.
        cursor.b_pos += 1;
        if cursor.b_pos == b_cols.len() {
            cursor.b_pos = 0;
            cursor.a_pos += 1;
        }
        if cursor.a_pos < a_rows.len() {
            let nr = a_rows[cursor.a_pos];
            let nc = b_cols[cursor.b_pos];
            heap.push(Reverse((key_of(nr, nc), run)));
        }
    }

    // Per-row counts -> prefix sums.
    for r in 0..nrows {
        rowptr[r + 1] += rowptr[r];
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

/// Heap-merged outer-product SpGEMM with ordinary `+`/`×`.
pub fn outer_heap_spgemm<T: Numeric + Default>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    outer_heap_spgemm_with::<PlusTimes<T>>(&a.to_csc(), b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::{erdos_renyi_square, rmat_square};
    use pb_sparse::reference::{csr_approx_eq, multiply_csr, multiply_csr_with};
    use pb_sparse::semiring::{MinPlus, OrAnd};
    use pb_sparse::Coo;

    #[test]
    fn matches_the_reference_on_random_matrices() {
        for seed in [1u64, 2, 3] {
            let a = erdos_renyi_square(6, 5, seed);
            let c = outer_heap_spgemm(&a, &a);
            assert!(
                csr_approx_eq(&c, &multiply_csr(&a, &a), 1e-9),
                "seed {seed}"
            );
            assert!(c.has_sorted_indices());
            assert!(!c.has_duplicates());
        }
        let a = rmat_square(7, 6, 4);
        assert!(csr_approx_eq(
            &outer_heap_spgemm(&a, &a),
            &multiply_csr(&a, &a),
            1e-9
        ));
    }

    #[test]
    fn duplicates_across_runs_are_accumulated() {
        // C(0, 0) receives one contribution from each of the two inner
        // indices.
        let a = Coo::from_entries(2, 2, vec![(0, 0, 2.0), (0, 1, 3.0)])
            .unwrap()
            .to_csr();
        let b = Coo::from_entries(2, 2, vec![(0, 0, 5.0), (1, 0, 7.0)])
            .unwrap()
            .to_csr();
        let c = outer_heap_spgemm_with::<PlusTimes<f64>>(&a.to_csc(), &b);
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get(0, 0), Some(2.0 * 5.0 + 3.0 * 7.0));
    }

    #[test]
    fn rectangular_and_empty_products() {
        let a = pb_gen::erdos_renyi(&pb_gen::ErConfig {
            nrows: 30,
            ncols: 20,
            nnz_per_col: 3,
            seed: 6,
            random_values: true,
        });
        let b = pb_gen::erdos_renyi(&pb_gen::ErConfig {
            nrows: 20,
            ncols: 45,
            nnz_per_col: 2,
            seed: 7,
            random_values: true,
        });
        let c = outer_heap_spgemm_with::<PlusTimes<f64>>(&a.to_csc(), &b);
        assert_eq!(c.shape(), (30, 45));
        assert!(csr_approx_eq(&c, &multiply_csr(&a, &b), 1e-9));

        let empty = Csr::<f64>::empty(8, 8);
        assert_eq!(outer_heap_spgemm(&empty, &empty).nnz(), 0);
    }

    #[test]
    fn other_semirings() {
        let a = erdos_renyi_square(6, 4, 11);
        let pattern = a.map_values(|_| true);
        let c = outer_heap_spgemm_with::<OrAnd>(&pattern.to_csc(), &pattern);
        let want = multiply_csr_with::<OrAnd>(&pattern, &pattern);
        assert_eq!(c.rowptr(), want.rowptr());
        assert_eq!(c.colidx(), want.colidx());

        let c = outer_heap_spgemm_with::<MinPlus>(&a.to_csc(), &a);
        let want = multiply_csr_with::<MinPlus>(&a, &a);
        assert!(csr_approx_eq(&c, &want, 1e-12));
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_shapes_panic() {
        let a: Csr<f64> = Csr::empty(4, 5);
        let b: Csr<f64> = Csr::empty(6, 4);
        let _ = outer_heap_spgemm_with::<PlusTimes<f64>>(&a.to_csc(), &b);
    }
}
