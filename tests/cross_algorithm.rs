//! Cross-crate integration tests: every SpGEMM implementation in the
//! workspace (PB-SpGEMM in all configurations and the five column
//! baselines) must agree with the reference implementation on every matrix
//! family the paper evaluates.

use pb_spgemm_suite::baseline::Baseline;
use pb_spgemm_suite::gen::{
    banded, block_diagonal, erdos_renyi_square, rmat_square, standin_scaled, tridiagonal,
};
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::reference::{csr_approx_eq, multiply_csr};
use pb_spgemm_suite::spgemm::{BinMapping, ExpandStrategy, SortAlgorithm};

/// Engine-backed stand-in for the retired `pb_spgemm::multiply` free
/// function: call sites stay unchanged while routing through the unified
/// [`SpGemm`] engine.
fn multiply(a: &Csc<f64>, b: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb().config(cfg.clone()).multiply_csc(a, b)
}

/// Engine-backed stand-in for the retired `pb_spgemm::multiply_with`.
fn multiply_with<S: Semiring>(a: &Csc<S::Elem>, b: &Csr<S::Elem>, cfg: &PbConfig) -> Csr<S::Elem>
where
    S::Elem: Default,
{
    SpGemm::pb()
        .config(cfg.clone())
        .multiply_csc_with::<S>(a, b)
}

fn families() -> Vec<(String, Csr<f64>)> {
    vec![
        ("er_small".into(), erdos_renyi_square(7, 4, 1)),
        ("er_denser".into(), erdos_renyi_square(8, 16, 2)),
        ("rmat".into(), rmat_square(8, 8, 3)),
        ("banded".into(), banded(257, 15, 4)),
        ("block_diagonal".into(), block_diagonal(16, 16, 5)),
        ("tridiagonal".into(), tridiagonal(400, -1.0, 2.0, -1.0)),
        (
            "standin_scircuit".into(),
            standin_scaled("scircuit", 0.004, 6),
        ),
        ("standin_cant".into(), standin_scaled("cant", 0.01, 7)),
        ("standin_web".into(), standin_scaled("web-Google", 0.002, 8)),
    ]
}

#[test]
fn pb_spgemm_matches_reference_on_every_family() {
    for (name, a) in families() {
        let expected = multiply_csr(&a, &a);
        let c = multiply(&a.to_csc(), &a, &PbConfig::default());
        assert!(
            csr_approx_eq(&c, &expected, 1e-9),
            "PB-SpGEMM wrong on {name}"
        );
    }
}

#[test]
fn all_baselines_match_reference_on_every_family() {
    for (name, a) in families() {
        let expected = multiply_csr(&a, &a);
        for baseline in Baseline::all() {
            let c = baseline.multiply(&a, &a);
            assert!(
                csr_approx_eq(&c, &expected, 1e-9),
                "{} wrong on {name}",
                baseline.name()
            );
        }
    }
}

#[test]
fn pb_configurations_agree_on_a_skewed_matrix() {
    let a = rmat_square(9, 8, 11);
    let expected = multiply_csr(&a, &a);
    let a_csc = a.to_csc();
    for mapping in [BinMapping::Range, BinMapping::Modulo] {
        for expand in [ExpandStrategy::Reserved, ExpandStrategy::ThreadLocal] {
            for sort in [SortAlgorithm::LsdRadix, SortAlgorithm::AmericanFlag] {
                for nbins in [1usize, 8, 64, 512] {
                    let cfg = PbConfig::default()
                        .with_bin_mapping(mapping)
                        .with_expand(expand)
                        .with_sort(sort)
                        .with_nbins(nbins);
                    let c = multiply(&a_csc, &a, &cfg);
                    assert!(
                        csr_approx_eq(&c, &expected, 1e-9),
                        "config {mapping:?}/{expand:?}/{sort:?}/nbins={nbins} disagrees"
                    );
                }
            }
        }
    }
}

#[test]
fn chained_products_stay_consistent() {
    // (A·A)·A computed with PB-SpGEMM equals A·(A·A) computed with a column
    // baseline (associativity across implementations).
    let a = erdos_renyi_square(7, 4, 21);
    let cfg = PbConfig::default();
    let aa_pb = multiply(&a.to_csc(), &a, &cfg);
    let left = multiply(&aa_pb.to_csc(), &a, &cfg);
    let aa_hash = Baseline::Hash.multiply(&a, &a);
    let right = Baseline::Heap.multiply(&a, &aa_hash);
    assert!(csr_approx_eq(&left, &right, 1e-7));
}

#[test]
fn rectangular_chains_across_crates() {
    // 200x300 * 300x150 with every implementation.
    let a = pb_spgemm_suite::gen::erdos_renyi(&pb_spgemm_suite::gen::ErConfig {
        nrows: 200,
        ncols: 300,
        nnz_per_col: 3,
        seed: 31,
        random_values: true,
    });
    let b = pb_spgemm_suite::gen::erdos_renyi(&pb_spgemm_suite::gen::ErConfig {
        nrows: 300,
        ncols: 150,
        nnz_per_col: 5,
        seed: 32,
        random_values: true,
    });
    let expected = multiply_csr(&a, &b);
    let pb = multiply(&a.to_csc(), &b, &PbConfig::default());
    assert!(csr_approx_eq(&pb, &expected, 1e-9));
    for baseline in Baseline::all() {
        assert!(csr_approx_eq(&baseline.multiply(&a, &b), &expected, 1e-9));
    }
}

#[test]
fn semiring_results_agree_between_pb_and_baselines() {
    let a = rmat_square(7, 6, 41);
    let bool_a = a.map_values(|_| true);

    let pb_pattern = multiply_with::<OrAnd>(&bool_a.to_csc(), &bool_a, &PbConfig::default());
    let heap_pattern = Baseline::Heap.multiply_with::<OrAnd>(&bool_a, &bool_a);
    assert_eq!(pb_pattern.rowptr(), heap_pattern.rowptr());
    assert_eq!(pb_pattern.colidx(), heap_pattern.colidx());

    let pb_dist = multiply_with::<MinPlus>(&a.to_csc(), &a, &PbConfig::default());
    let hash_dist = Baseline::Hash.multiply_with::<MinPlus>(&a, &a);
    assert!(csr_approx_eq(&pb_dist, &hash_dist, 1e-12));
}
