//! Criterion micro-benchmarks: PB-SpGEMM against every column baseline on
//! fixed ER / R-MAT / banded workloads (the micro-scale counterpart of
//! Figs. 7, 9 and 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pb_baseline::Baseline;
use pb_gen::{banded, erdos_renyi_square, rmat_square};
use pb_sparse::Csr;
use pb_spgemm::SpGemm;

fn workloads() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("er_s12_ef8", erdos_renyi_square(12, 8, 1)),
        ("rmat_s12_ef8", rmat_square(12, 8, 2)),
        ("banded_4096_w33", banded(4096, 33, 3)),
    ]
}

fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm");
    group.sample_size(10);
    for (name, a) in workloads() {
        let a_csc = a.to_csc();
        group.bench_with_input(BenchmarkId::new("PB-SpGEMM", name), &a, |bench, a| {
            let engine = SpGemm::pb();
            bench.iter(|| black_box(engine.multiply_csc(&a_csc, a)));
        });
        for baseline in Baseline::paper_set() {
            group.bench_with_input(BenchmarkId::new(baseline.name(), name), &a, |bench, a| {
                bench.iter(|| black_box(baseline.multiply(a, a)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);
