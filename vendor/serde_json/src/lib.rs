//! Minimal JSON emitter and parser over the vendored serde shim.
//!
//! Supports the subset the workspace uses: [`to_string`] and
//! [`to_string_pretty`] over anything implementing the shim's
//! `serde::Serialize`, plus [`from_str`] parsing arbitrary JSON text back
//! into a [`Value`] tree (used by `bench_pb --verify` to validate emitted
//! baselines).  Output matches real `serde_json` conventions: 2-space
//! pretty indentation, `null` for `Option::None`, non-finite floats
//! serialized as `null`, and standard string escaping.

use serde::Serialize;
pub use serde::Value;

/// Serialization error; the shim's lowering is infallible, so this is never
/// produced, but the `Result` return keeps call sites source-compatible
/// with real `serde_json`.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Match serde_json: always include a decimal point or
                // exponent so the token re-parses as a float.
                let s = x.to_string();
                if s.contains('.') || s.contains('e') || s.contains('E') {
                    out.push_str(&s);
                } else {
                    out.push_str(&s);
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
///
/// Standard JSON only (RFC 8259): no comments, no trailing commas, no
/// `NaN`/`Infinity` tokens.  Integral numbers without exponent parse as
/// `Value::UInt`/`Value::Int`; everything else numeric as `Value::Float`.
/// Trailing whitespace is permitted, trailing garbage is an error.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), Error> {
    if bytes.get(*pos) == Some(&token) {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!(
            "expected '{}' at byte {}",
            token as char, *pos
        )))
    }
}

/// Maximum container nesting depth, matching real serde_json's default
/// recursion limit: deeper documents return an error instead of
/// overflowing the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error(format!(
            "recursion limit exceeded at byte {} (max depth {MAX_DEPTH})",
            *pos
        )));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_keyword(bytes, pos, b"null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, b"true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, b"false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos, depth + 1)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos, depth + 1)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    keyword: &[u8],
    value: Value,
) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(keyword) {
        *pos += keyword.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("invalid \\u escape".into()))?;
                        // Basic-multilingual-plane escapes only (the shim
                        // never emits surrogate pairs).
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error("invalid \\u code point".into()))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("invalid escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point (input is a &str, so the
                // byte stream is valid UTF-8 by construction).
                let rest = &text_from(bytes)[*pos..];
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn text_from(bytes: &[u8]) -> &str {
    // SAFETY-free: from_str received a &str; bytes is its buffer.
    std::str::from_utf8(bytes).expect("input was a &str")
}

/// Parses one number following the RFC 8259 grammar exactly:
/// `-? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?` — leading
/// zeros, a leading `+`, and a bare trailing `.`/exponent are rejected.
fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    let fail = |at: usize| Error(format!("invalid number at byte {at}"));
    let digits = |pos: &mut usize| -> usize {
        let from = *pos;
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
        *pos - from
    };

    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: a single 0, or a nonzero digit followed by more digits.
    match bytes.get(*pos) {
        Some(b'0') => {
            *pos += 1;
            if matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                return Err(fail(start)); // leading zero
            }
        }
        Some(b'1'..=b'9') => {
            digits(pos);
        }
        _ => return Err(fail(start)),
    }
    let mut is_float = false;
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if digits(pos) == 0 {
            return Err(fail(start)); // bare trailing '.'
        }
        is_float = true;
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if digits(pos) == 0 {
            return Err(fail(start)); // empty exponent
        }
        is_float = true;
    }

    let token = std::str::from_utf8(&bytes[start..*pos]).unwrap();
    if !is_float {
        if let Ok(u) = token.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = token.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    token
        .parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error(format!("invalid number '{token}'")))
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * level));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    #[test]
    fn pretty_prints_nested_object() {
        #[derive(serde::Serialize)]
        struct Row {
            name: String,
            gflops: f64,
            threads: usize,
            note: Option<String>,
        }
        let row = Row {
            name: "pb".into(),
            gflops: 2.0,
            threads: 8,
            note: None,
        };
        let text = super::to_string_pretty(&row).unwrap();
        assert_eq!(
            text,
            "{\n  \"name\": \"pb\",\n  \"gflops\": 2.0,\n  \"threads\": 8,\n  \"note\": null\n}"
        );
    }

    #[test]
    fn compact_array_and_escaping() {
        let v = vec!["a\"b".to_string(), "c\nd".to_string()];
        assert_eq!(super::to_string(&v).unwrap(), "[\"a\\\"b\",\"c\\nd\"]");
    }

    use serde::Value;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(super::from_str("null").unwrap(), Value::Null);
        assert_eq!(super::from_str(" true ").unwrap(), Value::Bool(true));
        assert_eq!(super::from_str("42").unwrap(), Value::UInt(42));
        assert_eq!(super::from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(super::from_str("2.5e1").unwrap(), Value::Float(25.0));
        assert_eq!(
            super::from_str("\"a\\n\\u0041\"").unwrap(),
            Value::Str("a\nA".into())
        );
        let v = super::from_str("{\"xs\": [1, 2.0, \"three\"], \"ok\": false}").unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let xs = v.get("xs").and_then(Value::as_array).unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].as_f64(), Some(2.0));
        assert_eq!(xs[2].as_str(), Some("three"));
    }

    #[test]
    fn round_trips_what_the_emitter_writes() {
        #[derive(serde::Serialize)]
        struct Doc {
            name: String,
            values: Vec<f64>,
            count: usize,
            missing: Option<u32>,
            nested: Vec<Vec<u64>>,
        }
        let doc = Doc {
            name: "pb \"bench\"\n".into(),
            values: vec![1.5, -0.25, 3.0],
            count: 9,
            missing: None,
            nested: vec![vec![1, 2], vec![]],
        };
        for text in [
            super::to_string(&doc).unwrap(),
            super::to_string_pretty(&doc).unwrap(),
        ] {
            let v = super::from_str(&text).unwrap();
            assert_eq!(
                v.get("name").and_then(Value::as_str),
                Some("pb \"bench\"\n")
            );
            assert_eq!(v.get("count").and_then(Value::as_u64), Some(9));
            assert!(v.get("missing").unwrap().is_null());
            let vals = v.get("values").and_then(Value::as_array).unwrap();
            assert_eq!(vals[1].as_f64(), Some(-0.25));
            let nested = v.get("nested").and_then(Value::as_array).unwrap();
            assert_eq!(nested[0].as_array().unwrap().len(), 2);
            assert_eq!(nested[1].as_array().unwrap().len(), 0);
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "nul",
            "01x",
            "\"unterminated",
            "[1] trailing",
            "-",
            // RFC 8259 number grammar violations.
            "01",
            "-01",
            "+5",
            "1.",
            ".5",
            "1e",
            "1e+",
        ] {
            assert!(super::from_str(bad).is_err(), "accepted {bad:?}");
        }
        // The boundary cases the grammar must still admit.
        for good in ["0", "-0", "0.5", "10", "1e2", "1E-2", "-0.25e+3"] {
            assert!(super::from_str(good).is_ok(), "rejected {good:?}");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // Within the limit: fine.
        let ok = "[".repeat(100) + &"]".repeat(100);
        assert!(super::from_str(&ok).is_ok());
        // Far past it: a clean Err, not a stack overflow.
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        let err = super::from_str(&deep).unwrap_err();
        assert!(err.to_string().contains("recursion limit"));
    }
}
