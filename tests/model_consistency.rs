//! Integration tests tying the measured PB-SpGEMM behaviour back to the
//! paper's performance model: profiles, bin geometry, the Roofline bounds
//! and the analytic access-pattern claims.

use pb_spgemm_suite::gen::{erdos_renyi_square, rmat_square};
use pb_spgemm_suite::model::access::{traffic_estimates, AlgorithmClass};
use pb_spgemm_suite::model::roofline::RooflineModel;
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::spgemm::{BinnedTuples, Phase};

/// Engine-backed stand-in for the retired `pb_spgemm::multiply_with_profile`.
fn multiply_with_profile<S: Semiring>(
    a: &Csc<S::Elem>,
    b: &Csr<S::Elem>,
    cfg: &PbConfig,
) -> (Csr<S::Elem>, pb_spgemm_suite::spgemm::SpGemmProfile)
where
    S::Elem: Default,
{
    SpGemm::pb()
        .config(cfg.clone())
        .multiply_csc_with_profile::<S>(a, b)
}

#[test]
fn profile_flop_and_nnz_match_the_statistics_module() {
    let a = erdos_renyi_square(10, 8, 1);
    let stats = MultiplyStats::compute(&a, &a);
    let (c, profile) =
        multiply_with_profile::<PlusTimes<f64>>(&a.to_csc(), &a, &PbConfig::default());
    assert_eq!(profile.flop, stats.flop);
    assert_eq!(profile.nnz_c, stats.nnz_c);
    assert_eq!(c.nnz(), stats.nnz_c);
    assert!((profile.cf() - stats.cf).abs() < 1e-12);
}

#[test]
fn auto_bin_count_keeps_bins_within_l2() {
    // The paper's rule: nbins = flop * tuple_bytes / L2, so the average bin
    // is at most one L2 in size.
    let a = erdos_renyi_square(12, 16, 2);
    let l2 = 256 * 1024;
    let cfg = PbConfig::default().with_l2_bytes(l2);
    let (_, profile) = multiply_with_profile::<PlusTimes<f64>>(&a.to_csc(), &a, &cfg);
    let avg_bin_bytes =
        profile.flop as f64 * BinnedTuples::<f64>::tuple_bytes() as f64 / profile.nbins as f64;
    assert!(
        avg_bin_bytes <= l2 as f64 * 1.01,
        "average bin ({avg_bin_bytes} bytes) exceeds the configured L2 ({l2} bytes)"
    );
}

#[test]
fn key_compression_uses_fewer_than_eight_bytes() {
    // The paper's Sec. III-D example: ~1M rows, 1K bins, 1M columns -> 4-byte
    // keys.  At our scale the packed key must always be at most 4 bytes with
    // range mapping and a reasonable bin count.
    let a = erdos_renyi_square(13, 8, 3);
    let cfg = PbConfig::default().with_nbins(1024);
    let (_, profile) = multiply_with_profile::<PlusTimes<f64>>(&a.to_csc(), &a, &cfg);
    assert!(
        profile.key_bytes <= 4,
        "expected <=4 key bytes, got {}",
        profile.key_bytes
    );
}

#[test]
fn measured_ai_never_exceeds_the_upper_bound() {
    // AI computed from the modelled traffic of the actual run must respect
    // Eq. 1 (cf / b) and stay at or above Eq. 4 within measurement slack.
    for a in [erdos_renyi_square(11, 8, 4), rmat_square(11, 8, 5)] {
        let (_, profile) =
            multiply_with_profile::<PlusTimes<f64>>(&a.to_csc(), &a, &PbConfig::default());
        let model = RooflineModel::new(50.0);
        let cf = profile.cf();
        let total_bytes: u64 = [Phase::Expand, Phase::Sort, Phase::Compress]
            .iter()
            .map(|&p| profile.phase_bytes(p))
            .sum();
        let ai = profile.flop as f64 / total_bytes as f64;
        assert!(
            ai <= model.ai_upper_bound(cf) * 1.001,
            "AI {ai} exceeds Eq. 1"
        );
        assert!(
            ai >= model.ai_outer_lower_bound(cf) * 0.9,
            "AI {ai} fell below the Eq. 4 lower bound {}",
            model.ai_outer_lower_bound(cf)
        );
    }
}

#[test]
fn outer_product_traffic_estimate_matches_profile_bytes() {
    let a = erdos_renyi_square(11, 4, 6);
    let stats = MultiplyStats::compute(&a, &a);
    let (_, profile) =
        multiply_with_profile::<PlusTimes<f64>>(&a.to_csc(), &a, &PbConfig::default());
    let est = traffic_estimates(&stats);
    let outer = est
        .iter()
        .find(|e| e.class == AlgorithmClass::OuterEsc)
        .unwrap();
    let profile_bytes: u64 = [Phase::Expand, Phase::Sort, Phase::Compress]
        .iter()
        .map(|&p| profile.phase_bytes(p))
        .sum();
    // Both models count b*(nnzA + nnzB) + 2*t*flop + t*nnzC; with 16-byte
    // tuples they coincide exactly, so allow only small slack.
    let ratio = profile_bytes as f64 / outer.bytes as f64;
    assert!(
        (0.95..=1.05).contains(&ratio),
        "traffic models diverge: ratio {ratio}"
    );
}

#[test]
fn phase_times_and_bandwidths_are_positive_and_bounded() {
    let a = rmat_square(11, 8, 7);
    let (_, profile) =
        multiply_with_profile::<PlusTimes<f64>>(&a.to_csc(), &a, &PbConfig::default());
    for phase in [Phase::Expand, Phase::Sort, Phase::Compress, Phase::Assemble] {
        assert!(
            profile.phase_time(phase).as_nanos() > 0,
            "{} took zero time",
            phase.name()
        );
        let bw = profile.phase_bandwidth_gbps(phase);
        assert!(
            bw > 0.0 && bw < 10_000.0,
            "{} bandwidth {bw} looks wrong",
            phase.name()
        );
    }
    assert!(profile.gflops() > 0.0);
    assert!(profile.overall_bandwidth_gbps() > 0.0);
}

#[test]
fn roofline_prediction_brackets_measured_performance_order_of_magnitude() {
    // We cannot assert absolute GFLOPS on arbitrary CI hardware, but the
    // measured performance must be positive and below the Eq. 1 peak
    // computed with a generously high bandwidth assumption.
    let a = erdos_renyi_square(12, 8, 8);
    let (_, profile) =
        multiply_with_profile::<PlusTimes<f64>>(&a.to_csc(), &a, &PbConfig::default());
    let generous = RooflineModel::new(2000.0); // 2 TB/s: above any CPU
    assert!(profile.gflops() < generous.peak_gflops(profile.cf()));
}
