//! Plain-text table rendering and optional JSON dumps for the figure
//! binaries.

use std::fs;
use std::path::{Path, PathBuf};

use serde::Serialize;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (printed above the header).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` entries).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table as a string with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Prints a table to stdout.
pub fn print_table(table: &Table) {
    println!("{}", table.render());
}

/// Writes `data` as pretty JSON into `$PB_BENCH_JSON/<name>.json` if the
/// `PB_BENCH_JSON` environment variable is set; returns the path written.
pub fn write_json<T: Serialize>(name: &str, data: &T) -> Option<PathBuf> {
    let dir = std::env::var("PB_BENCH_JSON").ok()?;
    let dir = Path::new(&dir);
    fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{name}.json"));
    let text = serde_json::to_string_pretty(data).ok()?;
    fs::write(&path, text).ok()?;
    Some(path)
}

/// Formats a float with the given number of decimals (helper for the
/// binaries).
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["short".into(), "1".into()]);
        t.push_row(vec!["a much longer name".into(), "2.5".into()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("a much longer name"));
        // Header columns are padded to the widest cell.
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].starts_with("name"));
        assert!(lines[1].len() >= "a much longer name".len());
    }

    #[test]
    fn json_dump_respects_env_var() {
        let dir = std::env::temp_dir().join("pb_bench_json_test");
        std::env::set_var("PB_BENCH_JSON", &dir);
        let path = write_json("unit_test", &vec![1, 2, 3]).expect("json written");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains('2'));
        std::env::remove_var("PB_BENCH_JSON");
        std::fs::remove_dir_all(&dir).ok();
        assert!(write_json("unit_test", &vec![1]).is_none());
    }

    #[test]
    fn fmt_rounds() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }
}
