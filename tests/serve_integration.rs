//! End-to-end exercises of the resident service: an in-process server,
//! real TCP clients, concurrent traffic, the batching guarantee, and the
//! steady-state zero-allocation property.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use pb_spgemm_suite::serve::{ServeConfig, Server};
use pb_spgemm_suite::spgemm::Algorithm;

/// A tiny line-oriented protocol client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to in-process server");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn call(&mut self, request: &str) -> serde::Value {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("send request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        serde_json::from_str(&line).expect("response is valid JSON")
    }

    /// Sends without reading; responses are collected later (used to queue
    /// a burst the dispatcher can batch).
    fn send(&mut self, request: &str) {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("send request");
    }

    fn recv(&mut self) -> serde::Value {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        serde_json::from_str(&line).expect("response is valid JSON")
    }
}

fn ok(v: &serde::Value) -> bool {
    v.get("ok").and_then(serde::Value::as_bool) == Some(true)
}

fn u(v: &serde::Value, key: &str) -> u64 {
    v.get(key)
        .and_then(serde::Value::as_u64)
        .unwrap_or_else(|| panic!("missing integer `{key}` in {v:?}"))
}

fn start_server() -> Server {
    Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .budget_bytes(64 << 20),
    )
    .expect("bind in-process server")
}

#[test]
fn ping_store_multiply_and_evict_round_trip() {
    let server = start_server();
    let mut c = Client::connect(server.addr());

    let pong = c.call(r#"{"op":"ping"}"#);
    assert!(ok(&pong));
    assert_eq!(pong.get("op").and_then(serde::Value::as_str), Some("pong"));

    // Store I2 and a 2x2, multiply, check the product comes back exactly.
    let r = c.call(
        r#"{"op":"store","name":"a","rows":2,"cols":2,"entries":[[0,0,1.0],[0,1,2.0],[1,1,3.0]]}"#,
    );
    assert!(ok(&r), "{r:?}");
    assert_eq!(u(&r, "nnz"), 3);
    let r =
        c.call(r#"{"op":"store","name":"i","rows":2,"cols":2,"entries":[[0,0,1.0],[1,1,1.0]]}"#);
    assert!(ok(&r));

    let product = c.call(r#"{"op":"multiply","a":"a","b":"i","return":"entries"}"#);
    assert!(ok(&product), "{product:?}");
    assert_eq!(u(&product, "nnz"), 3);
    assert_eq!(u(&product, "rows"), 2);
    let entries = product
        .get("entries")
        .and_then(serde::Value::as_array)
        .expect("entries returned");
    let triples: Vec<(u64, u64, f64)> = entries
        .iter()
        .map(|e| {
            let t = e.as_array().unwrap();
            (
                t[0].as_u64().unwrap(),
                t[1].as_u64().unwrap(),
                t[2].as_f64().unwrap(),
            )
        })
        .collect();
    assert_eq!(triples, vec![(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);

    // list sees both operands; evict removes one.
    let listing = c.call(r#"{"op":"list"}"#);
    assert_eq!(
        listing
            .get("entries")
            .and_then(serde::Value::as_array)
            .unwrap()
            .len(),
        2
    );
    let e = c.call(r#"{"op":"evict","name":"i"}"#);
    assert_eq!(e.get("evicted").and_then(serde::Value::as_bool), Some(true));
    let gone = c.call(r#"{"op":"multiply","a":"a","b":"i"}"#);
    assert!(!ok(&gone));
    assert!(gone
        .get("error")
        .and_then(serde::Value::as_str)
        .unwrap()
        .contains("no matrix named"));

    server.join();
}

#[test]
fn protocol_errors_are_answered_not_fatal() {
    let server = start_server();
    let mut c = Client::connect(server.addr());

    let bad = c.call("this is not json");
    assert!(!ok(&bad));
    let unknown = c.call(r#"{"op":"teleport"}"#);
    assert!(!ok(&unknown));
    // The connection survives both.
    assert!(ok(&c.call(r#"{"op":"ping"}"#)));

    server.join();
}

#[test]
fn concurrent_clients_store_multiply_mcl_and_evict() {
    let server = start_server();
    let addr = server.addr();

    // Seed a shared graph.
    let mut seed = Client::connect(addr);
    let r =
        seed.call(r#"{"op":"gen","name":"g","kind":"rmat","scale":6,"edge_factor":4,"seed":7}"#);
    assert!(ok(&r), "{r:?}");

    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for i in 0..3 {
                    // Private per-thread matrix churn plus shared-graph ops.
                    let name = format!("t{t}x{i}");
                    let r = c.call(&format!(
                        r#"{{"op":"gen","name":"{name}","kind":"er","scale":5,"edge_factor":4,"seed":{}}}"#,
                        t * 100 + i
                    ));
                    assert!(ok(&r), "{r:?}");
                    let r = c.call(&format!(r#"{{"op":"multiply","a":"{name}","b":"{name}"}}"#));
                    assert!(ok(&r), "{r:?}");
                    let r = c.call(r#"{"op":"multiply","a":"g","b":"g"}"#);
                    assert!(ok(&r), "{r:?}");
                    let r = c.call(&format!(r#"{{"op":"evict","name":"{name}"}}"#));
                    assert!(ok(&r));
                }
                let r = c.call(r#"{"op":"mcl","name":"g","max_iterations":8}"#);
                assert!(ok(&r), "{r:?}");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    // Telemetry shows real traffic flowed.
    let metrics = seed.call(r#"{"op":"metrics"}"#);
    let text = metrics
        .get("text")
        .and_then(serde::Value::as_str)
        .expect("metrics text");
    assert!(text.contains("pb_serve_requests_total"));
    assert!(text.contains("pb_workspace_leases_total"));
    assert!(text.contains("pb_serve_errors_total 0"), "{text}");

    server.join();
}

#[test]
fn batched_multiplies_are_bit_identical_to_unbatched() {
    let server = start_server();
    let addr = server.addr();
    let mut c = Client::connect(addr);
    assert!(ok(&c.call(
        r#"{"op":"gen","name":"m","kind":"rmat","scale":7,"edge_factor":8,"seed":3}"#
    )));

    // Unbatched reference fingerprint.
    let alone = c.call(r#"{"op":"multiply","a":"m","b":"m"}"#);
    assert!(ok(&alone), "{alone:?}");
    let reference_print = u(&alone, "fingerprint");

    // Queue a burst from independent connections, then read every reply:
    // the dispatcher coalesces whatever is queued together, and each reply
    // must carry the identical product fingerprint, batched or not.
    let mut burst: Vec<Client> = (0..8).map(|_| Client::connect(addr)).collect();
    for b in burst.iter_mut() {
        b.send(r#"{"op":"multiply","a":"m","b":"m"}"#);
    }
    let mut max_batch = 0;
    for b in burst.iter_mut() {
        let r = b.recv();
        assert!(ok(&r), "{r:?}");
        assert_eq!(
            u(&r, "fingerprint"),
            reference_print,
            "bit-identical product"
        );
        max_batch = max_batch.max(u(&r, "batched_with"));
    }
    // With 8 queued requests and 2 workers, at least one execution answered
    // more than one request.
    assert!(
        max_batch >= 2,
        "no batch formed across the burst (max batched_with = {max_batch})"
    );

    server.join();
}

#[test]
fn steady_state_batches_allocate_nothing() {
    let server = start_server();
    let addr = server.addr();
    let mut c = Client::connect(addr);
    assert!(ok(&c.call(
        r#"{"op":"gen","name":"s","kind":"er","scale":7,"edge_factor":8,"seed":11}"#
    )));

    // Warm the entry's workspace past its high-water mark (forcing PB: the
    // planner may legitimately route a small product to a baseline kernel,
    // and only the PB path exercises the workspace).
    for _ in 0..3 {
        let r = c.call(r#"{"op":"multiply","a":"s","b":"s","algorithm":"pb"}"#);
        assert!(ok(&r));
    }
    // Steady state: same-shape products draw everything from the workspace.
    for _ in 0..3 {
        let r = c.call(r#"{"op":"multiply","a":"s","b":"s","algorithm":"pb"}"#);
        assert!(ok(&r));
        assert_eq!(
            u(&r, "bytes_allocated"),
            0,
            "steady-state multiply allocated: {r:?}"
        );
        assert!(u(&r, "bytes_reused") > 0);
    }

    server.join();
}

#[test]
fn per_request_algorithm_override_and_shutdown_op() {
    let server = start_server();
    let addr = server.addr();
    let mut c = Client::connect(addr);
    assert!(ok(&c.call(
        r#"{"op":"gen","name":"q","kind":"er","scale":5,"edge_factor":4,"seed":2}"#
    )));

    // The same product under the planner, PB, a baseline and the reference
    // oracle must agree bit-for-bit.
    let mut prints = Vec::new();
    for alg in ["auto", "pb", "hash", "reference"] {
        let r = c.call(&format!(
            r#"{{"op":"multiply","a":"q","b":"q","algorithm":"{alg}"}}"#
        ));
        assert!(ok(&r), "{alg}: {r:?}");
        assert_eq!(
            r.get("algorithm").and_then(serde::Value::as_str),
            Some(Algorithm::parse(alg).unwrap().name())
        );
        prints.push(u(&r, "fingerprint"));
    }
    assert!(
        prints.windows(2).all(|w| w[0] == w[1]),
        "engines disagree: {prints:?}"
    );

    // shutdown answers, then the server exits on its own.
    let bye = c.call(r#"{"op":"shutdown"}"#);
    assert!(ok(&bye));
    server.join();
}

#[test]
fn non_square_graph_ops_error_instead_of_killing_workers() {
    let server = start_server();
    let mut c = Client::connect(server.addr());
    // A perfectly storable rectangular matrix...
    let r =
        c.call(r#"{"op":"store","name":"rect","rows":2,"cols":3,"entries":[[0,0,1.0],[1,2,2.0]]}"#);
    assert!(ok(&r), "{r:?}");
    // ...must be *rejected* by the square-only graph kernels, not crash
    // them.  Repeat past the worker count: a panicking handler would kill
    // a worker each time and the later calls would hang forever.
    for op in [
        r#"{"op":"mcl","name":"rect"}"#,
        r#"{"op":"bc","name":"rect"}"#,
        r#"{"op":"apsp","name":"rect"}"#,
        r#"{"op":"mcl","name":"rect","inflation":1.5}"#,
    ] {
        let r = c.call(op);
        assert!(!ok(&r), "{op} accepted a non-square matrix: {r:?}");
        assert!(
            r.get("error")
                .and_then(serde::Value::as_str)
                .unwrap()
                .contains("square"),
            "{r:?}"
        );
    }
    // Every worker is still alive and serving.
    assert!(ok(&c.call(r#"{"op":"ping"}"#)));
    let r = c.call(r#"{"op":"multiply","a":"rect","b":"rect"}"#);
    assert!(!ok(&r), "2x3 times 2x3 is a dimension mismatch");
    server.join();
}

#[test]
fn correlation_ids_are_echoed_on_success_and_error() {
    let server = start_server();
    let mut c = Client::connect(server.addr());
    let r = c.call(r#"{"op":"ping","id":42}"#);
    assert!(ok(&r));
    assert_eq!(u(&r, "id"), 42);
    let r = c.call(r#"{"op":"mcl","name":"nope","id":"req-7"}"#);
    assert!(!ok(&r));
    assert_eq!(
        r.get("id").and_then(serde::Value::as_str),
        Some("req-7"),
        "error responses correlate too: {r:?}"
    );
    // Bad op but valid JSON: the id still comes back.
    let r = c.call(r#"{"op":"fly","id":3}"#);
    assert!(!ok(&r));
    assert_eq!(u(&r, "id"), 3);
    server.join();
}

#[test]
fn oversized_lines_are_answered_and_disconnected() {
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(1)
            .budget_bytes(64 << 20)
            .max_line_bytes(1024),
    )
    .expect("bind in-process server");
    let mut c = Client::connect(server.addr());
    // Stream well past the limit without ever sending a newline.
    let blob = vec![b'x'; 8 * 1024];
    c.writer.write_all(&blob).expect("send oversized line");
    let mut line = String::new();
    c.reader.read_line(&mut line).expect("read error response");
    let r: serde::Value = serde_json::from_str(&line).expect("error response is JSON");
    assert!(!ok(&r), "{r:?}");
    assert!(r
        .get("error")
        .and_then(serde::Value::as_str)
        .unwrap()
        .contains("byte limit"));
    // The connection is closed afterwards: EOF or reset (the server drops
    // the socket with our unread bytes still pending), never a hang.
    line.clear();
    match c.reader.read_line(&mut line) {
        Ok(n) => assert_eq!(n, 0, "connection should be closed, got {line:?}"),
        Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset, "{e:?}"),
    }
    // The server itself keeps serving new connections.
    let mut c2 = Client::connect(server.addr());
    assert!(ok(&c2.call(r#"{"op":"ping"}"#)));
    server.join();
}

#[test]
fn load_op_is_gated_contained_and_budgeted() {
    // Disabled by default: a server without an allowlisted directory never
    // touches the filesystem on client request.
    let server = start_server();
    let mut c = Client::connect(server.addr());
    let r = c.call(r#"{"op":"load","name":"m","path":"m.pbsm"}"#);
    assert!(!ok(&r));
    assert!(r
        .get("error")
        .and_then(serde::Value::as_str)
        .unwrap()
        .contains("disabled"));
    server.join();

    // Allowlisted directory: a saved matrix loads and multiplies, while a
    // path pointing at an existing file *outside* the directory is refused.
    let dir = std::env::temp_dir().join("pb_serve_load_test");
    std::fs::create_dir_all(&dir).unwrap();
    let m = pb_spgemm_suite::gen::erdos_renyi_square(6, 4, 9);
    pb_spgemm_suite::gen::save_matrix(dir.join("m.pbsm"), &m).expect("save matrix");
    std::fs::write(dir.join("../pb_serve_load_outside.mtx"), b"not reachable").unwrap();
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .budget_bytes(64 << 20)
            .load_dir(Some(dir.clone())),
    )
    .expect("bind in-process server");
    let mut c = Client::connect(server.addr());
    let r = c.call(r#"{"op":"load","name":"m","path":"m.pbsm"}"#);
    assert!(ok(&r), "{r:?}");
    assert_eq!(u(&r, "nnz"), m.nnz() as u64);
    assert_eq!(u(&r, "rows"), m.nrows() as u64);
    let r = c.call(r#"{"op":"multiply","a":"m","b":"m"}"#);
    assert!(ok(&r), "loaded matrix multiplies: {r:?}");
    let r = c.call(r#"{"op":"load","name":"x","path":"../pb_serve_load_outside.mtx"}"#);
    assert!(!ok(&r));
    assert!(
        r.get("error")
            .and_then(serde::Value::as_str)
            .unwrap()
            .contains("escapes the load directory"),
        "{r:?}"
    );
    let r = c.call(r#"{"op":"load","name":"x","path":"missing.pbsm"}"#);
    assert!(!ok(&r), "nonexistent files are a typed error: {r:?}");
    server.join();

    // A tiny catalog budget rejects the load on the up-front size estimate,
    // before any allocation happens.
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(1)
            .budget_bytes(1 << 10)
            .load_dir(Some(dir)),
    )
    .expect("bind in-process server");
    let mut c = Client::connect(server.addr());
    let r = c.call(r#"{"op":"load","name":"m","path":"m.pbsm"}"#);
    assert!(!ok(&r));
    assert!(
        r.get("error")
            .and_then(serde::Value::as_str)
            .unwrap()
            .contains("catalog budget"),
        "{r:?}"
    );
    server.join();
}

#[test]
fn ooc_multiply_spills_reports_and_shows_in_metrics() {
    let server = start_server();
    let mut c = Client::connect(server.addr());
    assert!(ok(&c.call(
        r#"{"op":"gen","name":"o","kind":"er","scale":11,"edge_factor":16,"seed":5}"#
    )));
    let resident = c.call(r#"{"op":"multiply","a":"o","b":"o"}"#);
    assert!(ok(&resident), "{resident:?}");

    // The same product out-of-core under a 1 MiB budget: the derived grid
    // tiles the operands, the product spills to scratch, and the response
    // carries the OOC report alongside the usual fields.
    let tiled = c.call(r#"{"op":"multiply","a":"o","b":"o","ooc_budget_mb":1}"#);
    assert!(ok(&tiled), "{tiled:?}");
    assert_eq!(u(&tiled, "nnz"), u(&resident, "nnz"));
    assert_eq!(u(&tiled, "rows"), u(&resident, "rows"));
    assert!(u(&tiled, "ooc_tiles") >= 8, "{tiled:?}");
    assert!(u(&tiled, "ooc_spill_bytes") > 0, "{tiled:?}");
    assert!(u(&tiled, "ooc_resident_high_water") > 0, "{tiled:?}");
    assert!(tiled
        .get("ooc_grid")
        .and_then(serde::Value::as_str)
        .unwrap()
        .contains('x'));
    // OOC multiplies are never coalesced with other requests.
    assert_eq!(u(&tiled, "batched_with"), 1);

    let metrics = c.call(r#"{"op":"metrics"}"#);
    let text = metrics
        .get("text")
        .and_then(serde::Value::as_str)
        .expect("metrics text");
    assert!(text.contains("pb_ooc_multiplies_total 1"), "{text}");
    assert!(!text.contains("pb_ooc_spill_bytes_total 0"), "{text}");
    assert!(text.contains("pb_ooc_resident_high_water_bytes"), "{text}");
    assert!(text.contains("pb_serve_resident_bytes_combined"), "{text}");

    server.join();
}

#[test]
fn gen_limits_are_enforced_before_generation() {
    let server = start_server();
    let mut c = Client::connect(server.addr());
    let r = c.call(r#"{"op":"gen","name":"g","kind":"rmat","scale":25}"#);
    assert!(!ok(&r));
    let r = c.call(r#"{"op":"gen","name":"g","kind":"rmat","scale":10,"edge_factor":4000000000}"#);
    assert!(!ok(&r));
    assert!(r
        .get("error")
        .and_then(serde::Value::as_str)
        .unwrap()
        .contains("edge_factor"));
    // Within the caps but past the 64 MiB catalog budget: rejected by the
    // up-front estimate (instantly — generation never starts).
    let r = c.call(r#"{"op":"gen","name":"g","kind":"er","scale":20,"edge_factor":64}"#);
    assert!(!ok(&r));
    assert!(r
        .get("error")
        .and_then(serde::Value::as_str)
        .unwrap()
        .contains("catalog budget"));
    // A sane request still lands.
    assert!(ok(&c.call(
        r#"{"op":"gen","name":"g","kind":"er","scale":6,"edge_factor":4}"#
    )));
    server.join();
}
