//! Machine-readable performance baseline (`BENCH_pb.json`).
//!
//! The `bench_pb` binary sweeps PB-SpGEMM over thread counts on the
//! quickstart-scale R-MAT workload and writes one self-describing JSON
//! document.  Future PRs regenerate the file on comparable hardware and
//! diff the numbers, so the suite has a perf trajectory instead of
//! anecdotes.  Every record carries both the *requested* and the
//! *effective* thread count plus the host's core count, so a sweep taken on
//! a small container is never mistaken for one from a many-core box.

use serde::Serialize;

use crate::runner::{measure, measure_pb_profile, Algorithm};
use crate::workloads::rmat_matrix;
use pb_spgemm::PbConfig;

/// Per-phase wall-clock seconds of one PB-SpGEMM run.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseSeconds {
    /// Symbolic (flop counting + bin sizing) phase.
    pub symbolic: f64,
    /// Expand (outer products into bins) phase.
    pub expand: f64,
    /// Sort (per-bin radix sort) phase.
    pub sort: f64,
    /// Compress (duplicate merge) phase.
    pub compress: f64,
    /// Assemble (CSR write-out) phase.
    pub assemble: f64,
}

/// One point of the thread sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Thread count requested for this point.
    pub threads_requested: usize,
    /// Thread count that actually executed (dedicated pool size).
    pub threads_effective: usize,
    /// Best wall-clock seconds over the repetitions.
    pub seconds: f64,
    /// Achieved GFLOPS at the best run.
    pub gflops: f64,
    /// Speedup of this point relative to the 1-thread point.
    pub speedup_vs_1t: f64,
    /// Per-phase seconds of one profiled run at this thread count.
    pub phases: PhaseSeconds,
}

/// The whole baseline document.
#[derive(Debug, Clone, Serialize)]
pub struct PbBaseline {
    /// Schema tag for forward compatibility.
    pub schema: &'static str,
    /// Operation measured.
    pub op: &'static str,
    /// Workload description.
    pub workload: String,
    /// Matrix dimension (rows == cols).
    pub n: usize,
    /// Stored nonzeros of the input.
    pub nnz: usize,
    /// flop of the squaring.
    pub flop: u64,
    /// Nonzeros of the product.
    pub nnz_c: usize,
    /// Compression factor `flop / nnz_c`.
    pub cf: f64,
    /// Physical cores the host reported at run time.
    pub host_cores: usize,
    /// Size of the global pool at run time (PB_RAYON_THREADS or cores).
    pub pool_default_threads: usize,
    /// The sweep, ascending in requested threads.
    pub sweep: Vec<SweepPoint>,
    /// Max speedup over the 1-thread point anywhere in the sweep.
    pub best_speedup: f64,
}

/// Thread counts to sweep: 1, 2, 4, ... up to `max`, always including
/// `max` itself.
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let mut threads = vec![1usize];
    let mut t = 2;
    while t <= max {
        threads.push(t);
        t *= 2;
    }
    if *threads.last().unwrap() != max {
        threads.push(max);
    }
    threads
}

/// Runs the baseline sweep: PB-SpGEMM squaring a quickstart-scale R-MAT
/// matrix (scale 12, edge factor 8 — the README example's size) at each
/// thread count.
pub fn run_pb_baseline(max_threads: usize, reps: usize) -> PbBaseline {
    let (scale, edge_factor, seed) = (12u32, 8u32, 42u64);
    let w = rmat_matrix(scale, edge_factor, seed);
    let algo = Algorithm::Pb(PbConfig::default());

    let mut sweep = Vec::new();
    let mut t1_seconds = f64::NAN;
    for &t in &thread_sweep(max_threads) {
        let m = measure(&w, &algo, reps, Some(t));
        let profile = {
            let cfg = PbConfig::default().with_threads(t);
            measure_pb_profile(&w, &cfg)
        };
        if t == 1 {
            t1_seconds = m.seconds;
        }
        let secs = |d: std::time::Duration| d.as_secs_f64();
        sweep.push(SweepPoint {
            threads_requested: t,
            threads_effective: m.threads_effective,
            seconds: m.seconds,
            gflops: m.mflops / 1e3,
            speedup_vs_1t: t1_seconds / m.seconds,
            phases: PhaseSeconds {
                symbolic: secs(profile.timings.symbolic),
                expand: secs(profile.timings.expand),
                sort: secs(profile.timings.sort),
                compress: secs(profile.timings.compress),
                assemble: secs(profile.timings.assemble),
            },
        });
    }
    let best_speedup = sweep
        .iter()
        .map(|p| p.speedup_vs_1t)
        .fold(f64::MIN, f64::max);

    PbBaseline {
        schema: "pb-bench-baseline/v1",
        op: "spgemm_square",
        workload: w.name.clone(),
        n: w.a.nrows(),
        nnz: w.a.nnz(),
        flop: w.stats.flop,
        nnz_c: w.stats.nnz_c,
        cf: w.stats.cf,
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        pool_default_threads: rayon::current_num_threads(),
        sweep,
        best_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_is_powers_of_two_plus_max() {
        assert_eq!(thread_sweep(1), vec![1]);
        assert_eq!(thread_sweep(4), vec![1, 2, 4]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_sweep(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn baseline_document_is_consistent_and_serializes() {
        // Tiny sweep to keep the test fast; correctness of the numbers is
        // covered by the runner's own tests.
        let doc = run_pb_baseline(2, 1);
        assert_eq!(doc.schema, "pb-bench-baseline/v1");
        assert_eq!(doc.sweep.len(), 2);
        assert_eq!(doc.sweep[0].threads_requested, 1);
        assert!((doc.sweep[0].speedup_vs_1t - 1.0).abs() < 1e-12);
        assert!(doc.sweep.iter().all(|p| p.seconds > 0.0 && p.gflops > 0.0));
        let json = serde_json::to_string_pretty(&doc).unwrap();
        assert!(json.contains("threads_effective"));
        assert!(json.contains("best_speedup"));
    }
}
