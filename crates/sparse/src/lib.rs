//! # pb-sparse — sparse-matrix substrate for the PB-SpGEMM reproduction
//!
//! This crate provides the sparse matrix data structures and utilities that
//! every other crate in the workspace builds on:
//!
//! * [`Csr`], [`Csc`] and [`Coo`] storage formats with conversions between
//!   them (the paper feeds `A` in CSC and `B` in CSR into the outer-product
//!   algorithm and produces `C` in CSR; the expanded matrix `Ĉ` is COO).
//! * [`Dense`] matrices and slow-but-obviously-correct reference SpGEMM
//!   implementations ([`reference`](mod@reference)) used as oracles by the test suites of
//!   the algorithm crates.
//! * [`Semiring`] abstractions so that the same multiplication kernels serve
//!   numerical SpGEMM (`+`/`×` over `f64`), graph kernels (boolean,
//!   min-plus) and counting kernels (triangle counting).
//! * Matrix Market I/O ([`io`]) for loading real matrices.
//! * Multiplication statistics ([`stats`]): `flop`, `nnz(C)` and the
//!   compression factor `cf = flop / nnz(C)` that drive the paper's Roofline
//!   model.
//!
//! Index type: all matrices use 32-bit column/row indices ([`Index`]) and
//! `usize` offset arrays, matching the paper's assumption of 4-byte indices
//! and 8-byte values (16 bytes per COO tuple).
//!
//! ```
//! use pb_sparse::{Coo, Csr, reference};
//!
//! // Build a small matrix from triplets and square it with the reference
//! // implementation.
//! let a = Coo::from_entries(4, 4, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap();
//! let a: Csr<f64> = a.to_csr();
//! let c = reference::multiply_csr(&a, &a);
//! assert_eq!(c.nnz(), 2); // paths of length two: (0,2) and (1,3)
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod binfmt;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod io;
pub mod mmapio;
pub mod ops;
pub mod permute;
pub mod reference;
pub mod semiring;
pub mod stats;
pub mod vector;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use dense::Dense;
pub use error::SparseError;
pub use semiring::{MaxTimes, MinPlus, OrAnd, PlusTimes, Semiring};
pub use stats::MultiplyStats;
pub use vector::SparseVec;

/// Row/column index type used throughout the workspace.
///
/// The paper assumes 4-byte indices when computing the bytes-per-nonzero
/// constant `b = 16` (two 4-byte indices + one 8-byte value), so we fix
/// indices to `u32`.  Matrices with more than `u32::MAX` rows or columns are
/// rejected at construction time.
pub type Index = u32;

/// Maximum supported dimension (rows or columns) of a sparse matrix.
pub const MAX_DIM: usize = u32::MAX as usize;

/// Scalar values storable in a sparse matrix.
///
/// This is intentionally minimal: algorithm crates put additional arithmetic
/// requirements on values through [`Semiring`] rather than through the
/// storage types, so matrices can hold any plain-old-data payload.
pub trait Scalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {}

impl<T> Scalar for T where T: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {}

/// Convenience prelude re-exporting the types needed by most downstream code.
pub mod prelude {
    pub use crate::coo::Coo;
    pub use crate::csc::Csc;
    pub use crate::csr::Csr;
    pub use crate::dense::Dense;
    pub use crate::error::SparseError;
    pub use crate::semiring::{MinPlus, OrAnd, PlusTimes, Semiring};
    pub use crate::stats::MultiplyStats;
    pub use crate::vector::SparseVec;
    pub use crate::{Index, Scalar};
}
