//! Markov clustering (MCL).
//!
//! MCL (van Dongen; HipMCL is reference \[9\] of the paper) alternates two
//! operations on a column-stochastic matrix until it reaches a fixed point:
//!
//! * **Expansion** — squaring the matrix (one SpGEMM per iteration), which
//!   spreads probability mass along longer random walks;
//! * **Inflation** — raising entries to a power `r > 1` and re-normalising
//!   columns, which sharpens the distribution towards attractors.
//!
//! Entries below a pruning threshold are dropped each iteration, keeping the
//! matrix sparse.  At convergence, vertices that end up sending their mass to
//! the same attractor rows form a cluster.  Expansion dominates the runtime,
//! which is why MCL is a flagship SpGEMM application.

use pb_sparse::{ops, Csr};

use pb_spgemm::SpGemm;

/// Configuration of the Markov clustering iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct MclConfig {
    /// Inflation exponent `r` (> 1 sharpens; the classic default is 2).
    pub inflation: f64,
    /// Entries below this value are dropped after every iteration.
    pub prune_threshold: f64,
    /// Convergence threshold on the largest entry-wise change.
    pub tolerance: f64,
    /// Hard cap on the number of expansion/inflation rounds.
    pub max_iterations: usize,
    /// SpGEMM engine used for the expansion step.
    pub engine: SpGemm,
    /// Weight added to the diagonal before normalisation (self loops make
    /// the iteration numerically robust; the classic choice is 1).
    pub self_loop_weight: f64,
}

impl Default for MclConfig {
    fn default() -> Self {
        MclConfig {
            inflation: 2.0,
            prune_threshold: 1e-5,
            tolerance: 1e-8,
            max_iterations: 60,
            engine: SpGemm::pb(),
            self_loop_weight: 1.0,
        }
    }
}

/// Result of a Markov clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct MclResult {
    /// Cluster id of every vertex (ids are contiguous from 0).
    pub clusters: Vec<usize>,
    /// Number of clusters found.
    pub num_clusters: usize,
    /// Number of expansion/inflation rounds performed.
    pub iterations: usize,
    /// Whether the iteration reached the tolerance before the cap.
    pub converged: bool,
}

/// Raises every stored value to the power `r` and re-normalises columns.
fn inflate(m: &Csr<f64>, r: f64) -> Csr<f64> {
    let powered = m.map_values(|v| v.abs().powf(r));
    ops::column_stochastic(&powered)
}

/// Runs Markov clustering on the graph whose (symmetric or not, weighted or
/// not) adjacency matrix is `adjacency`.
///
/// Thin wrapper over the [`crate::Mcl`] builder, kept for source
/// compatibility; new code should prefer
/// `Mcl::new().engine(e).inflation(r).run(&m)`.
pub fn markov_cluster(adjacency: &Csr<f64>, config: &MclConfig) -> MclResult {
    crate::Mcl::from_config(config.clone()).run(adjacency)
}

pub(crate) fn markov_cluster_impl(adjacency: &Csr<f64>, config: &MclConfig) -> MclResult {
    assert_eq!(
        adjacency.nrows(),
        adjacency.ncols(),
        "MCL needs a square adjacency matrix"
    );
    let n = adjacency.nrows();
    if n == 0 {
        return MclResult {
            clusters: Vec::new(),
            num_clusters: 0,
            iterations: 0,
            converged: true,
        };
    }

    // Symmetrise, add self loops, normalise columns.
    let sym = ops::add(
        &adjacency.map_values(|v| v.abs()),
        &adjacency.map_values(|v| v.abs()).transpose(),
    );
    let with_loops = ops::add(
        &ops::remove_diagonal(&sym),
        &Csr::<f64>::identity(n).map_values(|_| config.self_loop_weight),
    );
    let mut m = ops::column_stochastic(&with_loops);

    // One persistent workspace for the whole iteration: every expansion
    // multiplies matrices of the same n×n shape, so after the flop's
    // high-water mark is reached the SpGEMM engine re-uses its expand
    // buffer and NUMA-slabbed sort scratch instead of re-allocating them
    // each round (a PB engine that already carries a workspace keeps it).
    let engine = config.engine.clone().with_iteration_workspace();

    let mut iterations = 0usize;
    let mut converged = false;
    while iterations < config.max_iterations {
        // Expansion: M ← M·M (one SpGEMM).
        let expanded = engine.multiply(&m, &m);
        // Inflation + pruning + re-normalisation.
        let inflated = inflate(&expanded, config.inflation);
        let pruned = inflated.prune(|_, _, v| v >= config.prune_threshold);
        let next = ops::column_stochastic(&pruned);

        iterations += 1;
        let delta = max_entry_difference(&m, &next);
        m = next;
        if delta < config.tolerance {
            converged = true;
            break;
        }
    }

    let (clusters, num_clusters) = extract_clusters(&m);
    MclResult {
        clusters,
        num_clusters,
        iterations,
        converged,
    }
}

/// Largest absolute difference between entries of two matrices with possibly
/// different sparsity patterns.
fn max_entry_difference(a: &Csr<f64>, b: &Csr<f64>) -> f64 {
    let mut delta = 0.0f64;
    for i in 0..a.nrows() {
        let (ac, av) = a.row(i);
        let (bc, bv) = b.row(i);
        let (mut p, mut q) = (0usize, 0usize);
        while p < ac.len() || q < bc.len() {
            match (ac.get(p), bc.get(q)) {
                (Some(&ca), Some(&cb)) if ca == cb => {
                    delta = delta.max((av[p] - bv[q]).abs());
                    p += 1;
                    q += 1;
                }
                (Some(&ca), Some(&cb)) if ca < cb => {
                    delta = delta.max(av[p].abs());
                    p += 1;
                }
                (Some(_), Some(_)) => {
                    delta = delta.max(bv[q].abs());
                    q += 1;
                }
                (Some(_), None) => {
                    delta = delta.max(av[p].abs());
                    p += 1;
                }
                (None, Some(_)) => {
                    delta = delta.max(bv[q].abs());
                    q += 1;
                }
                (None, None) => break,
            }
        }
    }
    delta
}

/// Interprets the converged matrix: column `j` is attracted to the rows where
/// it keeps mass; vertices sharing an attractor (transitively) form a
/// cluster.  Implemented as connected components over the attractor relation
/// with a union–find.
fn extract_clusters(m: &Csr<f64>) -> (Vec<usize>, usize) {
    let n = m.nrows();
    let mut parent: Vec<usize> = (0..n).collect();

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    fn union(parent: &mut [usize], a: usize, b: usize) {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra.max(rb)] = ra.min(rb);
        }
    }

    for (r, c, v) in m.iter() {
        if v > 1e-9 {
            union(&mut parent, r as usize, c as usize);
        }
    }

    let mut label_of_root = std::collections::HashMap::new();
    let mut clusters = vec![0usize; n];
    let mut next = 0usize;
    for (v, cluster) in clusters.iter_mut().enumerate() {
        let root = find(&mut parent, v);
        let label = *label_of_root.entry(root).or_insert_with(|| {
            let l = next;
            next += 1;
            l
        });
        *cluster = label;
    }
    (clusters, next)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_sparse::Coo;

    /// Two dense 4-cliques joined by a single weak edge.
    fn two_cliques() -> Csr<f64> {
        let mut entries = Vec::new();
        for block in 0..2usize {
            let base = block * 4;
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        entries.push((base + i, base + j, 1.0));
                    }
                }
            }
        }
        entries.push((3, 4, 0.1));
        entries.push((4, 3, 0.1));
        Coo::from_entries(8, 8, entries).unwrap().to_csr()
    }

    #[test]
    fn separates_two_cliques() {
        let g = two_cliques();
        let result = markov_cluster(&g, &MclConfig::default());
        assert!(
            result.converged,
            "MCL did not converge in {} iterations",
            result.iterations
        );
        assert_eq!(result.num_clusters, 2);
        // All of the first clique shares a label, all of the second shares the
        // other label.
        let first = result.clusters[0];
        let second = result.clusters[4];
        assert_ne!(first, second);
        assert!(result.clusters[..4].iter().all(|&c| c == first));
        assert!(result.clusters[4..].iter().all(|&c| c == second));
    }

    #[test]
    fn all_engines_find_the_same_clustering() {
        let g = two_cliques();
        let reference = markov_cluster(&g, &MclConfig::default());
        for engine in SpGemm::paper_set() {
            let cfg = MclConfig {
                engine: engine.clone(),
                ..MclConfig::default()
            };
            let result = markov_cluster(&g, &cfg);
            assert_eq!(
                result.num_clusters,
                reference.num_clusters,
                "{}",
                engine.name()
            );
            assert_eq!(result.clusters, reference.clusters, "{}", engine.name());
        }
    }

    #[test]
    fn mcl_iteration_reuses_its_workspace() {
        // Hand MCL an engine with an inspectable workspace: after the first
        // expansion every later iteration must draw at least some buffers
        // from it (the matrix shape is constant, so the nrows-sized
        // assemble staging reuses from iteration 2 onward even while the
        // flop is still growing toward its high-water mark).
        let g = two_cliques();
        let engine = SpGemm::with_workspace();
        let ws = engine.workspace_handle().cloned().unwrap();
        let cfg = MclConfig {
            engine,
            ..MclConfig::default()
        };
        let result = markov_cluster(&g, &cfg);
        assert!(result.iterations >= 2, "needs at least two expansions");
        assert!(
            ws.total_bytes_reused() > 0,
            "bytes_reused stayed zero across {} iterations",
            result.iterations
        );
        assert_eq!(ws.leases(), result.iterations as u64);
        // And the clustering itself is unchanged by the reuse.
        let reference = markov_cluster(&g, &MclConfig::default());
        assert_eq!(result.clusters, reference.clusters);
    }

    #[test]
    fn disconnected_components_become_separate_clusters() {
        // Three isolated edges -> three clusters.
        let g = Coo::from_entries(
            6,
            6,
            vec![
                (0, 1, 1.0),
                (1, 0, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (4, 5, 1.0),
                (5, 4, 1.0),
            ],
        )
        .unwrap()
        .to_csr();
        let result = markov_cluster(&g, &MclConfig::default());
        assert_eq!(result.num_clusters, 3);
    }

    #[test]
    fn isolated_vertices_form_singleton_clusters() {
        let g = Coo::from_entries(4, 4, vec![(0, 1, 1.0), (1, 0, 1.0)])
            .unwrap()
            .to_csr();
        let result = markov_cluster(&g, &MclConfig::default());
        assert_eq!(result.num_clusters, 3); // {0,1}, {2}, {3}
        assert_eq!(result.clusters[0], result.clusters[1]);
        assert_ne!(result.clusters[2], result.clusters[3]);
    }

    #[test]
    fn higher_inflation_never_merges_more() {
        let g = two_cliques();
        let soft = markov_cluster(
            &g,
            &MclConfig {
                inflation: 1.4,
                ..MclConfig::default()
            },
        );
        let sharp = markov_cluster(
            &g,
            &MclConfig {
                inflation: 3.0,
                ..MclConfig::default()
            },
        );
        assert!(sharp.num_clusters >= soft.num_clusters);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::<f64>::empty(0, 0);
        let result = markov_cluster(&g, &MclConfig::default());
        assert_eq!(result.num_clusters, 0);
        assert!(result.converged);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let g = two_cliques();
        let cfg = MclConfig {
            max_iterations: 1,
            tolerance: 0.0,
            ..MclConfig::default()
        };
        let result = markov_cluster(&g, &cfg);
        assert_eq!(result.iterations, 1);
        assert!(!result.converged);
    }
}
