//! R-MAT (recursive matrix) generator.
//!
//! The paper generates skewed matrices with the Graph500 R-MAT parameters
//! `a=0.57, b=c=0.19, d=0.05` (Sec. IV-C) and uniform ER-like matrices with
//! `a=b=c=d=0.25`.  Each nonzero is placed by recursively descending `scale`
//! levels of a 2×2 quadrant subdivision; duplicates generated along the way
//! are merged, so the delivered nnz is slightly below
//! `edge_factor · 2^scale` for skewed parameter sets (as in Graph500).

use rayon::prelude::*;

use pb_sparse::{Coo, Csc, Csr, Index};

use crate::rng::Xoshiro256pp;
use crate::ScaleSpec;

/// Quadrant probabilities `(a, b, c, d)` of the R-MAT recursion.
///
/// `a` is the top-left quadrant, `b` top-right, `c` bottom-left, `d`
/// bottom-right; they must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Probability of the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// Probability of the bottom-right quadrant.
    pub d: f64,
}

/// The Graph500 parameter set used for the paper's "RMAT" matrices.
pub const GRAPH500_PARAMS: RmatParams = RmatParams {
    a: 0.57,
    b: 0.19,
    c: 0.19,
    d: 0.05,
};

/// The uniform parameter set (`a=b=c=d=0.25`), which degenerates to an
/// Erdős–Rényi-like matrix.
pub const UNIFORM_PARAMS: RmatParams = RmatParams {
    a: 0.25,
    b: 0.25,
    c: 0.25,
    d: 0.25,
};

/// Configuration of the R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatConfig {
    /// log2 of the matrix dimension.
    pub scale: u32,
    /// Average nonzeros per row before deduplication.
    pub edge_factor: u32,
    /// Quadrant probabilities.
    pub params: RmatParams,
    /// RNG seed.
    pub seed: u64,
    /// If `true`, values are uniform in `[0, 1)`; otherwise duplicates are
    /// merged by addition of ones (i.e. values are edge multiplicities).
    pub random_values: bool,
    /// If `true`, apply the Graph500 noise factor that perturbs the quadrant
    /// probabilities at every level, reducing self-similarity artifacts.
    pub noise: bool,
}

impl RmatConfig {
    /// Graph500-parameter configuration for the given scale and edge factor.
    pub fn graph500(scale: u32, edge_factor: u32, seed: u64) -> Self {
        RmatConfig {
            scale,
            edge_factor,
            params: GRAPH500_PARAMS,
            seed,
            random_values: true,
            noise: true,
        }
    }

    /// Scale specification of this configuration.
    pub fn spec(&self) -> ScaleSpec {
        ScaleSpec::new(self.scale, self.edge_factor)
    }
}

fn sample_edge(rng: &mut Xoshiro256pp, scale: u32, p: RmatParams, noise: bool) -> (Index, Index) {
    let mut row = 0u64;
    let mut col = 0u64;
    for _ in 0..scale {
        let (mut a, mut b, mut c, mut d) = (p.a, p.b, p.c, p.d);
        if noise {
            // Graph500 reference implementation: multiply each probability by
            // a factor uniform in [0.95, 1.05], then renormalise.
            a *= 0.95 + 0.1 * rng.next_f64();
            b *= 0.95 + 0.1 * rng.next_f64();
            c *= 0.95 + 0.1 * rng.next_f64();
            d *= 0.95 + 0.1 * rng.next_f64();
            let norm = a + b + c + d;
            a /= norm;
            b /= norm;
            c /= norm;
        }
        let r = rng.next_f64();
        let (row_bit, col_bit) = if r < a {
            (0, 0)
        } else if r < a + b {
            (0, 1)
        } else if r < a + b + c {
            (1, 0)
        } else {
            (1, 1)
        };
        row = (row << 1) | row_bit;
        col = (col << 1) | col_bit;
    }
    (row as Index, col as Index)
}

/// Generates an R-MAT matrix in COO form (duplicates already merged).
pub fn rmat_coo(config: &RmatConfig) -> Coo<f64> {
    let n = 1usize << config.scale;
    let nedges = n * config.edge_factor as usize;
    // Generate edges in blocks so the work parallelises while staying
    // deterministic: block `b` uses stream `b` of the seed.
    let block = 1usize << 14;
    let nblocks = nedges.div_ceil(block);
    let mut chunks: Vec<(Vec<Index>, Vec<Index>, Vec<f64>)> = (0..nblocks)
        .into_par_iter()
        .map(|bi| {
            let mut rng = Xoshiro256pp::from_stream(config.seed, bi as u64);
            let count = block.min(nedges - bi * block);
            let mut rows = Vec::with_capacity(count);
            let mut cols = Vec::with_capacity(count);
            let mut vals = Vec::with_capacity(count);
            for _ in 0..count {
                let (r, c) = sample_edge(&mut rng, config.scale, config.params, config.noise);
                rows.push(r);
                cols.push(c);
                vals.push(if config.random_values {
                    rng.next_f64()
                } else {
                    1.0
                });
            }
            (rows, cols, vals)
        })
        .collect();

    let mut rows = Vec::with_capacity(nedges);
    let mut cols = Vec::with_capacity(nedges);
    let mut vals = Vec::with_capacity(nedges);
    for (r, c, v) in chunks.drain(..) {
        rows.extend(r);
        cols.extend(c);
        vals.extend(v);
    }
    let mut coo = Coo::from_parts_unchecked(n, n, rows, cols, vals);
    // Merge duplicate coordinates (keep the sum, as Graph500 does for
    // weighted graphs).
    coo.sum_duplicates_with::<pb_sparse::PlusTimes<f64>>();
    coo
}

/// Generates an R-MAT matrix in CSR form.
pub fn rmat(config: &RmatConfig) -> Csr<f64> {
    rmat_coo(config).to_csr()
}

/// Generates an R-MAT matrix in CSC form.
pub fn rmat_csc(config: &RmatConfig) -> Csc<f64> {
    rmat_coo(config).to_csc()
}

/// Convenience: Graph500-parameter R-MAT matrix of dimension `2^scale` with
/// `edge_factor` edges per row (before deduplication).
pub fn rmat_square(scale: u32, edge_factor: u32, seed: u64) -> Csr<f64> {
    rmat(&RmatConfig::graph500(scale, edge_factor, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_sparse::stats::degree_gini;

    #[test]
    fn dimensions_and_nnz_are_plausible() {
        let cfg = RmatConfig::graph500(10, 8, 42);
        let m = rmat(&cfg);
        assert_eq!(m.shape(), (1024, 1024));
        // Duplicates reduce nnz below n*ef but not catastrophically.
        assert!(m.nnz() <= 1024 * 8);
        assert!(
            m.nnz() > 1024 * 8 / 2,
            "too many duplicates: nnz = {}",
            m.nnz()
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = RmatConfig::graph500(9, 4, 5);
        assert_eq!(rmat(&cfg), rmat(&cfg));
        let other = RmatConfig { seed: 6, ..cfg };
        assert_ne!(rmat(&cfg), rmat(&other));
    }

    #[test]
    fn graph500_parameters_produce_skewed_degrees() {
        let skewed = rmat(&RmatConfig::graph500(11, 8, 3));
        let uniform = rmat(&RmatConfig {
            scale: 11,
            edge_factor: 8,
            params: UNIFORM_PARAMS,
            seed: 3,
            random_values: true,
            noise: false,
        });
        let g_skewed = degree_gini(&skewed);
        let g_uniform = degree_gini(&uniform);
        assert!(
            g_skewed > g_uniform + 0.15,
            "Graph500 R-MAT should be clearly more skewed: {g_skewed} vs {g_uniform}"
        );
    }

    #[test]
    fn uniform_parameters_resemble_er() {
        let m = rmat(&RmatConfig {
            scale: 10,
            edge_factor: 8,
            params: UNIFORM_PARAMS,
            seed: 1,
            random_values: true,
            noise: false,
        });
        // Max degree stays small for a uniform distribution.
        assert!(
            m.max_degree() < 30,
            "max degree {} too large for uniform R-MAT",
            m.max_degree()
        );
    }

    #[test]
    fn all_indices_in_bounds_and_csc_roundtrip() {
        let cfg = RmatConfig::graph500(8, 6, 13);
        let coo = rmat_coo(&cfg);
        let n = 1usize << cfg.scale;
        assert!(coo
            .iter()
            .all(|(r, c, _)| (r as usize) < n && (c as usize) < n));
        let csr = rmat(&cfg);
        let csc = rmat_csc(&cfg);
        assert_eq!(csc.to_csr(), csr);
    }

    #[test]
    fn params_constants_sum_to_one() {
        for p in [GRAPH500_PARAMS, UNIFORM_PARAMS] {
            assert!((p.a + p.b + p.c + p.d - 1.0).abs() < 1e-12);
        }
    }
}
