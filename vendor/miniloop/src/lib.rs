//! A minimal stand-in for an async event-loop runtime (mio/polling/tokio).
//!
//! The build environment has no network access to crates.io, so this crate
//! vendors the two primitives `pb-spgemm-serve` needs to run a resident
//! network service — in the same spirit as the vendored `rayon` pool:
//!
//! * [`poll_readable`] — the **reactor**: blocks until any of a set of file
//!   descriptors becomes readable (or a timeout passes), implemented with a
//!   raw `ppoll` syscall on Linux x86-64/aarch64 (no `libc` is available in
//!   this vendored build) and a timed-poll fallback elsewhere;
//! * [`TaskQueue`] — the **executor's run queue**: an unbounded MPMC queue
//!   of ready tasks with condvar wake-ups and a batch-draining pop, which is
//!   what lets the server coalesce same-shape requests.
//!
//! There are no futures here on purpose: the serving workload is
//! readiness-driven I/O plus CPU-bound SpGEMM calls, and a callback/queue
//! event loop expresses that directly with zero `unsafe` outside the one
//! syscall wrapper.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::VecDeque;
use std::io;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Raw file descriptor (numeric, so non-Linux builds still compile).
pub type RawFd = i32;

/// Readiness of one registered descriptor, reported by [`poll_readable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen key registered with the descriptor.
    pub key: usize,
    /// The descriptor has bytes to read (or a pending connection to accept).
    pub readable: bool,
    /// The peer hung up or the descriptor errored; the source should be
    /// drained and dropped.
    pub closed: bool,
}

const POLLIN: i16 = 0x001;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

/// The kernel's `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

/// The kernel's `struct timespec` for `ppoll`.
#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// Waits until one of `sources` (a `(fd, key)` pair per descriptor) is
/// readable, hung up, or `timeout` elapses; returns the ready events (empty
/// on timeout).
///
/// On Linux x86-64/aarch64 this is a single `ppoll` syscall.  On other
/// targets it degrades to a short sleep that reports every source readable —
/// callers must already tolerate spurious readiness (non-blocking reads
/// returning `WouldBlock`), so the fallback costs latency, never
/// correctness.
pub fn poll_readable(sources: &[(RawFd, usize)], timeout: Duration) -> io::Result<Vec<Event>> {
    if sources.is_empty() {
        std::thread::sleep(timeout);
        return Ok(Vec::new());
    }
    let mut fds: Vec<PollFd> = sources
        .iter()
        .map(|&(fd, _)| PollFd {
            fd,
            events: POLLIN,
            revents: 0,
        })
        .collect();
    let ready = ppoll(&mut fds, timeout)?;
    if ready == 0 {
        return Ok(Vec::new());
    }
    Ok(fds
        .iter()
        .zip(sources)
        .filter(|(p, _)| p.revents != 0)
        .map(|(p, &(_, key))| Event {
            key,
            readable: p.revents & POLLIN != 0,
            closed: p.revents & (POLLERR | POLLHUP) != 0,
        })
        .collect())
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
fn ppoll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let ts = Timespec {
        tv_sec: timeout.as_secs().min(i64::MAX as u64) as i64,
        tv_nsec: i64::from(timeout.subsec_nanos()),
    };
    let res: isize;
    // SAFETY: ppoll(fds, nfds, timeout, sigmask = NULL, sigsetsize) reads
    // and writes the `fds` slice (which outlives the call) and reads `ts`;
    // a null sigmask means "don't touch the signal mask".  The asm clobbers
    // match the Linux syscall ABI, as in the vendored rayon's
    // `sched_setaffinity` wrapper.
    unsafe {
        #[cfg(target_arch = "x86_64")]
        std::arch::asm!(
            "syscall",
            inlateout("rax") 271isize => res, // __NR_ppoll
            in("rdi") fds.as_mut_ptr(),
            in("rsi") fds.len(),
            in("rdx") &ts as *const Timespec,
            in("r10") 0usize, // sigmask = NULL
            in("r8") 8usize,  // sigsetsize
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        #[cfg(target_arch = "aarch64")]
        {
            let x8: usize = 73; // __NR_ppoll
            std::arch::asm!(
                "svc 0",
                inlateout("x0") fds.as_mut_ptr() => res,
                in("x1") fds.len(),
                in("x2") &ts as *const Timespec,
                in("x3") 0usize,
                in("x4") 8usize,
                in("x8") x8,
                options(nostack),
            );
        }
    }
    if res < 0 {
        let errno = (-res) as i32;
        // EINTR: a signal cut the wait short; report a timeout so the event
        // loop just re-polls.
        if errno == 4 {
            return Ok(0);
        }
        return Err(io::Error::from_raw_os_error(errno));
    }
    Ok(res as usize)
}

/// Timed-poll fallback for targets without the raw syscall: sleep briefly
/// and report everything readable (spurious readiness is tolerated).
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
fn ppoll(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    std::thread::sleep(timeout.min(Duration::from_millis(5)));
    for f in fds.iter_mut() {
        f.revents = POLLIN;
    }
    Ok(fds.len())
}

/// An unbounded multi-producer multi-consumer queue of ready tasks — the
/// executor half of the event loop.
///
/// Producers [`push`](TaskQueue::push); consumers block on
/// [`pop`](TaskQueue::pop) with a timeout, and can
/// [`drain_matching`](TaskQueue::drain_matching) to pull every queued task
/// that belongs with the one they just popped (request batching).
#[derive(Debug, Default)]
pub struct TaskQueue<T> {
    inner: Mutex<VecDeque<T>>,
    ready: Condvar,
}

impl<T> TaskQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        TaskQueue {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    /// Enqueues a task and wakes one waiting consumer.
    pub fn push(&self, task: T) {
        self.inner
            .lock()
            .expect("task queue lock poisoned")
            .push_back(task);
        self.ready.notify_one();
    }

    /// Pops the oldest task, waiting up to `timeout`; `None` on timeout.
    pub fn pop(&self, timeout: Duration) -> Option<T> {
        let mut q = self.inner.lock().expect("task queue lock poisoned");
        loop {
            if let Some(task) = q.pop_front() {
                return Some(task);
            }
            let (next, result) = self
                .ready
                .wait_timeout(q, timeout)
                .expect("task queue lock poisoned");
            q = next;
            if result.timed_out() {
                return q.pop_front();
            }
        }
    }

    /// Removes and returns every queued task matching `pred`, oldest first,
    /// up to `limit` — without waiting.  Queue order of the rest is kept.
    pub fn drain_matching(&self, limit: usize, mut pred: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut q = self.inner.lock().expect("task queue lock poisoned");
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(q.len());
        while let Some(task) = q.pop_front() {
            if taken.len() < limit && pred(&task) {
                taken.push(task);
            } else {
                kept.push_back(task);
            }
        }
        *q = kept;
        taken
    }

    /// Number of queued tasks right now.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("task queue lock poisoned").len()
    }

    /// Whether the queue is empty right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Wakes every blocked consumer (shutdown broadcast).
    pub fn wake_all(&self) {
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn queue_delivers_in_order_across_threads() {
        let q = Arc::new(TaskQueue::new());
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                for i in 0..100 {
                    q.push(i);
                }
            })
        };
        let mut got = Vec::new();
        while got.len() < 100 {
            if let Some(v) = q.pop(Duration::from_millis(200)) {
                got.push(v);
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<i32>>());
    }

    #[test]
    fn pop_times_out_on_an_empty_queue() {
        let q: TaskQueue<i32> = TaskQueue::new();
        assert_eq!(q.pop(Duration::from_millis(10)), None);
    }

    #[test]
    fn drain_matching_batches_and_preserves_the_rest() {
        let q: TaskQueue<i32> = TaskQueue::new();
        for i in 0..10 {
            q.push(i);
        }
        let evens = q.drain_matching(3, |v| v % 2 == 0);
        assert_eq!(evens, vec![0, 2, 4]);
        // 6 and 8 stayed (limit was 3), as did every odd value, in order.
        let mut rest = Vec::new();
        while let Some(v) = q.pop(Duration::from_millis(1)) {
            rest.push(v);
        }
        assert_eq!(rest, vec![1, 3, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn poll_reports_a_readable_socket() {
        use std::io::Write;
        use std::net::{TcpListener, TcpStream};
        use std::os::fd::AsRawFd;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        // Nothing to read yet: times out with no events.
        let fd = server.as_raw_fd();
        let quiet = poll_readable(&[(fd, 7)], Duration::from_millis(20)).unwrap();
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert!(quiet.is_empty());
        let _ = quiet;

        client.write_all(b"hello\n").unwrap();
        let events = poll_readable(&[(fd, 7)], Duration::from_millis(500)).unwrap();
        assert!(events.iter().any(|e| e.key == 7 && e.readable));
    }
}
