//! Property-based tests (proptest) for the element-wise operations, the
//! sparse/dense vector helpers, the binary matrix format and the SpMV
//! kernels added on top of the original reproduction.

use proptest::prelude::*;

use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::{binfmt, ops, reference};
use pb_spgemm_suite::spgemm::BinMapping;

/// Engine-backed stand-in for the retired `pb_spgemm::multiply` free
/// function: call sites stay unchanged while routing through the unified
/// [`SpGemm`] engine.
fn multiply(a: &Csc<f64>, b: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb().config(cfg.clone()).multiply_csc(a, b)
}

/// Engine-backed stand-in for the retired `pb_spgemm::multiply_masked`.
fn multiply_masked(a: &Csc<f64>, b: &Csr<f64>, mask: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb()
        .config(cfg.clone())
        .mask(mask)
        .multiply_csc(a, b)
}

use pb_spgemm_suite::spmv::{csc_spmv, csr_spmv, pb_spmv, PbSpmvConfig};

/// Strategy: an arbitrary sparse matrix with dimensions in `[1, max_dim]`.
fn sparse_matrix(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = Csr<f64>> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(nrows, ncols)| {
        let entry = (0..nrows, 0..ncols, -1.0f64..1.0f64);
        proptest::collection::vec(entry, 0..=max_nnz)
            .prop_map(move |entries| Coo::from_entries(nrows, ncols, entries).unwrap().to_csr())
    })
}

/// Strategy: two matrices of identical shape.
fn same_shape_pair(max_dim: usize, max_nnz: usize) -> impl Strategy<Value = (Csr<f64>, Csr<f64>)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(move |(nrows, ncols)| {
        let entry_a = (0..nrows, 0..ncols, -1.0f64..1.0f64);
        let entry_b = (0..nrows, 0..ncols, -1.0f64..1.0f64);
        (
            proptest::collection::vec(entry_a, 0..=max_nnz)
                .prop_map(move |e| Coo::from_entries(nrows, ncols, e).unwrap().to_csr()),
            proptest::collection::vec(entry_b, 0..=max_nnz)
                .prop_map(move |e| Coo::from_entries(nrows, ncols, e).unwrap().to_csr()),
        )
    })
}

/// Dense oracle for the element-wise checks.
fn dense_of(a: &Csr<f64>) -> Vec<Vec<f64>> {
    let mut d = vec![vec![0.0; a.ncols()]; a.nrows()];
    for (r, c, v) in a.iter() {
        d[r as usize][c as usize] += v;
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel element-wise addition equals the dense sum.
    #[test]
    fn add_matches_dense_addition((a, b) in same_shape_pair(32, 150)) {
        let sum = ops::add(&a, &b);
        let (da, db, ds) = (dense_of(&a), dense_of(&b), dense_of(&sum));
        for i in 0..a.nrows() {
            for j in 0..a.ncols() {
                prop_assert!((ds[i][j] - (da[i][j] + db[i][j])).abs() < 1e-9);
            }
        }
        // Addition never loses coordinates.
        prop_assert!(sum.nnz() <= a.nnz() + b.nnz());
        prop_assert!(sum.nnz() >= a.nnz().max(b.nnz()));
    }

    /// The Hadamard product stores exactly the intersection of the patterns.
    #[test]
    fn hadamard_matches_dense_product((a, b) in same_shape_pair(32, 150)) {
        let had = ops::hadamard(&a, &b);
        let (da, db, dh) = (dense_of(&a), dense_of(&b), dense_of(&had));
        for (r, c, _) in had.iter() {
            let (i, j) = (r as usize, c as usize);
            prop_assert!((dh[i][j] - da[i][j] * db[i][j]).abs() < 1e-9);
            prop_assert!(a.get(i, j).is_some() && b.get(i, j).is_some());
        }
    }

    /// Strict upper + diagonal + strict lower partition the stored entries.
    #[test]
    fn triangles_partition_the_matrix(a in sparse_matrix(40, 200)) {
        let up = ops::triu(&a, 1);
        let lo = ops::tril(&a, 1);
        let diag_count = a.iter().filter(|&(r, c, _)| r == c).count();
        prop_assert_eq!(up.nnz() + lo.nnz() + diag_count, a.nnz());
        prop_assert!(up.iter().all(|(r, c, _)| c > r));
        prop_assert!(lo.iter().all(|(r, c, _)| c < r));
    }

    /// Row sums and column sums both add up to the total of all values.
    #[test]
    fn row_and_col_sums_are_consistent(a in sparse_matrix(40, 200)) {
        let total: f64 = a.values().iter().sum();
        let by_rows: f64 = ops::row_sums(&a).iter().sum();
        let by_cols: f64 = ops::col_sums(&a).iter().sum();
        prop_assert!((by_rows - total).abs() < 1e-9);
        prop_assert!((by_cols - total).abs() < 1e-9);
    }

    /// The binary format round-trips arbitrary matrices bit-exactly.
    #[test]
    fn binary_format_roundtrips(a in sparse_matrix(48, 250)) {
        let mut buf = Vec::new();
        binfmt::write_csr_to(&mut buf, &a).unwrap();
        let back: Csr<f64> = binfmt::read_csr_from(buf.as_slice()).unwrap();
        prop_assert!(reference::csr_exact_eq(&a, &back));
    }

    /// All three SpMV kernels agree with a dense gather oracle.
    #[test]
    fn spmv_kernels_agree(a in sparse_matrix(48, 250), seed in 0u64..100) {
        let x: Vec<f64> = (0..a.ncols()).map(|i| ((i as u64 * 31 + seed) % 17) as f64 / 17.0 - 0.5).collect();
        let mut oracle = vec![0.0f64; a.nrows()];
        for (r, c, v) in a.iter() {
            oracle[r as usize] += v * x[c as usize];
        }
        let a_csc = a.to_csc();
        for (name, y) in [
            ("csr", csr_spmv(&a, &x)),
            ("csc", csc_spmv(&a_csc, &x)),
            ("pb", pb_spmv(&a_csc, &x, &PbSpmvConfig::default().with_l2_bytes(4096))),
        ] {
            for (i, (p, q)) in y.iter().zip(&oracle).enumerate() {
                prop_assert!((p - q).abs() < 1e-9, "{name} row {i}");
            }
        }
    }

    /// Sparse vectors behave like their dense expansions.
    #[test]
    fn sparse_vectors_match_dense_semantics(
        entries in proptest::collection::vec((0usize..64, -1.0f64..1.0), 0..80),
        other in proptest::collection::vec((0usize..64, -1.0f64..1.0), 0..80),
    ) {
        let x = SparseVec::from_entries(64, entries).unwrap();
        let y = SparseVec::from_entries(64, other).unwrap();
        let dx = x.to_dense(0.0);
        let dy = y.to_dense(0.0);
        let dense_dot: f64 = dx.iter().zip(&dy).map(|(a, b)| a * b).sum();
        prop_assert!((x.dot(&y) - dense_dot).abs() < 1e-9);
        let sum = x.add_with::<PlusTimes<f64>>(&y);
        for i in 0..64 {
            prop_assert!((sum.get(i).unwrap_or(0.0) - (dx[i] + dy[i])).abs() < 1e-9);
        }
    }

    /// Masked PB-SpGEMM equals multiply-then-filter for arbitrary masks, and
    /// the balanced bin mapping changes nothing about the result.
    #[test]
    fn masked_and_balanced_multiplications_are_consistent(
        a in sparse_matrix(32, 150),
        mask in sparse_matrix(32, 150),
    ) {
        // Make the operands square and the mask the right shape.
        let n = a.nrows().min(a.ncols());
        let square = |m: &Csr<f64>| {
            Coo::from_entries(
                n, n,
                m.iter()
                    .filter(|&(r, c, _)| (r as usize) < n && (c as usize) < n)
                    .map(|(r, c, v)| (r as usize, c as usize, v))
                    .collect::<Vec<_>>(),
            ).unwrap().to_csr()
        };
        let a = square(&a);
        let mask = square(&mask);
        let a_csc = a.to_csc();

        let full = multiply(&a_csc, &a, &PbConfig::default());
        let masked = multiply_masked(&a_csc, &a, &mask, &PbConfig::default());
        let expected = ops::mask_by_pattern(&full, &mask);
        prop_assert!(reference::csr_approx_eq(&masked, &expected, 1e-9));

        let balanced = multiply(
            &a_csc, &a,
            &PbConfig::default().with_bin_mapping(BinMapping::Balanced).with_nbins(8),
        );
        prop_assert!(reference::csr_approx_eq(&balanced, &full, 1e-9));
    }
}
