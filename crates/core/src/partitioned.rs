//! Row-partitioned PB-SpGEMM.
//!
//! Section V-D of the paper discusses a dual-socket variant that splits `A`
//! into row blocks and multiplies each block with `B` independently, so that
//! every block's bins stay local to one memory domain at the cost of reading
//! `B` once per partition.  This module implements that variant: it is used
//! by the NUMA-contention experiments and doubles as a simple
//! out-of-core-style driver (each partition's expanded tuples are only
//! `flop / parts` large).
//!
//! Because the output rows of different partitions are disjoint, the partial
//! results concatenate directly into the final CSR matrix.

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::{Csr, Index};

use crate::config::PbConfig;
use crate::pb_multiply_with_profile;

/// Splits `a` (CSR) into `parts` contiguous row blocks.
fn row_blocks<T: pb_sparse::Scalar>(a: &Csr<T>, parts: usize) -> Vec<Csr<T>> {
    let parts = parts.clamp(1, a.nrows().max(1));
    let rows_per_part = a.nrows().div_ceil(parts);
    let mut blocks = Vec::with_capacity(parts);
    let mut start = 0usize;
    while start < a.nrows() {
        let end = (start + rows_per_part).min(a.nrows());
        let base = a.rowptr()[start];
        let rowptr: Vec<usize> = a.rowptr()[start..=end].iter().map(|&p| p - base).collect();
        let colidx = a.colidx()[a.rowptr()[start]..a.rowptr()[end]].to_vec();
        let values = a.values()[a.rowptr()[start]..a.rowptr()[end]].to_vec();
        blocks.push(Csr::from_parts_unchecked(
            end - start,
            a.ncols(),
            rowptr,
            colidx,
            values,
        ));
        start = end;
    }
    if blocks.is_empty() {
        blocks.push(Csr::empty(0, a.ncols()));
    }
    blocks
}

/// Stacks CSR blocks with identical column counts on top of each other.
fn vstack<T: pb_sparse::Scalar>(blocks: &[Csr<T>], ncols: usize) -> Csr<T> {
    let nrows: usize = blocks.iter().map(|b| b.nrows()).sum();
    let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
    let mut rowptr = Vec::with_capacity(nrows + 1);
    rowptr.push(0usize);
    let mut colidx: Vec<Index> = Vec::with_capacity(nnz);
    let mut values: Vec<T> = Vec::with_capacity(nnz);
    for block in blocks {
        for i in 0..block.nrows() {
            let (cols, vals) = block.row(i);
            colidx.extend_from_slice(cols);
            values.extend_from_slice(vals);
            rowptr.push(colidx.len());
        }
    }
    Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values)
}

/// Row-partitioned PB-SpGEMM under an arbitrary semiring: `A` (CSR) is split
/// into `parts` row blocks, each block is multiplied with `B` by the regular
/// PB-SpGEMM pipeline, and the partial outputs are stacked.
pub fn multiply_partitioned_with<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    config: &PbConfig,
    parts: usize,
) -> Csr<S::Elem> {
    assert_eq!(
        a.ncols(),
        b.nrows(),
        "partitioned PB-SpGEMM shape mismatch: {:?} x {:?}",
        a.shape(),
        b.shape()
    );
    let blocks = row_blocks(a, parts);
    let partials: Vec<Csr<S::Elem>> = blocks
        .into_iter()
        .map(|block| pb_multiply_with_profile::<S>(&block.to_csc_generic(), b, config).0)
        .collect();
    vstack(&partials, b.ncols())
}

/// Row-partitioned PB-SpGEMM with ordinary `+`/`×`.
pub fn multiply_partitioned<T: Numeric + Default>(
    a: &Csr<T>,
    b: &Csr<T>,
    config: &PbConfig,
    parts: usize,
) -> Csr<T> {
    multiply_partitioned_with::<PlusTimes<T>>(a, b, config, parts)
}

/// Small extension trait: CSC conversion that does not require `T: Default`
/// (uses the transpose-reinterpretation of the block's transpose).
trait ToCscGeneric<T: pb_sparse::Scalar> {
    fn to_csc_generic(self) -> pb_sparse::Csc<T>;
}

impl<T: pb_sparse::Scalar> ToCscGeneric<T> for Csr<T> {
    fn to_csc_generic(self) -> pb_sparse::Csc<T> {
        // Counting-sort transpose without needing Default: go through COO.
        let coo = self.to_coo();
        let (nrows, ncols, rows, cols, vals) = coo.into_parts();
        // Sort entries by (col, row) with a stable counting sort on col.
        let mut counts = vec![0usize; ncols + 1];
        for &c in &cols {
            counts[c as usize + 1] += 1;
        }
        for j in 0..ncols {
            counts[j + 1] += counts[j];
        }
        let colptr = counts.clone();
        let mut rowidx = vec![0 as Index; rows.len()];
        let mut values: Vec<T> = Vec::with_capacity(vals.len());
        // Two passes: indices via cursor, then values gathered in the same
        // order (avoids requiring Default for placeholder values).
        let mut order = vec![0usize; rows.len()];
        let mut cursor = counts;
        for i in 0..rows.len() {
            let c = cols[i] as usize;
            let dst = cursor[c];
            rowidx[dst] = rows[i];
            order[dst] = i;
            cursor[c] += 1;
        }
        for &src in &order {
            values.push(vals[src]);
        }
        pb_sparse::Csc::from_parts_unchecked(nrows, ncols, colptr, rowidx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::{erdos_renyi_square, rmat_square};
    use pb_sparse::reference::{csr_approx_eq, multiply_csr};

    #[test]
    fn partitioned_matches_unpartitioned_for_various_part_counts() {
        let a = rmat_square(8, 6, 31);
        let expected = multiply_csr(&a, &a);
        for parts in [1usize, 2, 3, 7, 64, 10_000] {
            let c = multiply_partitioned(&a, &a, &PbConfig::default(), parts);
            assert!(
                csr_approx_eq(&c, &expected, 1e-9),
                "partitioned multiply wrong with {parts} parts"
            );
        }
    }

    #[test]
    fn partitioned_handles_rectangular_and_empty_inputs() {
        let a = erdos_renyi_square(7, 4, 32);
        let expected = multiply_csr(&a, &a);
        let c = multiply_partitioned(&a, &a, &PbConfig::default().with_nbins(4), 5);
        assert!(csr_approx_eq(&c, &expected, 1e-9));

        let empty: Csr<f64> = Csr::empty(10, 10);
        let c = multiply_partitioned(&empty, &empty, &PbConfig::default(), 3);
        assert_eq!(c.shape(), (10, 10));
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn row_blocks_partition_the_rows_exactly() {
        let a = erdos_renyi_square(7, 4, 33);
        let blocks = row_blocks(&a, 5);
        assert_eq!(blocks.iter().map(|b| b.nrows()).sum::<usize>(), a.nrows());
        assert_eq!(blocks.iter().map(|b| b.nnz()).sum::<usize>(), a.nnz());
        let restacked = vstack(&blocks, a.ncols());
        assert_eq!(restacked, a);
    }
}
