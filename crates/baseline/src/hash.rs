//! HashSpGEMM and HashVecSpGEMM: column/row SpGEMM with hash-table
//! accumulators, after Nagasaka et al. (ICPP 2017 / Parallel Computing 2019).
//!
//! Every thread owns a private open-addressing hash table.  For output row
//! `i` the table is sized to the next power of two above the row's flop
//! (an upper bound on the row's nonzeros), products are scattered into it,
//! and the surviving entries are extracted and sorted by column index.
//!
//! `HashVecSpGEMM` differs only in the probing pattern: the table is probed
//! in aligned groups of eight slots (the width of an AVX-512 gather on the
//! paper's Skylake testbed), which mimics the vector-register probing of the
//! original implementation in portable scalar code.

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::{Csr, Index};

use crate::util::{next_pow2, row_flop, rowwise_multiply};

/// Number of slots probed as one group by the "vectorised" variant.
pub const VEC_WIDTH: usize = 8;

const EMPTY: Index = Index::MAX;

/// Thread-private scratch: a flat open-addressing table of (key, value)
/// pairs, grown on demand and reused across rows.
#[derive(Debug)]
struct HashScratch<V> {
    keys: Vec<Index>,
    vals: Vec<V>,
}

impl<V: Copy> HashScratch<V> {
    fn new() -> Self {
        HashScratch {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Ensures capacity for `size` slots and resets all keys to EMPTY.
    fn reset(&mut self, size: usize, zero: V) {
        if self.keys.len() < size {
            self.keys.resize(size, EMPTY);
            self.vals.resize(size, zero);
        }
        // Only the first `size` slots are used for this row.
        for k in &mut self.keys[..size] {
            *k = EMPTY;
        }
    }
}

#[inline]
fn hash_key(key: Index, mask: usize) -> usize {
    // Fibonacci hashing; cheap and good enough for uniformly random columns.
    (key.wrapping_mul(2654435761) as usize) & mask
}

/// Scatters one product into the table with linear probing.
#[inline]
fn scatter_linear<S: Semiring>(
    keys: &mut [Index],
    vals: &mut [S::Elem],
    mask: usize,
    col: Index,
    product: S::Elem,
) {
    let mut slot = hash_key(col, mask);
    loop {
        if keys[slot] == col {
            vals[slot] = S::add(vals[slot], product);
            return;
        }
        if keys[slot] == EMPTY {
            keys[slot] = col;
            vals[slot] = product;
            return;
        }
        slot = (slot + 1) & mask;
    }
}

/// Scatters one product probing aligned groups of [`VEC_WIDTH`] slots, the
/// scalar emulation of the vector-register probing of HashVecSpGEMM.
#[inline]
fn scatter_grouped<S: Semiring>(
    keys: &mut [Index],
    vals: &mut [S::Elem],
    ngroups_mask: usize,
    col: Index,
    product: S::Elem,
) {
    let mut group = hash_key(col, ngroups_mask);
    loop {
        let base = group * VEC_WIDTH;
        // Probe the whole group first (a single gather/compare on real
        // vector hardware).
        for offset in 0..VEC_WIDTH {
            let slot = base + offset;
            if keys[slot] == col {
                vals[slot] = S::add(vals[slot], product);
                return;
            }
        }
        for offset in 0..VEC_WIDTH {
            let slot = base + offset;
            if keys[slot] == EMPTY {
                keys[slot] = col;
                vals[slot] = product;
                return;
            }
        }
        group = (group + 1) & ngroups_mask;
    }
}

fn hash_spgemm_impl<S: Semiring>(
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    grouped: bool,
) -> Csr<S::Elem> {
    rowwise_multiply::<S, HashScratch<S::Elem>, _, _>(a, b, HashScratch::new, |scratch, i| {
        let upper = row_flop(a, b, i);
        if upper == 0 {
            return (Vec::new(), Vec::new());
        }
        // Load factor <= 0.5 keeps probe chains short even with clustered
        // column indices.
        let size = if grouped {
            (next_pow2(upper * 2).max(VEC_WIDTH)).next_multiple_of(VEC_WIDTH)
        } else {
            next_pow2(upper * 2)
        };
        scratch.reset(size, S::zero());
        let keys = &mut scratch.keys[..size];
        let vals = &mut scratch.vals[..size];
        let mask = if grouped {
            size / VEC_WIDTH - 1
        } else {
            size - 1
        };

        let (a_cols, a_vals) = a.row(i);
        for (&k, &a_ik) in a_cols.iter().zip(a_vals) {
            let (b_cols, b_vals) = b.row(k as usize);
            for (&j, &b_kj) in b_cols.iter().zip(b_vals) {
                let product = S::mul(a_ik, b_kj);
                if grouped {
                    scatter_grouped::<S>(keys, vals, mask, j, product);
                } else {
                    scatter_linear::<S>(keys, vals, mask, j, product);
                }
            }
        }

        // Gather surviving entries and sort them by column index.
        let mut out: Vec<(Index, S::Elem)> = keys
            .iter()
            .zip(vals.iter())
            .filter(|(&k, _)| k != EMPTY)
            .map(|(&k, &v)| (k, v))
            .collect();
        out.sort_unstable_by_key(|&(c, _)| c);
        let (cols, vals): (Vec<Index>, Vec<S::Elem>) = out.into_iter().unzip();
        (cols, vals)
    })
}

/// HashSpGEMM under an arbitrary semiring.
pub fn hash_spgemm_with<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    hash_spgemm_impl::<S>(a, b, false)
}

/// HashSpGEMM with ordinary `+`/`×`.
pub fn hash_spgemm<T: Numeric>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    hash_spgemm_with::<PlusTimes<T>>(a, b)
}

/// HashVecSpGEMM (grouped probing) under an arbitrary semiring.
pub fn hashvec_spgemm_with<S: Semiring>(a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
    hash_spgemm_impl::<S>(a, b, true)
}

/// HashVecSpGEMM with ordinary `+`/`×`.
pub fn hashvec_spgemm<T: Numeric>(a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
    hashvec_spgemm_with::<PlusTimes<T>>(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::{banded, erdos_renyi_square, rmat_square};
    use pb_sparse::reference::{csr_approx_eq, multiply_csr, multiply_csr_with};
    use pb_sparse::semiring::OrAnd;

    #[test]
    fn hash_matches_reference_on_random_matrices() {
        for (scale, ef, seed) in [(7u32, 4u32, 1u64), (8, 8, 2), (9, 2, 3)] {
            let a = erdos_renyi_square(scale, ef, seed);
            let expected = multiply_csr(&a, &a);
            assert!(csr_approx_eq(&hash_spgemm(&a, &a), &expected, 1e-9));
            assert!(csr_approx_eq(&hashvec_spgemm(&a, &a), &expected, 1e-9));
        }
    }

    #[test]
    fn hash_matches_reference_on_skewed_matrices() {
        let a = rmat_square(9, 8, 7);
        let expected = multiply_csr(&a, &a);
        assert!(csr_approx_eq(&hash_spgemm(&a, &a), &expected, 1e-9));
        assert!(csr_approx_eq(&hashvec_spgemm(&a, &a), &expected, 1e-9));
    }

    #[test]
    fn hash_matches_reference_on_high_cf_banded_matrix() {
        // Banded matrices stress the accumulator: many colliding columns.
        let a = banded(400, 21, 5);
        let expected = multiply_csr(&a, &a);
        assert!(csr_approx_eq(&hash_spgemm(&a, &a), &expected, 1e-9));
        assert!(csr_approx_eq(&hashvec_spgemm(&a, &a), &expected, 1e-9));
    }

    #[test]
    fn output_rows_are_sorted_and_unique() {
        let a = rmat_square(8, 6, 11);
        for c in [hash_spgemm(&a, &a), hashvec_spgemm(&a, &a)] {
            assert!(c.has_sorted_indices());
            assert!(!c.has_duplicates());
        }
    }

    #[test]
    fn boolean_semiring_pattern_matches() {
        let a = rmat_square(7, 4, 13).map_values(|_| true);
        let expected = multiply_csr_with::<OrAnd>(&a, &a);
        let c = hashvec_spgemm_with::<OrAnd>(&a, &a);
        assert_eq!(c.rowptr(), expected.rowptr());
        assert_eq!(c.colidx(), expected.colidx());
    }

    #[test]
    fn empty_inputs() {
        let empty: Csr<f64> = Csr::empty(10, 10);
        assert_eq!(hash_spgemm(&empty, &empty).nnz(), 0);
        assert_eq!(hashvec_spgemm(&empty, &empty).nnz(), 0);
        // A matrix with an empty row/column mix.
        let a = erdos_renyi_square(6, 1, 17);
        let expected = multiply_csr(&a, &a);
        assert!(csr_approx_eq(&hash_spgemm(&a, &a), &expected, 1e-9));
    }
}
