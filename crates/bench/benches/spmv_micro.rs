//! Criterion micro-benchmarks of the SpMV kernels: the row-parallel CSR
//! kernel (random reads of `x`), the column scatter kernel (per-thread `y`
//! copies), and the propagation-blocking kernel the paper's technique
//! originates from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pb_gen::rmat_square;
use pb_spmv::{csc_spmv, csr_spmv, pb_spmv, PbSpmvConfig};

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    group.sample_size(15);

    for &(scale, ef) in &[(13u32, 8u32), (15, 8)] {
        let a = rmat_square(scale, ef, 99);
        let a_csc = a.to_csc();
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i % 31) as f64 * 0.1).collect();
        let label = format!("rmat_s{scale}_ef{ef}");

        group.bench_with_input(BenchmarkId::new("csr_row_parallel", &label), &x, |b, x| {
            b.iter(|| black_box(csr_spmv(&a, x)));
        });
        group.bench_with_input(BenchmarkId::new("csc_scatter", &label), &x, |b, x| {
            b.iter(|| black_box(csc_spmv(&a_csc, x)));
        });
        let cfg = PbSpmvConfig::default();
        group.bench_with_input(
            BenchmarkId::new("propagation_blocking", &label),
            &x,
            |b, x| {
                b.iter(|| black_box(pb_spmv(&a_csc, x, &cfg)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_spmv);
criterion_main!(benches);
