//! Machine-readable performance baseline (`BENCH_pb.json`).
//!
//! The `bench_pb` binary sweeps PB-SpGEMM over thread counts on an R-MAT
//! workload and writes one self-describing JSON document.  Future PRs
//! regenerate the file on comparable hardware and diff the numbers, so the
//! suite has a perf trajectory instead of anecdotes.  Every record carries
//! both the *requested* and the *effective* thread count plus the host's
//! core count — and sweep points running more threads than the host has
//! cores are flagged `oversubscribed`, so downstream plots can exclude
//! points whose "scaling" is just context-switch noise (a 1-core container
//! sweeping 1/2/4 threads produces exactly such points).
//!
//! Each sweep point also embeds a [`Telemetry`] section — the runtime
//! [`PhaseStats`](pb_spgemm::PhaseStats) of a profiled run at that thread
//! count — and `--tune` runs attach a [`TuneReport`] documenting the
//! [`AutoTune`](pb_spgemm::AutoTune) convergence trajectory.

use std::sync::Arc;

use serde::Serialize;

use crate::runner::{measure_in, measure_pb_profile, Algorithm, Telemetry};
use crate::workloads::{rmat_matrix, Workload};
use pb_spgemm::{PbConfig, Workspace};

/// Per-phase wall-clock seconds of one PB-SpGEMM run.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseSeconds {
    /// Symbolic (flop counting + bin sizing) phase.
    pub symbolic: f64,
    /// Expand (outer products into bins) phase.
    pub expand: f64,
    /// Sort (per-bin radix sort) phase.
    pub sort: f64,
    /// Compress (duplicate merge) phase.
    pub compress: f64,
    /// Assemble (CSR write-out) phase.
    pub assemble: f64,
}

/// One point of the thread sweep.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Thread count requested for this point.
    pub threads_requested: usize,
    /// Thread count that actually executed (dedicated pool size).
    pub threads_effective: usize,
    /// `true` when more threads executed than the host has cores: the
    /// point measures oversubscription, not scaling, and plots should
    /// exclude it (on a 1-core host sort can even look *slower* at 2
    /// threads than 1 — that is scheduler noise, not the algorithm).
    pub oversubscribed: bool,
    /// Best wall-clock seconds over the repetitions.
    pub seconds: f64,
    /// Achieved GFLOPS at the best run.
    pub gflops: f64,
    /// Speedup of this point relative to the 1-thread point.
    pub speedup_vs_1t: f64,
    /// Per-phase seconds of one profiled run at this thread count.
    pub phases: PhaseSeconds,
    /// Runtime telemetry of that profiled run.
    pub telemetry: Telemetry,
}

/// One iteration of an autotuning run.
#[derive(Debug, Clone, Serialize)]
pub struct TunePoint {
    /// Iteration index (0 = first multiply).
    pub iteration: usize,
    /// Local-bin width (cache lines) this multiply ran with.
    pub local_bin_lines: usize,
    /// Local-bin capacity (tuples) this multiply ran with.
    pub local_bin_capacity: usize,
    /// Flushes this multiply performed.
    pub flushes: u64,
    /// Mean tuples per flush.
    pub mean_flush_tuples: f64,
    /// Wall-clock seconds of the multiply.
    pub seconds: f64,
}

/// Convergence report of a `bench_pb --tune` run.
#[derive(Debug, Clone, Serialize)]
pub struct TuneReport {
    /// Local-bin width (cache lines) the tuner started from.
    pub start_lines: usize,
    /// Width the tuner converged to.
    pub converged_lines: usize,
    /// Converged width in bytes (what `PbConfig::local_bin_bytes` would be
    /// set to statically).
    pub converged_local_bin_bytes: usize,
    /// Converged capacity in tuples.
    pub converged_local_bin_capacity: usize,
    /// Multiplies executed before convergence (or the cap).
    pub iterations: usize,
    /// Whether the width stopped changing before the iteration cap.
    pub converged: bool,
    /// Grow/shrink steps the policy applied.
    pub adjustments: usize,
    /// Per-iteration trajectory.
    pub history: Vec<TunePoint>,
}

/// The NUMA topology the baseline ran under, as discovered (or forced) at
/// run time — committed alongside the numbers so a reader can tell a real
/// dual-socket measurement from a `PB_NUMA_DOMAINS`-forced emulation.
#[derive(Debug, Clone, Serialize)]
pub struct TopologyInfo {
    /// Domains the host exposed (or the forced count).
    pub domains: usize,
    /// `"sysfs"`, `"forced"` or `"fallback"`.
    pub source: String,
    /// True when the topology was forced via `PB_NUMA_DOMAINS` — the
    /// partitioning ran, but no real bandwidth asymmetry backs it.
    pub forced: bool,
}

impl TopologyInfo {
    /// Snapshot of the detected topology.
    pub fn detect() -> Self {
        let t = pb_spgemm::Topology::detect();
        TopologyInfo {
            domains: t.num_domains(),
            source: match t.source() {
                pb_spgemm::TopologySource::Sysfs => "sysfs",
                pb_spgemm::TopologySource::Forced => "forced",
                pb_spgemm::TopologySource::Fallback => "fallback",
            }
            .to_string(),
            forced: t.is_forced(),
        }
    }
}

/// The whole baseline document.
#[derive(Debug, Clone, Serialize)]
pub struct PbBaseline {
    /// Schema tag for forward compatibility.
    pub schema: &'static str,
    /// Operation measured.
    pub op: &'static str,
    /// Workload description.
    pub workload: String,
    /// Matrix dimension (rows == cols).
    pub n: usize,
    /// Stored nonzeros of the input.
    pub nnz: usize,
    /// flop of the squaring.
    pub flop: u64,
    /// Nonzeros of the product.
    pub nnz_c: usize,
    /// Compression factor `flop / nnz_c`.
    pub cf: f64,
    /// Physical cores the host reported at run time.
    pub host_cores: usize,
    /// Size of the global pool at run time (PB_RAYON_THREADS or cores).
    pub pool_default_threads: usize,
    /// NUMA topology at run time (discovered or forced).
    pub topology: TopologyInfo,
    /// The sweep, ascending in requested threads.
    pub sweep: Vec<SweepPoint>,
    /// Max speedup over the 1-thread point anywhere in the sweep.
    pub best_speedup: f64,
    /// Workspace amortisation on repeated same-shape multiplies (schema
    /// v3): the counters `--verify` gates reuse on.
    pub workspace: WorkspaceReuseReport,
    /// Out-of-core tiled multiply smoke (schema v7): the baseline workload
    /// squared under a starvation budget that forces spills, gated on
    /// bit-identity to the resident product and on the resident-bytes bound.
    pub tiled: TiledOocReport,
    /// Autotuning convergence report (`--tune` runs only).
    pub tune: Option<TuneReport>,
    /// Planner regret sweep (`--planner` runs only, schema v4): every
    /// candidate kernel measured per corpus point, plus the calibrated
    /// planner's pick and its regret vs best-in-hindsight.
    pub planner: Option<crate::planner::PlannerReport>,
}

/// The repeated-multiply smoke: the baseline workload squared several times
/// through one persistent [`Workspace`], proving (not assuming) that the
/// steady state allocates nothing and that reuse leaves the product
/// bit-identical to the fresh-allocation path.
#[derive(Debug, Clone, Serialize)]
pub struct WorkspaceReuseReport {
    /// Multiplies run through the shared workspace.
    pub multiplies: usize,
    /// Workspace-managed bytes the first multiply allocated (populating the
    /// arena).
    pub first_bytes_allocated: u64,
    /// Bytes the *last* multiply allocated — 0 in a healthy steady state.
    pub steady_bytes_allocated: u64,
    /// Bytes the last multiply served from recycled capacity.
    pub steady_bytes_reused: u64,
    /// Buffer acquisitions the last multiply served entirely from recycled
    /// capacity (`--verify` fails when this is 0).
    pub steady_workspace_hits: u64,
    /// Whether a workspace-reusing product matched a fresh-allocation
    /// product bit-for-bit (`rowptr`/`colidx`/`values`), compared on a
    /// 1-thread pool where the schedule — and therefore every float
    /// accumulation order — is deterministic.
    pub bit_identical_to_fresh: bool,
    /// Whether the tracing subsystem was disabled during the smoke.  The
    /// span call sites are always compiled into the pipeline, so the
    /// zero-allocation steady state above proves the *dormant* tracer is
    /// free; `--verify` rejects runs where tracing was left on.
    pub tracer_off: bool,
}

/// The out-of-core tiled multiply smoke: the baseline workload squared
/// through [`SpGemm::multiply_tiled`](pb_spgemm::SpGemm::multiply_tiled)
/// under a byte budget deliberately too small for even one tile, so every
/// tile round-trips through the scratch file.  Unit-valued inputs make the
/// resident comparison *exact* — any bit difference is a real accumulation
/// bug, not float reassociation.
#[derive(Debug, Clone, Serialize)]
pub struct TiledOocReport {
    /// The tile grid (row blocks × inner blocks × column blocks).
    pub grid: (usize, usize, usize),
    /// The resident byte budget the run was starved to.
    pub budget_bytes: u64,
    /// Tile-pair multiplies executed.
    pub tiles_processed: u64,
    /// Bytes written to the scratch file (`--verify` fails when 0: the
    /// starvation budget no longer exercises the spill path).
    pub spill_bytes: u64,
    /// Tiles evicted to scratch at least once.
    pub spilled_tiles: u64,
    /// Tile fetches served from scratch rather than memory.
    pub spill_fetches: u64,
    /// Peak resident tile bytes observed by the store.
    pub resident_high_water: u64,
    /// Largest single tile — the store must admit one tile even over
    /// budget, so the bound below carries this slack.
    pub max_tile_bytes: u64,
    /// Whether `resident_high_water <= budget_bytes + max_tile_bytes`.
    pub within_budget_slack: bool,
    /// Whether the tiled product matched the resident engine's product
    /// bit-for-bit (`rowptr`/`colidx`/`values`) on unit values.
    pub bit_identical_to_resident: bool,
}

/// Starvation budget of the tiled smoke: 64 KiB holds no tile of any
/// baseline-scale product, so spills are guaranteed.
pub const TILED_SMOKE_BUDGET_BYTES: u64 = 64 * 1024;

/// Tile grid of the tiled smoke (fixed rather than derived so the committed
/// numbers are comparable across hosts and budgets).
pub const TILED_SMOKE_GRID: (usize, usize, usize) = (4, 4, 4);

/// Runs the out-of-core tiled smoke on `w`: squares a unit-valued copy both
/// resident and tiled-under-starvation, and reports the spill telemetry
/// plus the bit-identity verdict.
pub fn run_tiled_ooc(w: &Workload) -> TiledOocReport {
    let unit = w.a.map_values(|_| 1.0f64);
    let engine = pb_spgemm::SpGemm::pb();
    let resident = engine.multiply(&unit, &unit);
    let (p, q, r) = TILED_SMOKE_GRID;
    let cfg = pb_spgemm::TiledConfig::new(TILED_SMOKE_BUDGET_BYTES).with_grid(p, q, r);
    let (tiled, report) = engine
        .multiply_tiled(&unit, &unit, &cfg)
        .expect("tiled smoke multiply");
    let bit_identical = resident.rowptr() == tiled.rowptr()
        && resident.colidx() == tiled.colidx()
        && resident.values() == tiled.values();
    TiledOocReport {
        grid: report.grid,
        budget_bytes: report.budget_bytes,
        tiles_processed: report.tiles_processed,
        spill_bytes: report.spill_bytes,
        spilled_tiles: report.spilled_tiles,
        spill_fetches: report.spill_fetches,
        resident_high_water: report.resident_high_water,
        max_tile_bytes: report.max_tile_bytes,
        within_budget_slack: report.within_budget_slack(),
        bit_identical_to_resident: bit_identical,
    }
}

/// Runs the repeated-multiply workspace smoke on `w` (squaring it
/// `multiplies` times through one workspace) and the deterministic
/// 1-thread bit-identity check.
pub fn run_workspace_reuse(w: &Workload, multiplies: usize) -> WorkspaceReuseReport {
    let multiplies = multiplies.max(2);
    let ws = Arc::new(Workspace::new());
    let cfg = PbConfig::default().with_workspace(ws);
    let mut first_alloc = 0u64;
    let mut last = None;
    for i in 0..multiplies {
        let profile = measure_pb_profile(w, &cfg);
        if i == 0 {
            first_alloc = profile.stats.bytes_allocated;
        }
        last = Some(profile);
    }
    let steady = last.expect("at least two multiplies ran").stats;

    // Bit-identity vs the fresh path, on a deterministic 1-thread pool.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("rayon pool");
    let bit_identical = pool.install(|| {
        let fresh = pb_spgemm::SpGemm::pb().multiply_csc(&w.a_csc, &w.a);
        let reusing = pb_spgemm::SpGemm::pb().workspace(Arc::new(Workspace::new()));
        // Two rounds: the second runs entirely on recycled buffers.
        let _ = reusing.multiply_csc(&w.a_csc, &w.a);
        let reused = reusing.multiply_csc(&w.a_csc, &w.a);
        fresh.rowptr() == reused.rowptr()
            && fresh.colidx() == reused.colidx()
            && fresh.values() == reused.values()
    });

    WorkspaceReuseReport {
        multiplies,
        first_bytes_allocated: first_alloc,
        steady_bytes_allocated: steady.bytes_allocated,
        steady_bytes_reused: steady.bytes_reused,
        steady_workspace_hits: steady.workspace_hits,
        bit_identical_to_fresh: bit_identical,
        tracer_off: !pb_spgemm::trace::enabled(),
    }
}

/// Thread counts to sweep: 1, 2, 4, ... up to `max`, always including
/// `max` itself.
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let mut threads = vec![1usize];
    let mut t = 2;
    while t <= max {
        threads.push(t);
        t *= 2;
    }
    if *threads.last().unwrap() != max {
        threads.push(max);
    }
    threads
}

/// Cores the host reports (1 when detection fails).
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The R-MAT workload every baseline artifact is measured on: edge factor
/// 8, seed 42.  `scale` 10 is the CI perf-smoke size; `scale` 12 the
/// committed `BENCH_pb.json` (the README quickstart's size).
pub fn baseline_workload(scale: u32) -> Workload {
    rmat_matrix(scale, 8, 42)
}

/// Runs the baseline sweep on the quickstart-scale workload (R-MAT scale
/// 12, edge factor 8 — the README example's size).
pub fn run_pb_baseline(max_threads: usize, reps: usize) -> PbBaseline {
    run_pb_baseline_scaled(12, max_threads, reps)
}

/// Convenience wrapper: builds [`baseline_workload`] at the given scale and
/// sweeps it.  Callers that also tune or verify on the same workload should
/// build it once and use [`run_pb_baseline_on`] instead (workload
/// construction includes a full symbolic product for `nnz_c`).
pub fn run_pb_baseline_scaled(scale: u32, max_threads: usize, reps: usize) -> PbBaseline {
    run_pb_baseline_on(&baseline_workload(scale), max_threads, reps)
}

/// Runs the baseline sweep: PB-SpGEMM squaring `w` at each thread count.
pub fn run_pb_baseline_on(w: &Workload, max_threads: usize, reps: usize) -> PbBaseline {
    let algo = Algorithm::Pb(PbConfig::default());
    let cores = host_cores();

    let mut sweep = Vec::new();
    let mut t1_seconds = f64::NAN;
    for &t in &thread_sweep(max_threads) {
        // One dedicated pool per sweep point, shared by the timed
        // repetitions *and* the profiled run — previously the profiled run
        // built a second pool of the same width through its config.
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("rayon pool");
        let m = measure_in(w, &algo, reps, Some(t), Some(&pool));
        let profile = pool.install(|| measure_pb_profile(w, &PbConfig::default()));
        if t == 1 {
            t1_seconds = m.seconds;
        }
        let secs = |d: std::time::Duration| d.as_secs_f64();
        sweep.push(SweepPoint {
            threads_requested: t,
            threads_effective: m.threads_effective,
            oversubscribed: m.threads_effective > cores,
            seconds: m.seconds,
            gflops: m.mflops / 1e3,
            speedup_vs_1t: t1_seconds / m.seconds,
            phases: PhaseSeconds {
                symbolic: secs(profile.timings.symbolic),
                expand: secs(profile.timings.expand),
                sort: secs(profile.timings.sort),
                compress: secs(profile.timings.compress),
                assemble: secs(profile.timings.assemble),
            },
            telemetry: Telemetry::from_profile(&profile),
        });
    }
    let best_speedup = sweep
        .iter()
        .map(|p| p.speedup_vs_1t)
        .fold(f64::MIN, f64::max);

    PbBaseline {
        // v7: the top-level `tiled` out-of-core smoke; v5: every sweep
        // point gained an `isa` section (SIMD dispatch level plus kernel
        // counters proving which path ran); v4 added the top-level
        // `planner` regret report (`--planner` runs); v3 the per-point
        // workspace telemetry and the top-level `workspace` reuse report;
        // v2 the per-point `numa` section.
        schema: SCHEMA_TAG,
        op: "spgemm_square",
        workload: w.name.clone(),
        n: w.a.nrows(),
        nnz: w.a.nnz(),
        flop: w.stats.flop,
        nnz_c: w.stats.nnz_c,
        cf: w.stats.cf,
        host_cores: cores,
        pool_default_threads: rayon::current_num_threads(),
        topology: TopologyInfo::detect(),
        sweep,
        best_speedup,
        workspace: run_workspace_reuse(w, WORKSPACE_SMOKE_MULTIPLIES),
        tiled: run_tiled_ooc(w),
        tune: None,
        planner: None,
    }
}

/// Current baseline schema tag (shared with `bench_pb --verify`/`--gate`).
/// v7 added the `tiled` out-of-core smoke (spill telemetry gated on
/// bit-identity and the resident-bytes bound); v6 added
/// `workspace.tracer_off` — the dormant-tracer zero-alloc proof.
pub const SCHEMA_TAG: &str = "pb-bench-baseline/v7";

/// Multiplies of the repeated-multiply workspace smoke: enough that the
/// last one is unambiguously steady-state (the arena is populated by the
/// first and the high-water mark cannot move after it on a fixed shape).
pub const WORKSPACE_SMOKE_MULTIPLIES: usize = 3;

/// Runs repeated multiplies with an auto-tuned config until the local-bin
/// width stops changing (two consecutive stable multiplies) or `max_iters`
/// is hit, and reports the trajectory.
///
/// Starts from `start_lines` cache lines — `bench_pb --tune` uses 1, a
/// deliberately bad setting, so the report shows the policy walking back to
/// a sensible width instead of trivially confirming the default.
pub fn run_autotune(workload: &Workload, start_lines: usize, max_iters: usize) -> TuneReport {
    let cfg = PbConfig::auto_tuned_from_lines(start_lines);
    let tuner_start = cfg.auto_tune().expect("auto-tuned config").lines();
    // One dedicated pool for the whole convergence loop, built once outside
    // it: the loop measures the autotuner walking the local-bin width, and
    // pool construction per multiply would be pure measurement noise.
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(rayon::current_num_threads())
        .build()
        .expect("rayon pool");
    let mut history = Vec::new();
    let mut stable = 0usize;
    let mut converged = false;
    for iteration in 0..max_iters.max(1) {
        let before = cfg.auto_tune().expect("auto-tuned config").lines();
        let profile = pool.install(|| measure_pb_profile(workload, &cfg));
        let after = cfg.auto_tune().expect("auto-tuned config").lines();
        history.push(TunePoint {
            iteration,
            local_bin_lines: before,
            local_bin_capacity: profile.stats.local_bin_capacity,
            flushes: profile.stats.flushes,
            mean_flush_tuples: profile.stats.mean_flush_tuples(),
            seconds: profile.timings.total().as_secs_f64(),
        });
        if after == before {
            stable += 1;
            if stable >= 2 {
                converged = true;
                break;
            }
        } else {
            stable = 0;
        }
    }
    let tuner = cfg.auto_tune().expect("auto-tuned config");
    let converged_bytes = tuner.local_bin_bytes();
    TuneReport {
        start_lines: tuner_start,
        converged_lines: tuner.lines(),
        converged_local_bin_bytes: converged_bytes,
        // Derived from the *final* width, not the last run's capacity: when
        // the loop exits via the iteration cap right after an adjustment,
        // the last history point ran at the pre-adjustment width and would
        // disagree with converged_lines/bytes.
        converged_local_bin_capacity: pb_spgemm::expand::local_bin_capacity::<f64>(converged_bytes),
        iterations: history.len(),
        converged,
        adjustments: tuner.adjustments(),
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_sweep_is_powers_of_two_plus_max() {
        assert_eq!(thread_sweep(1), vec![1]);
        assert_eq!(thread_sweep(4), vec![1, 2, 4]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_sweep(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn baseline_document_is_consistent_and_serializes() {
        // Tiny sweep to keep the test fast; correctness of the numbers is
        // covered by the runner's own tests.
        let doc = run_pb_baseline_scaled(8, 2, 1);
        assert_eq!(doc.schema, SCHEMA_TAG);
        assert_eq!(doc.sweep.len(), 2);
        assert_eq!(doc.sweep[0].threads_requested, 1);
        assert!((doc.sweep[0].speedup_vs_1t - 1.0).abs() < 1e-12);
        assert!(doc.sweep.iter().all(|p| p.seconds > 0.0 && p.gflops > 0.0));
        // Telemetry rides along on every point.
        assert!(doc
            .sweep
            .iter()
            .all(|p| p.telemetry.flushed_tuples == doc.flop));
        // A 1-thread point can never be oversubscribed.
        assert!(!doc.sweep[0].oversubscribed);
        // Oversubscription is exactly "more effective threads than cores".
        let cores = host_cores();
        for p in &doc.sweep {
            assert_eq!(p.oversubscribed, p.threads_effective > cores);
        }
        let json = serde_json::to_string_pretty(&doc).unwrap();
        assert!(json.contains("threads_effective"));
        assert!(json.contains("best_speedup"));
        assert!(json.contains("\"telemetry\""));
        assert!(json.contains("\"oversubscribed\""));
        assert!(json.contains("\"numa\""));
        assert!(json.contains("local_flush_fraction"));
        // The numa section is consistent on every point.
        for p in &doc.sweep {
            assert!(p.telemetry.numa.domains >= 1);
            assert_eq!(
                p.telemetry.numa.local_flushes + p.telemetry.numa.remote_flushes,
                p.telemetry.flushes
            );
        }
        // No --tune / --planner sections on plain runs.
        assert!(json.contains("\"tune\": null"));
        assert!(json.contains("\"planner\": null"));
        // The workspace reuse report always rides along (schema v3) and
        // must show a healthy steady state on a fixed-shape repeat.
        assert!(json.contains("\"workspace\""));
        assert!(json.contains("steady_workspace_hits"));
        // The isa section (schema v5) rides along on every point and names
        // the process-wide dispatch level.
        assert!(json.contains("\"isa\""));
        assert!(json.contains("prefetched_flushes"));
        for p in &doc.sweep {
            assert_eq!(p.telemetry.isa.isa, pb_spgemm::simd::active().name());
        }
        // The tiled out-of-core smoke (schema v7) rides along, spills under
        // the starvation budget, and reproduces the resident product.
        assert!(json.contains("\"tiled\""));
        assert!(json.contains("bit_identical_to_resident"));
        let t = &doc.tiled;
        assert_eq!(t.grid, TILED_SMOKE_GRID);
        assert_eq!(t.budget_bytes, TILED_SMOKE_BUDGET_BYTES);
        assert!(t.tiles_processed >= 1);
        assert!(t.spill_bytes > 0, "starvation budget did not spill: {t:?}");
        assert!(t.spill_fetches > 0);
        assert!(t.within_budget_slack, "{t:?}");
        assert!(t.bit_identical_to_resident, "{t:?}");
        let wsr = &doc.workspace;
        assert!(wsr.multiplies >= 2);
        assert!(wsr.first_bytes_allocated > 0);
        assert_eq!(wsr.steady_bytes_allocated, 0, "steady state allocates");
        assert!(wsr.steady_bytes_reused > 0);
        assert!(wsr.steady_workspace_hits > 0);
        assert!(wsr.bit_identical_to_fresh);
    }

    #[test]
    fn autotune_report_converges_from_a_bad_start() {
        let w = rmat_matrix(8, 8, 42);
        let report = run_autotune(&w, 1, 12);
        assert_eq!(report.start_lines, 1);
        assert!(report.converged, "tuner did not settle: {report:?}");
        // From 1 line the policy can only grow; on this workload it walks
        // to the paper's default width.
        assert!(report.converged_lines >= report.start_lines);
        assert_eq!(report.iterations, report.history.len());
        assert!(report.history[0].local_bin_lines == 1);
        // Trajectory is monotone non-decreasing (pure growth run).
        assert!(report
            .history
            .windows(2)
            .all(|w| w[1].local_bin_lines >= w[0].local_bin_lines));
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("converged_local_bin_bytes"));
    }
}
