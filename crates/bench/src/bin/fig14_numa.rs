//! Fig. 14: effect of a degraded memory domain (the paper's dual-socket
//! NUMA experiment).
//!
//! The evaluation machine has a single NUMA domain, so cross-socket
//! contention is **emulated** by running each algorithm while background
//! threads continuously stream a large buffer, stealing memory bandwidth —
//! the same effect a remote socket's traffic has on the paper's testbed.
//! The claim under test is qualitative: PB-SpGEMM, being bandwidth-bound,
//! loses a larger fraction of its performance than the latency-bound column
//! algorithms when bandwidth is taken away.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pb_bench::runner::{measure, Algorithm};
use pb_bench::workloads::{er_matrix, rmat_matrix};
use pb_bench::{fmt, print_table, quick_mode, repetitions, write_json, Table};

/// Starts `nthreads` background threads that stream a large buffer until the
/// returned flag is cleared, stealing memory bandwidth from the foreground.
fn start_bandwidth_thief(nthreads: usize) -> (Arc<AtomicBool>, Vec<std::thread::JoinHandle<()>>) {
    let run = Arc::new(AtomicBool::new(true));
    let mut handles = Vec::new();
    for t in 0..nthreads.max(1) {
        let run = Arc::clone(&run);
        handles.push(std::thread::spawn(move || {
            let n = 1 << 22; // 32 MiB of f64 per thief
            let mut buf = vec![t as f64; n];
            let mut acc = 0.0f64;
            while run.load(Ordering::Relaxed) {
                for chunk in buf.chunks_mut(4096) {
                    for v in chunk.iter_mut() {
                        acc += *v;
                        *v = acc;
                    }
                }
            }
            assert!(acc.is_finite() || acc.is_infinite());
        }));
    }
    (run, handles)
}

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    // Report the *real* topology first: on a genuine multi-socket host the
    // discovered domains are what the domain-partitioned binning exploits;
    // on single-domain hosts (like this container) the bandwidth-thief
    // emulation below remains the fallback probe, documented as such.
    let topology = pb_spgemm::Topology::detect();
    println!("discovered topology: {}", topology.describe());
    for d in topology.domains() {
        println!("  domain {}: {} CPU(s) {:?}", d.id, d.cpus.len(), d.cpus);
    }
    if topology.num_domains() == 1 {
        println!(
            "  single domain: cross-socket contention below is emulated by \
             bandwidth-thief threads (the paper's Fig. 14 ran on two real sockets)"
        );
    }
    let quick = quick_mode();
    let reps = repetitions();
    let (scale, ef) = if quick { (11, 8) } else { (14, 16) };
    let workloads = [er_matrix(scale, ef, 5), rmat_matrix(scale, ef, 5)];
    let algorithms = Algorithm::paper_set();
    // Genuine scaling curves: sweep real thread counts up to the pool size
    // (which honours PB_RAYON_THREADS) instead of a single full-pool run.
    let threads = pb_bench::baseline::thread_sweep(rayon::current_num_threads());

    let mut table = Table::new(
        "Fig. 14 — full-bandwidth vs bandwidth-contended performance per thread count \
         (contention emulates the remote-socket traffic of the paper's dual-socket run)",
        &[
            "workload",
            "algorithm",
            "threads",
            "MFLOPS (full bw)",
            "MFLOPS (contended)",
            "retained fraction",
        ],
    );
    let mut records = Vec::new();

    for w in &workloads {
        // Full-bandwidth sweep first.
        let full: Vec<_> = algorithms
            .iter()
            .flat_map(|a| threads.iter().map(|&t| measure(w, a, reps, Some(t))))
            .collect();

        // Contended sweep: one thief per available core.
        let thieves = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let (flag, handles) = start_bandwidth_thief(thieves);
        let contended: Vec<_> = algorithms
            .iter()
            .flat_map(|a| threads.iter().map(|&t| measure(w, a, reps, Some(t))))
            .collect();
        flag.store(false, Ordering::Relaxed);
        for h in handles {
            let _ = h.join();
        }

        for (f, c) in full.iter().zip(&contended) {
            let retained = c.mflops / f.mflops;
            table.push_row(vec![
                w.name.clone(),
                f.algorithm.clone(),
                f.threads_effective.to_string(),
                fmt(f.mflops, 0),
                fmt(c.mflops, 0),
                fmt(retained, 2),
            ]);
            records.push((
                w.name.clone(),
                f.algorithm.clone(),
                f.threads_effective,
                f.mflops,
                c.mflops,
                retained,
            ));
        }
    }
    print_table(&table);
    write_json("fig14_numa", &records);
    write_json(
        "fig14_numa_topology",
        &(
            topology.num_domains(),
            format!("{:?}", topology.source()),
            topology.is_forced(),
        ),
    );
    println!(
        "expected shape (paper Fig. 14 / Sec. V-D): every algorithm slows down under contention, \
         and PB-SpGEMM retains a smaller fraction of its performance than the column algorithms \
         because it depends on saturating the memory bandwidth."
    );
}
