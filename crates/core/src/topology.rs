//! NUMA topology discovery and the worker→domain / work→domain mappings
//! behind domain-partitioned binning.
//!
//! The paper's evaluation (Table VII, Fig. 14) shows PB-SpGEMM is
//! bandwidth-bound and loses disproportionately when its streams cross
//! sockets (~33 GB/s remote vs ~50 GB/s local on the dual-socket Skylake
//! testbed).  The countermeasure implemented here is to partition the
//! expand phase's *global bins* by NUMA domain: the symbolic phase splits
//! `A`'s columns into one flop-balanced range per domain, every global bin
//! gets one exactly-sized segment per domain, and a domain's workers drain
//! their own column range first — so the propagation-blocked flushes (the
//! dominant memory traffic) write domain-local segments, while
//! [`PhaseStats`](crate::profile::PhaseStats) counts local vs remote
//! flushes so the locality is *measured*, never assumed.
//!
//! A [`Topology`] is discovered from `/sys/devices/system/node` (one
//! domain per NUMA node, with its CPU list), can be **forced** with
//! `PB_NUMA_DOMAINS=k` for deterministic testing on single-domain hosts,
//! and falls back to a single domain when neither source applies.  The
//! low-level discovery primitives live in the vendored `rayon` pool (see
//! [`rayon::domains`](../../rayon/domains/index.html)), because the pool
//! itself labels its workers with domain ids; this module is the
//! algorithm-facing view.

use rayon::domains as rdomains;

/// Where a [`Topology`]'s domain count came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySource {
    /// Forced via the `PB_NUMA_DOMAINS` environment variable — an
    /// *emulated* topology: work and bins are partitioned as if the
    /// domains were real, but no CPU affinity is applied and the
    /// bandwidth asymmetry itself is absent on a single-socket host.
    Forced,
    /// Discovered from `/sys/devices/system/node`.
    Sysfs,
    /// Neither source available: a single catch-all domain.
    Fallback,
}

/// One NUMA domain of the machine (or of a forced topology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaDomain {
    /// Domain id, dense from 0.
    pub id: usize,
    /// CPUs belonging to the domain (empty for forced/fallback domains,
    /// where no real CPU sets exist).
    pub cpus: Vec<usize>,
}

/// The machine's NUMA domains as seen by PB-SpGEMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    domains: Vec<NumaDomain>,
    source: TopologySource,
}

impl Topology {
    /// Discovers the topology: `PB_NUMA_DOMAINS` wins when set (forced),
    /// then the sysfs NUMA nodes, then a single-domain fallback.
    pub fn detect() -> Topology {
        if let Some(k) = rdomains::forced_domains() {
            return Topology::forced(k);
        }
        match rdomains::sysfs_domains() {
            Some(nodes) => Topology {
                domains: nodes
                    .into_iter()
                    .enumerate()
                    .map(|(id, cpus)| NumaDomain { id, cpus })
                    .collect(),
                source: TopologySource::Sysfs,
            },
            None => Topology::fallback(),
        }
    }

    /// A forced topology of `k` domains (what `PB_NUMA_DOMAINS=k` yields).
    pub fn forced(k: usize) -> Topology {
        Topology {
            domains: (0..k.max(1))
                .map(|id| NumaDomain {
                    id,
                    cpus: Vec::new(),
                })
                .collect(),
            source: TopologySource::Forced,
        }
    }

    /// The single-domain fallback.
    pub fn fallback() -> Topology {
        Topology {
            domains: vec![NumaDomain {
                id: 0,
                cpus: Vec::new(),
            }],
            source: TopologySource::Fallback,
        }
    }

    /// Number of domains.
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// The domains, in id order.
    pub fn domains(&self) -> &[NumaDomain] {
        &self.domains
    }

    /// Where the domain count came from.
    pub fn source(&self) -> TopologySource {
        self.source
    }

    /// Whether this topology was forced (emulated) rather than discovered.
    pub fn is_forced(&self) -> bool {
        self.source == TopologySource::Forced
    }

    /// The domain count a pool of `threads` threads can actually use:
    /// never more domains than threads, never fewer than one.  This is the
    /// clamp the vendored pool applies when it labels its workers, so a
    /// multiply partitioned with this value agrees with the worker ids.
    pub fn effective_domains(&self, threads: usize) -> usize {
        self.num_domains().clamp(1, threads.max(1))
    }

    /// The domain of worker `worker` in a pool of `threads` threads over
    /// this topology — the same contiguous-block formula the vendored pool
    /// uses ([`rayon::domain_for_worker`]), re-exposed here so callers can
    /// reason about placement without reaching into the pool.
    pub fn worker_domain(&self, worker: usize, threads: usize) -> usize {
        rdomains::domain_for_worker(worker, threads, self.num_domains())
    }

    /// One-line human-readable description (used by the figure binaries).
    pub fn describe(&self) -> String {
        let cpus: usize = self.domains.iter().map(|d| d.cpus.len()).sum();
        match self.source {
            TopologySource::Sysfs => format!(
                "{} NUMA domain(s) from sysfs, {} CPU(s)",
                self.num_domains(),
                cpus
            ),
            TopologySource::Forced => format!(
                "{} domain(s) forced via {} (emulated topology)",
                self.num_domains(),
                rdomains::DOMAINS_ENV
            ),
            TopologySource::Fallback => "1 domain (fallback: no sysfs NUMA hierarchy)".to_string(),
        }
    }
}

/// Reads `PB_NUMA_DOMAINS` with a typed failure: `Ok(None)` when unset,
/// `Ok(Some(k))` for a positive integer, and a
/// [`PbError`](crate::PbError) for anything else.
///
/// The vendored pool's own reader ([`rayon::domains::forced_domains`])
/// deliberately *ignores* malformed values — best-effort discovery must
/// never abort a multiply — which means a typo like `PB_NUMA_DOMAINS=two`
/// silently runs single-domain.  A resident service (or `validate_env`)
/// calls this at startup so the typo is a refusal instead.
pub fn try_forced_domains() -> Result<Option<usize>, crate::PbError> {
    match std::env::var(rdomains::DOMAINS_ENV) {
        Err(_) => Ok(None),
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(crate::PbError::InvalidEnv {
                var: rdomains::DOMAINS_ENV,
                value: v,
                expected: "a positive integer domain count",
            }),
        },
    }
}

/// The range owning item `index` under the cumulative `starts` boundaries
/// produced by [`balanced_boundaries`] (`parts + 1` entries): the last
/// range whose start is at or before `index`, clamped into `0..parts`
/// (empty ranges are skipped by construction — their start equals the next
/// range's).  This single definition is shared by the symbolic phase's
/// (bin, domain) sizing pass,
/// [`Symbolic::domain_of_col`](crate::symbolic::Symbolic::domain_of_col)
/// and the expand phase's flush routing, so the three can never disagree
/// on a column's owning domain — a disagreement would overflow a
/// reservation sub-segment.
#[inline]
pub fn domain_of_index(starts: &[usize], parts: usize, index: usize) -> usize {
    if parts <= 1 {
        return 0;
    }
    starts
        .partition_point(|&s| s <= index)
        .saturating_sub(1)
        .min(parts - 1)
}

/// Splits `weights.len()` items into `parts` contiguous ranges of roughly
/// equal total weight; returns the `parts + 1` cumulative item boundaries
/// (first 0, last `weights.len()`).
///
/// Used by the symbolic phase to cut `A`'s columns into per-domain ranges
/// balanced by flop, so every domain's workers finish their own share at
/// about the same time and cross-domain stealing (the source of remote
/// flushes) stays rare.  Greedy scan: a boundary is placed once the running
/// weight reaches the ideal share, which bounds every range's weight by the
/// ideal share plus one item's weight.
pub fn balanced_boundaries(weights: &[u64], parts: usize) -> Vec<usize> {
    let parts = parts.max(1);
    let n = weights.len();
    let total: u64 = weights.iter().sum();
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0usize);
    let mut acc = 0u64;
    let mut placed = 1usize; // boundaries placed so far, including the 0
    for (i, &w) in weights.iter().enumerate() {
        // Remaining parts must each get at least the chance of one item.
        let target = (total * placed as u64).div_ceil(parts as u64);
        if placed < parts && acc >= target && i > *bounds.last().unwrap() {
            bounds.push(i);
            placed += 1;
        }
        acc += w;
    }
    while bounds.len() < parts {
        // Degenerate tails (fewer items than parts, or all weight up
        // front): pad with empty ranges at the end.
        bounds.push(n);
    }
    bounds.push(n);
    debug_assert_eq!(bounds.len(), parts + 1);
    debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_yields_at_least_one_domain() {
        let t = Topology::detect();
        assert!(t.num_domains() >= 1);
        assert!(!t.describe().is_empty());
        assert_eq!(t.domains()[0].id, 0);
    }

    #[test]
    fn forced_and_fallback_topologies() {
        let f = Topology::forced(4);
        assert_eq!(f.num_domains(), 4);
        assert!(f.is_forced());
        assert_eq!(f.source(), TopologySource::Forced);
        assert!(f.describe().contains("forced"));
        assert_eq!(Topology::forced(0).num_domains(), 1, "clamped to one");

        let s = Topology::fallback();
        assert_eq!(s.num_domains(), 1);
        assert!(!s.is_forced());
    }

    #[test]
    fn effective_domains_clamp_to_threads() {
        let t = Topology::forced(4);
        assert_eq!(t.effective_domains(1), 1);
        assert_eq!(t.effective_domains(2), 2);
        assert_eq!(t.effective_domains(8), 4);
        assert_eq!(t.effective_domains(0), 1);
    }

    #[test]
    fn worker_domain_matches_the_pool_formula() {
        let t = Topology::forced(2);
        let domains: Vec<usize> = (0..4).map(|w| t.worker_domain(w, 4)).collect();
        assert_eq!(domains, vec![0, 0, 1, 1]);
        assert_eq!(t.worker_domain(0, 1), 0);
    }

    #[test]
    fn balanced_boundaries_split_even_weights_evenly() {
        let w = vec![1u64; 8];
        assert_eq!(balanced_boundaries(&w, 2), vec![0, 4, 8]);
        assert_eq!(balanced_boundaries(&w, 4), vec![0, 2, 4, 6, 8]);
        assert_eq!(balanced_boundaries(&w, 1), vec![0, 8]);
    }

    #[test]
    fn balanced_boundaries_track_skewed_weights() {
        // All the weight up front: the first range must stay narrow.
        let w = vec![100u64, 1, 1, 1, 1, 1, 1, 1];
        let b = balanced_boundaries(&w, 2);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], 0);
        assert_eq!(*b.last().unwrap(), 8);
        let first: u64 = w[b[0]..b[1]].iter().sum();
        let second: u64 = w[b[1]..b[2]].iter().sum();
        // The heavy item cannot be split, but nothing extra piles on top.
        assert_eq!(first, 100);
        assert_eq!(second, 7);
    }

    #[test]
    fn balanced_boundaries_degenerate_inputs() {
        assert_eq!(balanced_boundaries(&[], 3), vec![0, 0, 0, 0]);
        assert_eq!(balanced_boundaries(&[5], 3), vec![0, 1, 1, 1]);
        assert_eq!(balanced_boundaries(&[0, 0, 0], 2), vec![0, 1, 3]);
        // parts = 0 clamps to one range.
        assert_eq!(balanced_boundaries(&[1, 2], 0), vec![0, 2]);
    }

    #[test]
    fn balanced_boundaries_cover_every_item_exactly_once() {
        let w: Vec<u64> = (0..97).map(|i| (i * 37 % 19) as u64).collect();
        for parts in [1usize, 2, 3, 5, 8] {
            let b = balanced_boundaries(&w, parts);
            assert_eq!(b.len(), parts + 1);
            assert_eq!(b[0], 0);
            assert_eq!(*b.last().unwrap(), w.len());
            assert!(b.windows(2).all(|x| x[0] <= x[1]));
            let covered: u64 = b
                .windows(2)
                .map(|x| w[x[0]..x[1]].iter().sum::<u64>())
                .sum();
            assert_eq!(covered, w.iter().sum::<u64>());
        }
    }
}
