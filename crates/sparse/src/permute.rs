//! Row/column permutations.
//!
//! Used by the generators (to shuffle structured matrices) and by the
//! load-balance experiments (a random row permutation spreads skewed rows
//! across PB-SpGEMM's propagation bins).

use crate::csr::Csr;
use crate::error::SparseError;
use crate::{Index, Scalar};

/// A permutation of `n` items: `perm[new_index] = old_index`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    forward: Vec<Index>,
}

impl Permutation {
    /// The identity permutation on `n` items.
    pub fn identity(n: usize) -> Self {
        Permutation {
            forward: (0..n as Index).collect(),
        }
    }

    /// Builds a permutation from `perm[new] = old`, validating that it is a
    /// bijection on `0..perm.len()`.
    pub fn from_vec(perm: Vec<Index>) -> Result<Self, SparseError> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            let p = p as usize;
            if p >= n || seen[p] {
                return Err(SparseError::MalformedOffsets {
                    detail: format!("permutation vector is not a bijection on 0..{n}"),
                });
            }
            seen[p] = true;
        }
        Ok(Permutation { forward: perm })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// `perm[new] = old` mapping as a slice.
    pub fn as_slice(&self) -> &[Index] {
        &self.forward
    }

    /// The inverse permutation (`inv[old] = new`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0 as Index; self.len()];
        for (new, &old) in self.forward.iter().enumerate() {
            inv[old as usize] = new as Index;
        }
        Permutation { forward: inv }
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.forward
            .iter()
            .enumerate()
            .all(|(i, &p)| i as Index == p)
    }
}

/// Permutes the rows of a CSR matrix: row `i` of the result is row
/// `perm[i]` of the input.
pub fn permute_rows<T: Scalar>(m: &Csr<T>, perm: &Permutation) -> Csr<T> {
    assert_eq!(
        perm.len(),
        m.nrows(),
        "row permutation length must equal nrows"
    );
    let mut rowptr = Vec::with_capacity(m.nrows() + 1);
    rowptr.push(0usize);
    let mut colidx = Vec::with_capacity(m.nnz());
    let mut values = Vec::with_capacity(m.nnz());
    for &old in perm.as_slice() {
        let (cols, vals) = m.row(old as usize);
        colidx.extend_from_slice(cols);
        values.extend_from_slice(vals);
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(m.nrows(), m.ncols(), rowptr, colidx, values)
}

/// Permutes the columns of a CSR matrix: column `j` of the input becomes
/// column `inv(perm)[j]` of the result, so that
/// `permute_cols(M, p).get(i, new) == M.get(i, p[new])`.
pub fn permute_cols<T: Scalar>(m: &Csr<T>, perm: &Permutation) -> Csr<T> {
    assert_eq!(
        perm.len(),
        m.ncols(),
        "column permutation length must equal ncols"
    );
    let inv = perm.inverse();
    let mut out = m.clone();
    let (nrows, ncols, rowptr, mut colidx, values) = out.into_parts();
    for c in &mut colidx {
        *c = inv.as_slice()[*c as usize];
    }
    out = Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values);
    out.sort_indices();
    out
}

/// Applies the same permutation to rows and columns (symmetric relabeling of
/// a graph's vertices).
pub fn permute_symmetric<T: Scalar>(m: &Csr<T>, perm: &Permutation) -> Csr<T> {
    permute_cols(&permute_rows(m, perm), perm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr<f64> {
        // [ 1 2 0 ]
        // [ 0 3 0 ]
        // [ 0 0 4 ]
        Coo::from_entries(
            3,
            3,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0), (2, 2, 4.0)],
        )
        .unwrap()
        .to_csr()
    }

    #[test]
    fn identity_permutation_is_noop() {
        let m = sample();
        let p = Permutation::identity(3);
        assert!(p.is_identity());
        assert_eq!(permute_rows(&m, &p), m);
        assert_eq!(permute_cols(&m, &p), m);
        assert_eq!(permute_symmetric(&m, &p), m);
    }

    #[test]
    fn from_vec_validates_bijection() {
        assert!(Permutation::from_vec(vec![0, 1, 2]).is_ok());
        assert!(Permutation::from_vec(vec![0, 0, 2]).is_err());
        assert!(Permutation::from_vec(vec![0, 3, 1]).is_err());
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let inv = p.inverse();
        for new in 0..3usize {
            let old = p.as_slice()[new] as usize;
            assert_eq!(inv.as_slice()[old] as usize, new);
        }
    }

    #[test]
    fn permute_rows_reorders_rows() {
        let m = sample();
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        let r = permute_rows(&m, &p);
        assert_eq!(r.get(0, 2), Some(4.0)); // old row 2
        assert_eq!(r.get(1, 0), Some(1.0)); // old row 0
        assert_eq!(r.get(2, 1), Some(3.0)); // old row 1
        assert_eq!(r.nnz(), m.nnz());
    }

    #[test]
    fn permute_cols_matches_definition() {
        let m = sample();
        let p = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let r = permute_cols(&m, &p);
        for i in 0..3 {
            for new in 0..3usize {
                let old = p.as_slice()[new] as usize;
                assert_eq!(r.get(i, new), m.get(i, old));
            }
        }
        assert!(r.has_sorted_indices());
    }

    #[test]
    fn symmetric_permutation_preserves_diagonal_multiset() {
        let m = sample();
        let p = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let r = permute_symmetric(&m, &p);
        let mut diag_m: Vec<Option<f64>> = (0..3).map(|i| m.get(i, i)).collect();
        let mut diag_r: Vec<Option<f64>> = (0..3).map(|i| r.get(i, i)).collect();
        diag_m.sort_by(|a, b| a.partial_cmp(b).unwrap());
        diag_r.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(diag_m, diag_r);
    }
}
