//! Criterion micro-benchmarks: PB-SpGEMM against every column baseline on
//! fixed ER / R-MAT / banded workloads (the micro-scale counterpart of
//! Figs. 7, 9 and 11), plus the end-to-end SIMD dispatch ablation (the full
//! PB multiply pinned to each ISA level the host supports).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pb_baseline::Baseline;
use pb_gen::{banded, erdos_renyi_square, rmat_square};
use pb_sparse::Csr;
use pb_spgemm::{simd, PbConfig, SpGemm};

fn workloads() -> Vec<(&'static str, Csr<f64>)> {
    vec![
        ("er_s12_ef8", erdos_renyi_square(12, 8, 1)),
        ("rmat_s12_ef8", rmat_square(12, 8, 2)),
        ("banded_4096_w33", banded(4096, 33, 3)),
    ]
}

fn bench_spgemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm");
    group.sample_size(10);
    for (name, a) in workloads() {
        let a_csc = a.to_csc();
        group.bench_with_input(BenchmarkId::new("PB-SpGEMM", name), &a, |bench, a| {
            let engine = SpGemm::pb();
            bench.iter(|| black_box(engine.multiply_csc(&a_csc, a)));
        });
        for baseline in Baseline::paper_set() {
            group.bench_with_input(BenchmarkId::new(baseline.name(), name), &a, |bench, a| {
                bench.iter(|| black_box(baseline.multiply(a, a)));
            });
        }
    }
    group.finish();
}

/// End-to-end ISA ablation: the whole PB multiply forced to each supported
/// dispatch level on the R-MAT workload (the sort-heaviest of the three).
fn bench_spgemm_isa(c: &mut Criterion) {
    let mut group = c.benchmark_group("spgemm_isa");
    group.sample_size(10);
    let a = rmat_square(12, 8, 2);
    let a_csc = a.to_csc();
    for isa in simd::Isa::supported() {
        let engine = SpGemm::pb().config(PbConfig::default().with_simd(isa));
        group.bench_function(BenchmarkId::from_parameter(isa.name()), |bench| {
            bench.iter(|| black_box(engine.multiply_csc(&a_csc, &a)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spgemm, bench_spgemm_isa);
criterion_main!(benches);
