//! Hardware description of the machine running the experiments (Table IV).
//!
//! The paper reports CPU model, socket/core counts, clock, cache sizes and
//! memory size for its Skylake-SP and POWER9 testbeds.  This module collects
//! the same quantities from the running Linux system (with conservative
//! fallbacks when a value is unavailable, e.g. inside a container).

use std::fs;
use std::path::Path;

use serde::Serialize;

/// A description of the machine, mirroring the rows of Table IV.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MachineInfo {
    /// CPU model string (from `/proc/cpuinfo`), or "unknown".
    pub cpu_model: String,
    /// Target architecture the binary was compiled for.
    pub architecture: &'static str,
    /// Logical CPUs available to this process.
    pub logical_cpus: usize,
    /// L2 cache size per core in bytes, if discoverable.
    pub l2_bytes: Option<usize>,
    /// Last-level (L3) cache size in bytes, if discoverable.
    pub l3_bytes: Option<usize>,
    /// Total system memory in bytes, if discoverable.
    pub memory_bytes: Option<u64>,
}

impl MachineInfo {
    /// Collects the machine description from the running system.
    pub fn detect() -> Self {
        MachineInfo {
            cpu_model: read_cpu_model().unwrap_or_else(|| "unknown".to_string()),
            architecture: std::env::consts::ARCH,
            logical_cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            l2_bytes: read_cache_size("/sys/devices/system/cpu/cpu0/cache", 2),
            l3_bytes: read_cache_size("/sys/devices/system/cpu/cpu0/cache", 3),
            memory_bytes: read_total_memory(),
        }
    }

    /// Renders the machine description as Table IV-style rows.
    pub fn table_rows(&self) -> Vec<(String, String)> {
        let fmt_bytes = |b: Option<usize>| match b {
            Some(v) if v >= 1024 * 1024 => format!("{} MiB", v / (1024 * 1024)),
            Some(v) => format!("{} KiB", v / 1024),
            None => "unknown".to_string(),
        };
        vec![
            ("CPU Model".to_string(), self.cpu_model.clone()),
            ("Architecture".to_string(), self.architecture.to_string()),
            ("Logical CPUs".to_string(), self.logical_cpus.to_string()),
            ("L2 cache".to_string(), fmt_bytes(self.l2_bytes)),
            ("L3 cache".to_string(), fmt_bytes(self.l3_bytes)),
            (
                "Memory Size".to_string(),
                match self.memory_bytes {
                    Some(b) => format!("{:.1} GiB", b as f64 / (1u64 << 30) as f64),
                    None => "unknown".to_string(),
                },
            ),
        ]
    }

    /// The L2 capacity to use for bin sizing: the detected value or the
    /// paper's Skylake default of 1 MiB.
    pub fn l2_or_default(&self) -> usize {
        self.l2_bytes.unwrap_or(1024 * 1024)
    }
}

fn read_cpu_model() -> Option<String> {
    let text = fs::read_to_string("/proc/cpuinfo").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("model name") {
            return Some(rest.trim_start_matches([' ', '\t', ':']).trim().to_string());
        }
    }
    None
}

fn read_total_memory() -> Option<u64> {
    let text = fs::read_to_string("/proc/meminfo").ok()?;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("MemTotal:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Reads the size of the cache at `level` from the sysfs cache directory.
fn read_cache_size(base: &str, level: u32) -> Option<usize> {
    let base = Path::new(base);
    for idx in 0..8 {
        let dir = base.join(format!("index{idx}"));
        let lvl: u32 = fs::read_to_string(dir.join("level"))
            .ok()?
            .trim()
            .parse()
            .ok()?;
        if lvl != level {
            continue;
        }
        let size = fs::read_to_string(dir.join("size")).ok()?;
        return parse_cache_size(size.trim());
    }
    None
}

/// Parses strings like "1024K", "32M" or "65536" into bytes.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    if let Some(num) = s.strip_suffix(['K', 'k']) {
        return num.trim().parse::<usize>().ok().map(|v| v * 1024);
    }
    if let Some(num) = s.strip_suffix(['M', 'm']) {
        return num.trim().parse::<usize>().ok().map(|v| v * 1024 * 1024);
    }
    s.parse::<usize>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_never_panics_and_reports_at_least_one_cpu() {
        let info = MachineInfo::detect();
        assert!(info.logical_cpus >= 1);
        assert!(!info.architecture.is_empty());
        assert!(info.l2_or_default() >= 4096);
        let rows = info.table_rows();
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().any(|(k, _)| k == "CPU Model"));
    }

    #[test]
    fn cache_size_strings_parse() {
        assert_eq!(parse_cache_size("1024K"), Some(1024 * 1024));
        assert_eq!(parse_cache_size("32M"), Some(32 * 1024 * 1024));
        assert_eq!(parse_cache_size("65536"), Some(65536));
        assert_eq!(parse_cache_size("512k"), Some(512 * 1024));
        assert_eq!(parse_cache_size("junk"), None);
    }

    #[test]
    fn table_rows_format_memory_in_gib() {
        let info = MachineInfo {
            cpu_model: "Test CPU".into(),
            architecture: "x86_64",
            logical_cpus: 8,
            l2_bytes: Some(1024 * 1024),
            l3_bytes: Some(32 * 1024 * 1024),
            memory_bytes: Some(16 * (1u64 << 30)),
        };
        let rows = info.table_rows();
        let mem = rows.iter().find(|(k, _)| k == "Memory Size").unwrap();
        assert!(mem.1.contains("16.0 GiB"));
        let l2 = rows.iter().find(|(k, _)| k == "L2 cache").unwrap();
        assert_eq!(l2.1, "1 MiB");
    }
}
