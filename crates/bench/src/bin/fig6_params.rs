//! Fig. 6: impact of the PB-SpGEMM tuning parameters.
//!
//! * Fig. 6a — expand-phase bandwidth as a function of the local-bin width;
//! * Fig. 6b — expand- and sort-phase bandwidth as a function of the number
//!   of global bins.
//!
//! Pass `--part width` or `--part nbins` to run only one sweep.

use pb_bench::workloads::er_matrix;
use pb_bench::{fmt, print_table, quick_mode, repetitions, write_json, Table};
use pb_spgemm::{PbConfig, Phase};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let args: Vec<String> = std::env::args().collect();
    let part = args
        .iter()
        .position(|a| a == "--part")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("both")
        .to_string();

    // The paper uses ER scale 20 / edge factor 4; scale down for small
    // machines while keeping the same density.
    let (scale, ef) = if quick_mode() { (12, 4) } else { (16, 4) };
    let w = er_matrix(scale, ef, 20);
    println!(
        "workload: {} (flop = {}, cf = {:.2})\n",
        w.name, w.stats.flop, w.stats.cf
    );
    let reps = repetitions();

    if part == "width" || part == "both" {
        let mut table = Table::new(
            "Fig. 6a — expand bandwidth vs local bin width (ER, nbins auto)",
            &[
                "local bin width (bytes)",
                "expand time (ms)",
                "expand bandwidth (GB/s)",
            ],
        );
        let mut points = Vec::new();
        for width in [64usize, 128, 256, 512, 1024, 2048, 4096] {
            let cfg = PbConfig::default().with_local_bin_bytes(width);
            let mut best: Option<pb_spgemm::SpGemmProfile> = None;
            for _ in 0..reps {
                let p = pb_bench::measure_pb_profile(&w, &cfg);
                if best.is_none_or(|b| p.timings.expand < b.timings.expand) {
                    best = Some(p);
                }
            }
            let p = best.unwrap();
            table.push_row(vec![
                width.to_string(),
                fmt(p.timings.expand.as_secs_f64() * 1e3, 2),
                fmt(p.phase_bandwidth_gbps(Phase::Expand), 2),
            ]);
            points.push((width, p.phase_bandwidth_gbps(Phase::Expand)));
        }
        print_table(&table);
        write_json("fig6a_local_bin_width", &points);
    }

    if part == "nbins" || part == "both" {
        let mut table = Table::new(
            "Fig. 6b — expand / sort bandwidth vs number of bins (ER, 512-byte local bins)",
            &[
                "nbins",
                "expand bw (GB/s)",
                "sort bw (GB/s)",
                "expand time (ms)",
                "sort time (ms)",
                "key bytes",
            ],
        );
        let mut points = Vec::new();
        let nbins_list: &[usize] = if quick_mode() {
            &[16, 64, 256, 1024]
        } else {
            &[16, 64, 256, 1024, 4096, 16384]
        };
        for &nbins in nbins_list {
            let cfg = PbConfig::default().with_nbins(nbins);
            let mut best: Option<pb_spgemm::SpGemmProfile> = None;
            for _ in 0..reps {
                let p = pb_bench::measure_pb_profile(&w, &cfg);
                if best.is_none_or(|b| p.timings.total() < b.timings.total()) {
                    best = Some(p);
                }
            }
            let p = best.unwrap();
            table.push_row(vec![
                nbins.to_string(),
                fmt(p.phase_bandwidth_gbps(Phase::Expand), 2),
                fmt(p.phase_bandwidth_gbps(Phase::Sort), 2),
                fmt(p.timings.expand.as_secs_f64() * 1e3, 2),
                fmt(p.timings.sort.as_secs_f64() * 1e3, 2),
                p.key_bytes.to_string(),
            ]);
            points.push((
                nbins,
                p.phase_bandwidth_gbps(Phase::Expand),
                p.phase_bandwidth_gbps(Phase::Sort),
            ));
        }
        print_table(&table);
        write_json("fig6b_nbins", &points);
        println!(
            "expected shape (paper Fig. 6): small local bins waste cache lines (low expand bw); \
             more bins keep the sort in cache (sort bw rises) but shrink flush granularity \
             (expand bw eventually drops)."
        );
    }
}
