//! Integration tests for the extension crates: masked and balanced-bin
//! PB-SpGEMM, the SpMV kernels, and the graph-analytics layer, all exercised
//! through the public facade exactly as a downstream user would.

use pb_spgemm_suite::graph::{
    self, betweenness_centrality, count_triangles, markov_cluster, MclConfig,
};
use pb_spgemm_suite::prelude::*;
use pb_spgemm_suite::sparse::ops::mask_by_pattern;
use pb_spgemm_suite::sparse::{binfmt, reference};
use pb_spgemm_suite::spgemm::BinMapping;

/// Engine-backed stand-in for the retired `pb_spgemm::multiply` free
/// function: call sites stay unchanged while routing through the unified
/// [`SpGemm`] engine.
fn multiply(a: &Csc<f64>, b: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb().config(cfg.clone()).multiply_csc(a, b)
}

/// Engine-backed stand-in for the retired `pb_spgemm::multiply_masked`.
fn multiply_masked(a: &Csc<f64>, b: &Csr<f64>, mask: &Csr<f64>, cfg: &PbConfig) -> Csr<f64> {
    SpGemm::pb()
        .config(cfg.clone())
        .mask(mask)
        .multiply_csc(a, b)
}

use pb_spgemm_suite::spmv::{csc_spmv, csr_spmv, pb_spmv, spmspv, PbSpmvConfig};

#[test]
fn balanced_bins_produce_the_same_product_as_uniform_bins() {
    // R-MAT matrices are exactly the skewed case the balanced mapping exists
    // for; the result must nevertheless be identical.
    let a = rmat_square(9, 8, 5);
    let a_csc = a.to_csc();
    let uniform = multiply(&a_csc, &a, &PbConfig::default());
    let balanced = multiply(
        &a_csc,
        &a,
        &PbConfig::default()
            .with_bin_mapping(BinMapping::Balanced)
            .with_nbins(64),
    );
    assert!(reference::csr_approx_eq(&uniform, &balanced, 1e-9));
}

#[test]
fn masked_multiply_equals_multiply_then_filter_on_real_standins() {
    for name in ["scircuit", "mc2depi"] {
        let a = standin_scaled(name, 0.004, 11);
        let full = multiply(&a.to_csc(), &a, &PbConfig::default());
        let masked = multiply_masked(&a.to_csc(), &a, &a, &PbConfig::default());
        let expected = mask_by_pattern(&full, &a);
        assert!(reference::csr_approx_eq(&masked, &expected, 1e-9), "{name}");
        assert!(masked.nnz() <= full.nnz());
    }
}

#[test]
fn spmv_kernels_agree_on_a_suitesparse_standin() {
    let a = standin_scaled("web-Google", 0.002, 3);
    let a_csc = a.to_csc();
    let x: Vec<f64> = (0..a.ncols())
        .map(|i| ((i % 97) as f64) / 97.0 - 0.5)
        .collect();
    let y_csr = csr_spmv(&a, &x);
    let y_csc = csc_spmv(&a_csc, &x);
    let y_pb = pb_spmv(&a_csc, &x, &PbSpmvConfig::default());
    for ((p, q), r) in y_csr.iter().zip(&y_csc).zip(&y_pb) {
        assert!((p - q).abs() < 1e-9);
        assert!((p - r).abs() < 1e-9);
    }
}

#[test]
fn spmspv_restricted_to_a_dense_frontier_matches_dense_spmv() {
    let a = rmat_square(8, 6, 21);
    let x_dense: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.01).sin()).collect();
    let x_sparse = SparseVec::from_dense(&x_dense, 0.0);
    let dense = csr_spmv(&a, &x_dense);
    let sparse = spmspv(&a.to_csc(), &x_sparse);
    for (i, d) in dense.iter().enumerate() {
        assert!((sparse.get(i).unwrap_or(0.0) - d).abs() < 1e-9, "row {i}");
    }
}

#[test]
fn pagerank_with_pb_spmv_matches_the_csr_kernel() {
    let g = rmat_square(9, 8, 4).map_values(|_| 1.0);
    let pb = pagerank(
        &g,
        &PageRankConfig::default().with_engine(SpmvEngine::PropagationBlocking),
    );
    let csr = pagerank(
        &g,
        &PageRankConfig::default().with_engine(SpmvEngine::RowCsr),
    );
    assert!(pb.converged && csr.converged);
    let max_diff = pb
        .scores
        .iter()
        .zip(&csr.scores)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-8);
    assert_eq!(pb.ranking()[..10], csr.ranking()[..10]);
}

#[test]
fn triangle_counting_via_masked_multiply_matches_the_graph_kernel() {
    // The graph kernel computes (A·A) ∘ A with a full multiply + filter; the
    // masked PB-SpGEMM entry point must reach the same triangle count.
    let g = rmat_square(8, 6, 17);
    let engine = SpGemm::pb();
    let expected = count_triangles(&g, &engine);

    let a = graph::triangles::to_simple_undirected(&g);
    let masked = multiply_masked(&a.to_csc(), &a, &a, &PbConfig::default());
    let total: f64 = masked.values().iter().sum();
    assert_eq!((total / 6.0).round() as u64, expected);
}

#[test]
fn markov_clustering_and_betweenness_run_end_to_end_on_standins() {
    let g = standin_scaled("scircuit", 0.002, 9).map_values(|v| v.abs() + 0.1);
    let clusters = markov_cluster(
        &g,
        &MclConfig {
            max_iterations: 20,
            ..MclConfig::default()
        },
    );
    assert_eq!(clusters.clusters.len(), g.nrows());
    assert!(clusters.num_clusters >= 1 && clusters.num_clusters <= g.nrows());

    let sources: Vec<usize> = (0..16).map(|k| (k * 31) % g.nrows()).collect();
    let bc = betweenness_centrality(&g, &sources, 8, &SpGemm::pb());
    assert_eq!(bc.len(), g.nrows());
    assert!(bc.iter().all(|&v| v >= 0.0 && v.is_finite()));
}

#[test]
fn binary_format_roundtrips_an_spgemm_result() {
    let a = erdos_renyi_square(8, 6, 2);
    let c = multiply(&a.to_csc(), &a, &PbConfig::default());
    let mut buffer = Vec::new();
    binfmt::write_csr_to(&mut buffer, &c).expect("in-memory serialisation cannot fail");
    let back: Csr<f64> = binfmt::read_csr_from(buffer.as_slice()).expect("roundtrip");
    assert!(reference::csr_exact_eq(&c, &back));
}
