//! # pb-spgemm-suite — one-stop façade for the PB-SpGEMM reproduction
//!
//! This crate simply re-exports the workspace crates so that examples,
//! integration tests and downstream users can depend on a single package:
//!
//! * [`sparse`] — matrix formats, semirings, element-wise ops, vectors, I/O,
//!   statistics (`pb-sparse`);
//! * [`gen`] — deterministic matrix generators (`pb-gen`);
//! * [`baseline`] — Heap/Hash/HashVec/SPA/ESC/outer-heap SpGEMM baselines
//!   (`pb-baseline`);
//! * [`spgemm`] — the PB-SpGEMM algorithm itself, including the masked and
//!   row-partitioned variants (`pb-spgemm`);
//! * [`spmv`] — SpMV kernels, including the propagation-blocking SpMV the
//!   paper's technique originates from (`pb-spmv`);
//! * [`graph`] — graph-analytics kernels built on the SpGEMM engines
//!   (`pb-graph`);
//! * [`model`] — Roofline model, STREAM and machine probes (`pb-model`);
//! * [`serve`] — the resident TCP service with its engine catalog and
//!   request batching (`pb-serve`).
//!
//! See `README.md` for a tour and `examples/` for runnable end-to-end
//! programs.

pub use pb_baseline as baseline;
pub use pb_gen as gen;
pub use pb_graph as graph;
pub use pb_model as model;
pub use pb_serve as serve;
pub use pb_sparse as sparse;
pub use pb_spgemm as spgemm;
pub use pb_spmv as spmv;

/// The most common imports for application code.
///
/// The one way to multiply is the unified [`SpGemm`](pb_spgemm::SpGemm)
/// engine (`SpGemm::pb()`, `SpGemm::auto()`, `SpGemm::baseline(..)`); the
/// old free functions and the graph crate's `SpGemmEngine` have been removed
/// after their one-release deprecation window — `docs/API.md` keeps the
/// historical migration table.
pub mod prelude {
    pub use pb_baseline::{Baseline, Kernel};
    pub use pb_gen::{erdos_renyi_square, rmat_square, standin_scaled};
    pub use pb_model::{MachineInfo, RooflineModel, StreamConfig};
    pub use pb_serve::{ServeConfig, Server};
    pub use pb_sparse::prelude::*;
    pub use pb_sparse::{ops, reference};
    pub use pb_spgemm::{
        Algorithm, Isa, PbConfig, PlannedKernel, Planner, ProfileSink, Signals, SpGemm,
    };
    pub use pb_spmv::{csr_spmv, pagerank, pb_spmv, PageRankConfig, PbSpmvConfig, SpmvEngine};
}
