//! A small binary on-disk format for CSR matrices.
//!
//! The benchmark harness regenerates synthetic matrices for every figure; for
//! the larger scales that regeneration dominates the run time.  This module
//! provides a compact little-endian binary format so generated matrices (and
//! SpGEMM results) can be cached on disk and memory-streamed back without the
//! Matrix Market text-parsing overhead.
//!
//! Version 2 layout (all integers little-endian):
//!
//! ```text
//! magic      4 bytes   b"PBSM"
//! version    u32       currently 2
//! type tag   u32       element type (see [`BinaryScalar::TAG`])
//! nrows      u64
//! ncols      u64
//! nnz        u64
//! -- zero padding to the next 64-byte boundary --
//! rowptr     (nrows + 1) × u64
//! -- zero padding to the next 64-byte boundary --
//! colidx     nnz × u32
//! -- zero padding to the next 64-byte boundary --
//! values     nnz × sizeof(T)
//! ```
//!
//! The 64-byte section alignment is what makes the zero-copy path possible:
//! [`MappedCsr`] memory-maps a version-2 file (see [`crate::mmapio`]) and
//! serves `rowptr`/`colidx`/`values` directly out of the page cache as typed
//! slices, never materialising a heap copy.  Version-1 files (header
//! immediately followed by unpadded sections) are still read transparently by
//! [`read_csr_from`], which copies; only the mapped view requires v2.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::marker::PhantomData;
use std::path::Path;

use crate::csr::Csr;
use crate::error::SparseError;
use crate::mmapio::Mapping;
use crate::{Index, Scalar, MAX_DIM};

/// File magic identifying the format.
pub const MAGIC: &[u8; 4] = b"PBSM";
/// Current format version (64-byte-aligned sections; see the module docs).
pub const VERSION: u32 = 2;
/// The legacy unaligned version, still accepted by the copying reader.
pub const LEGACY_VERSION: u32 = 1;
/// Fixed header size in bytes (shared by both versions).
pub const HEADER_BYTES: usize = 36;
/// Alignment of every section start in a version-2 file.
pub const SECTION_ALIGN: usize = 64;

/// A scalar type that can be serialised into the binary matrix format.
///
/// Implementations must be plain-old-data numeric types whose in-memory
/// representation on a little-endian host equals their `write_le` byte
/// serialisation — [`MappedCsr::values`] relies on this to reinterpret the
/// mapped bytes in place.
pub trait BinaryScalar: Scalar {
    /// Unique tag identifying the element type in the file header.
    const TAG: u32;
    /// Size of one encoded element in bytes.
    const WIDTH: usize;
    /// Encodes `self` into little-endian bytes appended to `out`.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Decodes one element from `bytes` (exactly [`BinaryScalar::WIDTH`] bytes).
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_binary_scalar {
    ($($t:ty => $tag:expr),* $(,)?) => {
        $(
            impl BinaryScalar for $t {
                const TAG: u32 = $tag;
                const WIDTH: usize = std::mem::size_of::<$t>();
                #[inline]
                fn write_le(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
                #[inline]
                fn read_le(bytes: &[u8]) -> Self {
                    <$t>::from_le_bytes(bytes.try_into().expect("caller slices WIDTH bytes"))
                }
            }
        )*
    };
}

impl_binary_scalar!(
    f64 => 1,
    f32 => 2,
    u64 => 3,
    u32 => 4,
    i64 => 5,
    i32 => 6,
);

fn bin_err(detail: impl Into<String>) -> SparseError {
    SparseError::Binary {
        detail: detail.into(),
    }
}

fn align_up(off: usize, align: usize) -> usize {
    off.div_ceil(align) * align
}

/// Byte offsets of the three sections of a version-2 file, derived purely
/// from the header fields.  Shared by the writer and the mapped reader so
/// the two can never disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionLayout {
    /// Offset of the `rowptr` section (`(nrows + 1) × u64`).
    pub rowptr_off: usize,
    /// Offset of the `colidx` section (`nnz × u32`).
    pub colidx_off: usize,
    /// Offset of the `values` section (`nnz × width`).
    pub values_off: usize,
    /// Exact total file size in bytes.
    pub total_bytes: usize,
}

/// Computes the section layout of a version-2 file.
pub fn section_layout(nrows: usize, nnz: usize, width: usize) -> SectionLayout {
    let rowptr_off = align_up(HEADER_BYTES, SECTION_ALIGN);
    let colidx_off = align_up(rowptr_off + (nrows + 1) * 8, SECTION_ALIGN);
    let values_off = align_up(colidx_off + nnz * 4, SECTION_ALIGN);
    SectionLayout {
        rowptr_off,
        colidx_off,
        values_off,
        total_bytes: values_off + nnz * width,
    }
}

fn read_exact<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<(), SparseError> {
    r.read_exact(buf)
        .map_err(|e| bin_err(format!("short read while reading {what}: {e}")))
}

fn read_u32<R: Read>(r: &mut R, what: &str) -> Result<u32, SparseError> {
    let mut b = [0u8; 4];
    read_exact(r, &mut b, what)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, SparseError> {
    let mut b = [0u8; 8];
    read_exact(r, &mut b, what)?;
    Ok(u64::from_le_bytes(b))
}

fn skip<R: Read>(r: &mut R, mut n: usize, what: &str) -> Result<(), SparseError> {
    let mut buf = [0u8; 64];
    while n > 0 {
        let take = n.min(buf.len());
        read_exact(r, &mut buf[..take], what)?;
        n -= take;
    }
    Ok(())
}

fn write_header<W: Write>(
    w: &mut W,
    version: u32,
    tag: u32,
    nrows: usize,
    ncols: usize,
    nnz: usize,
) -> Result<(), SparseError> {
    let mut header = Vec::with_capacity(HEADER_BYTES);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&version.to_le_bytes());
    header.extend_from_slice(&tag.to_le_bytes());
    header.extend_from_slice(&(nrows as u64).to_le_bytes());
    header.extend_from_slice(&(ncols as u64).to_le_bytes());
    header.extend_from_slice(&(nnz as u64).to_le_bytes());
    debug_assert_eq!(header.len(), HEADER_BYTES);
    w.write_all(&header)?;
    Ok(())
}

// rowptr, colidx and values are written in chunks to bound the staging
// buffer for very large matrices.
const CHUNK: usize = 1 << 16;

fn write_sections<W: Write, T: BinaryScalar>(
    w: &mut W,
    m: &Csr<T>,
    pad_to: Option<SectionLayout>,
) -> Result<(), SparseError> {
    const ZEROS: [u8; SECTION_ALIGN] = [0u8; SECTION_ALIGN];
    let pad = |w: &mut W, from: usize, to: usize| -> Result<(), SparseError> {
        debug_assert!(to >= from && to - from < SECTION_ALIGN);
        w.write_all(&ZEROS[..to - from])?;
        Ok(())
    };

    if let Some(layout) = pad_to {
        pad(w, HEADER_BYTES, layout.rowptr_off)?;
    }
    let mut buf = Vec::with_capacity(CHUNK * 8);
    for chunk in m.rowptr().chunks(CHUNK) {
        buf.clear();
        for &p in chunk {
            buf.extend_from_slice(&(p as u64).to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    if let Some(layout) = pad_to {
        pad(
            w,
            layout.rowptr_off + (m.nrows() + 1) * 8,
            layout.colidx_off,
        )?;
    }
    for chunk in m.colidx().chunks(CHUNK) {
        buf.clear();
        for &c in chunk {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        w.write_all(&buf)?;
    }
    if let Some(layout) = pad_to {
        pad(w, layout.colidx_off + m.nnz() * 4, layout.values_off)?;
    }
    for chunk in m.values().chunks(CHUNK) {
        buf.clear();
        for v in chunk {
            v.write_le(&mut buf);
        }
        w.write_all(&buf)?;
    }
    w.flush()?;
    Ok(())
}

/// Serialises a CSR matrix to any writer (version 2, aligned sections).
pub fn write_csr_to<W: Write, T: BinaryScalar>(mut w: W, m: &Csr<T>) -> Result<(), SparseError> {
    write_header(&mut w, VERSION, T::TAG, m.nrows(), m.ncols(), m.nnz())?;
    let layout = section_layout(m.nrows(), m.nnz(), T::WIDTH);
    write_sections(&mut w, m, Some(layout))
}

/// Serialises a CSR matrix in the legacy unaligned version-1 layout.
///
/// Kept so the version-1 read path stays covered and older tooling can be
/// fed; new files should use [`write_csr_to`].
pub fn write_csr_v1_to<W: Write, T: BinaryScalar>(mut w: W, m: &Csr<T>) -> Result<(), SparseError> {
    write_header(
        &mut w,
        LEGACY_VERSION,
        T::TAG,
        m.nrows(),
        m.ncols(),
        m.nnz(),
    )?;
    write_sections(&mut w, m, None)
}

/// Deserialises a CSR matrix from any reader (accepts versions 1 and 2).
pub fn read_csr_from<R: Read, T: BinaryScalar>(mut r: R) -> Result<Csr<T>, SparseError> {
    let mut magic = [0u8; 4];
    read_exact(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(bin_err(format!("bad magic {magic:?}, expected {MAGIC:?}")));
    }
    let version = read_u32(&mut r, "version")?;
    if version != VERSION && version != LEGACY_VERSION {
        return Err(bin_err(format!(
            "unsupported version {version} (this build reads {LEGACY_VERSION} and {VERSION})"
        )));
    }
    let tag = read_u32(&mut r, "type tag")?;
    if tag != T::TAG {
        return Err(bin_err(format!(
            "element type mismatch: file stores tag {tag}, caller requested tag {}",
            T::TAG
        )));
    }
    let nrows = read_u64(&mut r, "nrows")? as usize;
    let ncols = read_u64(&mut r, "ncols")? as usize;
    let nnz = read_u64(&mut r, "nnz")? as usize;
    if nrows > MAX_DIM || ncols > MAX_DIM {
        return Err(bin_err(format!(
            "declared shape {nrows}x{ncols} exceeds the u32 index space"
        )));
    }
    // A lying header must produce a typed error, never an abort: reject a
    // declared nnz that would overflow the section-layout arithmetic (the
    // same guard the mapped reader applies before its length check).
    if nnz.checked_mul(4 + T::WIDTH).is_none() {
        return Err(bin_err(format!(
            "declared nnz {nnz} overflows the addressable file size"
        )));
    }

    let layout = (version == VERSION).then(|| section_layout(nrows, nnz, T::WIDTH));
    if let Some(l) = layout {
        skip(&mut r, l.rowptr_off - HEADER_BYTES, "section padding")?;
    }
    // Capacities are capped: the stream, not the untrusted header, bounds
    // memory — a short file fails at the next read, long before a huge
    // declared count could drive pre-allocation anywhere near it.
    let mut rowptr = Vec::with_capacity((nrows + 1).min(CHUNK));
    let mut buf = vec![0u8; 8];
    for _ in 0..=nrows {
        read_exact(&mut r, &mut buf, "rowptr")?;
        rowptr.push(u64::from_le_bytes(buf[..8].try_into().expect("8-byte buffer")) as usize);
    }

    if let Some(l) = layout {
        skip(
            &mut r,
            l.colidx_off - (l.rowptr_off + (nrows + 1) * 8),
            "section padding",
        )?;
    }
    let mut colidx: Vec<Index> = Vec::with_capacity(nnz.min(CHUNK));
    let mut cbuf = [0u8; 4];
    for _ in 0..nnz {
        read_exact(&mut r, &mut cbuf, "colidx")?;
        colidx.push(Index::from_le_bytes(cbuf));
    }

    if let Some(l) = layout {
        skip(
            &mut r,
            l.values_off - (l.colidx_off + nnz * 4),
            "section padding",
        )?;
    }
    let mut values: Vec<T> = Vec::with_capacity(nnz.min(CHUNK));
    let mut vbuf = vec![0u8; T::WIDTH];
    for _ in 0..nnz {
        read_exact(&mut r, &mut vbuf, "values")?;
        values.push(T::read_le(&vbuf));
    }

    Csr::from_parts(nrows, ncols, rowptr, colidx, values)
}

/// Writes a CSR matrix to `path` (buffered, version 2).
pub fn write_csr<T: BinaryScalar>(path: impl AsRef<Path>, m: &Csr<T>) -> Result<(), SparseError> {
    let file = File::create(path)?;
    write_csr_to(BufWriter::new(file), m)
}

/// Reads a CSR matrix from `path` (buffered; accepts versions 1 and 2).
pub fn read_csr<T: BinaryScalar>(path: impl AsRef<Path>) -> Result<Csr<T>, SparseError> {
    let file = File::open(path)?;
    read_csr_from(BufReader::new(file))
}

/// Reads only the header of a binary matrix file: `(version, tag, nrows,
/// ncols, nnz)`.  Cheap — used for budget prechecks before a full load.
pub fn peek_header(path: impl AsRef<Path>) -> Result<(u32, u32, usize, usize, usize), SparseError> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    read_exact(&mut r, &mut magic, "magic")?;
    if &magic != MAGIC {
        return Err(bin_err(format!("bad magic {magic:?}, expected {MAGIC:?}")));
    }
    let version = read_u32(&mut r, "version")?;
    let tag = read_u32(&mut r, "type tag")?;
    let nrows = read_u64(&mut r, "nrows")? as usize;
    let ncols = read_u64(&mut r, "ncols")? as usize;
    let nnz = read_u64(&mut r, "nnz")? as usize;
    Ok((version, tag, nrows, ncols, nnz))
}

// ---------------------------------------------------------------------------
// Zero-copy mapped view
// ---------------------------------------------------------------------------

/// A CSR matrix served directly out of a memory-mapped version-2 file.
///
/// `open` validates the header, the exact file length, and the row-pointer
/// invariants once; after that [`MappedCsr::rowptr`], [`MappedCsr::colidx`]
/// and [`MappedCsr::values`] are plain typed slices into the mapping — no
/// heap copy of the matrix ever exists unless [`MappedCsr::to_csr`] (or a
/// row-range extraction) asks for one.  The out-of-core tile store leans on
/// this for spilled-tile reads.
pub struct MappedCsr<T: BinaryScalar> {
    map: Mapping,
    nrows: usize,
    ncols: usize,
    nnz: usize,
    layout: SectionLayout,
    _elem: PhantomData<T>,
}

impl<T: BinaryScalar> MappedCsr<T> {
    /// Maps `path` and validates it as a version-2 file of element type `T`.
    ///
    /// Version-1 files are rejected with a typed error pointing at
    /// [`read_csr`] (their sections are unaligned, so they can only be read
    /// by copying); so is any truncated, oversized or malformed file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, SparseError> {
        let map = Mapping::map(path.as_ref())?;
        Self::from_mapping(map)
    }

    fn from_mapping(map: Mapping) -> Result<Self, SparseError> {
        if cfg!(target_endian = "big") {
            return Err(bin_err(
                "zero-copy mapped views require a little-endian host; use read_csr",
            ));
        }
        let bytes = map.bytes();
        if bytes.len() < HEADER_BYTES {
            return Err(bin_err(format!(
                "file is {} bytes, shorter than the {HEADER_BYTES}-byte header",
                bytes.len()
            )));
        }
        if &bytes[..4] != MAGIC {
            return Err(bin_err(format!(
                "bad magic {:?}, expected {MAGIC:?}",
                &bytes[..4]
            )));
        }
        let u32_at = |off: usize| u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let version = u32_at(4);
        if version == LEGACY_VERSION {
            return Err(bin_err(
                "version 1 files have unaligned sections and cannot be mapped zero-copy; \
                 use read_csr or re-write the file with write_csr",
            ));
        }
        if version != VERSION {
            return Err(bin_err(format!(
                "unsupported version {version} (mapped reads require {VERSION})"
            )));
        }
        let tag = u32_at(8);
        if tag != T::TAG {
            return Err(bin_err(format!(
                "element type mismatch: file stores tag {tag}, caller requested tag {}",
                T::TAG
            )));
        }
        let nrows = u64_at(12);
        let ncols = u64_at(20);
        let nnz = u64_at(28);
        if nrows > MAX_DIM as u64 || ncols > MAX_DIM as u64 {
            return Err(bin_err(format!(
                "declared shape {nrows}x{ncols} exceeds the u32 index space"
            )));
        }
        let (nrows, ncols, nnz) = (nrows as usize, ncols as usize, nnz as usize);
        // An absurd declared nnz must fail the length check below, not
        // overflow the layout arithmetic first.
        let layout = match nnz
            .checked_mul(4)
            .and_then(|c| nnz.checked_mul(T::WIDTH).map(|v| (c, v)))
        {
            Some(_) => section_layout(nrows, nnz, T::WIDTH),
            None => {
                return Err(bin_err(format!(
                    "declared nnz {nnz} overflows the addressable file size"
                )))
            }
        };
        if bytes.len() != layout.total_bytes {
            return Err(bin_err(format!(
                "file is {} bytes but the header describes exactly {} \
                 (truncated or oversized file)",
                bytes.len(),
                layout.total_bytes
            )));
        }
        let mapped = MappedCsr {
            map,
            nrows,
            ncols,
            nnz,
            layout,
            _elem: PhantomData,
        };
        // Validate the row pointers once so row-range slicing is safe.
        let rp = mapped.rowptr();
        if rp[0] != 0 {
            return Err(bin_err(format!("rowptr[0] = {} (expected 0)", rp[0])));
        }
        if rp.windows(2).any(|w| w[0] > w[1]) {
            return Err(bin_err("rowptr is not monotonically non-decreasing"));
        }
        if rp[mapped.nrows] != mapped.nnz as u64 {
            return Err(bin_err(format!(
                "rowptr[last] = {} but the header declares nnz = {}",
                rp[mapped.nrows], mapped.nnz
            )));
        }
        Ok(mapped)
    }

    fn typed_slice<U>(&self, off: usize, count: usize) -> &[U] {
        let bytes = &self.map.bytes()[off..off + count * std::mem::size_of::<U>()];
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<U>(), 0);
        // SAFETY: the mapping base is at least 8-byte aligned (page-aligned
        // for real mappings, u64-backed for the heap fallback), section
        // offsets are multiples of SECTION_ALIGN, the byte range was bounds-
        // checked above, and `U` is a plain-old-data numeric type whose LE
        // byte serialisation equals its in-memory layout on this
        // (little-endian, enforced in from_mapping) host.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const U, count) }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// `(nrows, ncols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// `true` when the slices come straight from the page cache (a real
    /// kernel mapping rather than the heap-read fallback).
    pub fn is_zero_copy(&self) -> bool {
        self.map.is_zero_copy()
    }

    /// The row-pointer section, in place.
    pub fn rowptr(&self) -> &[u64] {
        self.typed_slice(self.layout.rowptr_off, self.nrows + 1)
    }

    /// The column-index section, in place.
    pub fn colidx(&self) -> &[Index] {
        self.typed_slice(self.layout.colidx_off, self.nnz)
    }

    /// The values section, in place.
    pub fn values(&self) -> &[T] {
        self.typed_slice(self.layout.values_off, self.nnz)
    }

    /// Materialises the whole matrix as an owned, fully validated [`Csr`].
    pub fn to_csr(&self) -> Result<Csr<T>, SparseError> {
        self.extract_rows(0, self.nrows)
    }

    /// Materialises rows `r0..r1` as an owned [`Csr`] with the same column
    /// space — the building block for streaming row-block tiles out of a
    /// matrix that never fits in memory whole.
    pub fn extract_rows(&self, r0: usize, r1: usize) -> Result<Csr<T>, SparseError> {
        if r0 > r1 || r1 > self.nrows {
            return Err(bin_err(format!(
                "row range {r0}..{r1} out of bounds for {} rows",
                self.nrows
            )));
        }
        let rp = self.rowptr();
        let (start, end) = (rp[r0] as usize, rp[r1] as usize);
        let rowptr: Vec<usize> = rp[r0..=r1].iter().map(|&p| (p as usize) - start).collect();
        let colidx = self.colidx()[start..end].to_vec();
        let values = self.values()[start..end].to_vec();
        Csr::from_parts(r1 - r0, self.ncols, rowptr, colidx, values)
    }
}

impl<T: BinaryScalar> std::fmt::Debug for MappedCsr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedCsr")
            .field("shape", &self.shape())
            .field("nnz", &self.nnz)
            .field("zero_copy", &self.is_zero_copy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::Coo;

    fn sample() -> Csr<f64> {
        Coo::from_entries(
            5,
            7,
            vec![
                (0, 0, 1.5),
                (0, 6, -2.0),
                (2, 3, 0.25),
                (4, 1, 1e300),
                (4, 6, -0.0),
            ],
        )
        .unwrap()
        .to_csr()
    }

    fn temp_file(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pb_sparse_binfmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{}_{}", std::process::id(), name));
        std::fs::write(&path, contents).unwrap();
        path
    }

    #[test]
    fn roundtrip_f64_in_memory() {
        let m = sample();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let back: Csr<f64> = read_csr_from(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), m.shape());
        assert_eq!(back.rowptr(), m.rowptr());
        assert_eq!(back.colidx(), m.colidx());
        assert_eq!(back.values(), m.values());
    }

    #[test]
    fn legacy_v1_files_still_read() {
        let m = sample();
        let mut buf = Vec::new();
        write_csr_v1_to(&mut buf, &m).unwrap();
        assert_eq!(&buf[4..8], &1u32.to_le_bytes());
        let back: Csr<f64> = read_csr_from(buf.as_slice()).unwrap();
        assert_eq!(back.rowptr(), m.rowptr());
        assert_eq!(back.colidx(), m.colidx());
        assert_eq!(back.values(), m.values());
    }

    #[test]
    fn v2_sections_are_aligned() {
        let m = sample();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let layout = section_layout(m.nrows(), m.nnz(), 8);
        assert_eq!(buf.len(), layout.total_bytes);
        assert_eq!(layout.rowptr_off % SECTION_ALIGN, 0);
        assert_eq!(layout.colidx_off % SECTION_ALIGN, 0);
        assert_eq!(layout.values_off % SECTION_ALIGN, 0);
    }

    #[test]
    fn roundtrip_integer_values() {
        let m: Csr<u64> = sample().map_values(|v| v.abs() as u64);
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let back: Csr<u64> = read_csr_from(buf.as_slice()).unwrap();
        assert_eq!(back.values(), m.values());

        let m: Csr<i32> = sample().map_values(|v| v as i32);
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let back: Csr<i32> = read_csr_from(buf.as_slice()).unwrap();
        assert_eq!(back.colidx(), m.colidx());
    }

    #[test]
    fn roundtrip_empty_matrix() {
        let m: Csr<f32> = Csr::empty(3, 9);
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let back: Csr<f32> = read_csr_from(buf.as_slice()).unwrap();
        assert_eq!(back.shape(), (3, 9));
        assert_eq!(back.nnz(), 0);
    }

    #[test]
    fn roundtrip_through_a_file() {
        let m = sample();
        let path = temp_file("sample.pbsm", &[]);
        write_csr(&path, &m).unwrap();
        let back: Csr<f64> = read_csr(&path).unwrap();
        assert_eq!(back.values(), m.values());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn peek_header_reads_dims_only() {
        let m = sample();
        let path = temp_file("peek.pbsm", &[]);
        write_csr(&path, &m).unwrap();
        let (version, tag, nrows, ncols, nnz) = peek_header(&path).unwrap();
        assert_eq!(version, VERSION);
        assert_eq!(tag, f64::TAG);
        assert_eq!((nrows, ncols, nnz), (5, 7, 5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_view_is_bit_identical() {
        let m = sample();
        let path = temp_file("mapped.pbsm", &[]);
        write_csr(&path, &m).unwrap();
        let mapped: MappedCsr<f64> = MappedCsr::open(&path).unwrap();
        assert_eq!(mapped.shape(), m.shape());
        assert_eq!(mapped.colidx(), m.colidx());
        let rp: Vec<usize> = mapped.rowptr().iter().map(|&p| p as usize).collect();
        assert_eq!(rp.as_slice(), m.rowptr());
        // -0.0 vs 0.0 and 1e300 must round-trip bit-for-bit.
        let bits: Vec<u64> = mapped.values().iter().map(|v| v.to_bits()).collect();
        let expect: Vec<u64> = m.values().iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, expect);
        let back = mapped.to_csr().unwrap();
        assert_eq!(back.rowptr(), m.rowptr());
        assert_eq!(back.colidx(), m.colidx());
        assert_eq!(back.values(), m.values());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_row_extraction_matches_full_load() {
        let m = sample();
        let path = temp_file("rows.pbsm", &[]);
        write_csr(&path, &m).unwrap();
        let mapped: MappedCsr<f64> = MappedCsr::open(&path).unwrap();
        let block = mapped.extract_rows(2, 5).unwrap();
        assert_eq!(block.shape(), (3, 7));
        assert_eq!(block.nnz(), 3);
        assert_eq!(block.values(), &m.values()[2..]);
        assert!(mapped.extract_rows(4, 2).is_err());
        assert!(mapped.extract_rows(0, 99).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_rejects_v1_with_a_pointer_to_read_csr() {
        let m = sample();
        let mut buf = Vec::new();
        write_csr_v1_to(&mut buf, &m).unwrap();
        let path = temp_file("v1.pbsm", &buf);
        let err = MappedCsr::<f64>::open(&path).unwrap_err();
        assert!(matches!(err, SparseError::Binary { .. }));
        assert!(err.to_string().contains("read_csr"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_rejects_truncated_and_oversized_files() {
        let m = sample();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();

        let mut short = buf.clone();
        short.truncate(short.len() - 5);
        let path = temp_file("short.pbsm", &short);
        let err = MappedCsr::<f64>::open(&path).unwrap_err();
        assert!(err.to_string().contains("truncated or oversized"));
        std::fs::remove_file(&path).ok();

        let mut long = buf.clone();
        long.extend_from_slice(&[0u8; 13]);
        let path = temp_file("long.pbsm", &long);
        let err = MappedCsr::<f64>::open(&path).unwrap_err();
        assert!(err.to_string().contains("truncated or oversized"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_rejects_nonmonotonic_rowptr() {
        let m = sample();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let layout = section_layout(m.nrows(), m.nnz(), 8);
        let off = layout.rowptr_off + 8;
        buf[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let path = temp_file("badrp.pbsm", &buf);
        let err = MappedCsr::<f64>::open(&path).unwrap_err();
        assert!(err.to_string().contains("monotonically"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapped_rejects_absurd_nnz_without_panicking() {
        let m = sample();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        buf[28..36].copy_from_slice(&u64::MAX.to_le_bytes());
        let path = temp_file("hugennz.pbsm", &buf);
        let err = MappedCsr::<f64>::open(&path).unwrap_err();
        assert!(matches!(err, SparseError::Binary { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &sample()).unwrap();
        buf[0] = b'X';
        let err = read_csr_from::<_, f64>(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SparseError::Binary { .. }));
        assert!(err.to_string().contains("magic"));

        let path = temp_file("badmagic.pbsm", &buf);
        let err = MappedCsr::<f64>::open(&path).unwrap_err();
        assert!(err.to_string().contains("magic"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_element_type_is_rejected() {
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &sample()).unwrap();
        let err = read_csr_from::<_, u32>(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("type mismatch"));
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &sample()).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        let err = read_csr_from::<_, f64>(buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("version"));

        let path = temp_file("v99.pbsm", &buf);
        let err = MappedCsr::<f64>::open(&path).unwrap_err();
        assert!(err.to_string().contains("version"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &sample()).unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_csr_from::<_, f64>(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SparseError::Binary { .. }));
    }

    #[test]
    fn corrupted_structure_is_caught_by_validation() {
        // Corrupt a rowptr entry so it is non-monotonic; from_parts must
        // refuse to build the matrix.
        let m = sample();
        let mut buf = Vec::new();
        write_csr_to(&mut buf, &m).unwrap();
        let rowptr_start = section_layout(m.nrows(), m.nnz(), 8).rowptr_off;
        buf[rowptr_start + 8..rowptr_start + 16].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_csr_from::<_, f64>(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SparseError::MalformedOffsets { .. }));
    }
}
