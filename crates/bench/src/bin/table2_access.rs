//! Table II: data-access patterns of the SpGEMM algorithm classes, plus the
//! concrete memory-traffic estimates for an example ER multiplication.

use pb_bench::{fmt, print_table, write_json, Table};
use pb_gen::erdos_renyi_square;
use pb_model::access::{access_table, traffic_estimates};
use pb_sparse::stats::MultiplyStats;

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    for d in [4.0, 8.0, 16.0] {
        let mut table = Table::new(
            format!("Table II — access patterns, ER matrices with d = {d}"),
            &[
                "algorithm",
                "reads A",
                "reads B",
                "accesses Chat",
                "writes C",
                "streams A",
                "streams Chat",
                "full lines A",
            ],
        );
        for row in access_table(d) {
            table.push_row(vec![
                row.class.name().to_string(),
                fmt(row.reads_a, 0),
                fmt(row.reads_b, 0),
                fmt(row.accesses_chat, 0),
                fmt(row.writes_c, 0),
                row.streams_a.to_string(),
                row.streams_chat.to_string(),
                row.full_lines_a.to_string(),
            ]);
        }
        print_table(&table);
    }

    // Concrete traffic estimate for one ER multiplication.
    let a = erdos_renyi_square(13, 8, 7);
    let stats = MultiplyStats::compute(&a, &a);
    let est = traffic_estimates(&stats);
    let mut table = Table::new(
        format!(
            "Estimated memory traffic for ER s=13 ef=8 (flop = {}, cf = {:.2})",
            stats.flop, stats.cf
        ),
        &[
            "algorithm class",
            "bytes moved (MB)",
            "arithmetic intensity",
        ],
    );
    for e in &est {
        table.push_row(vec![
            e.class.name().to_string(),
            fmt(e.bytes as f64 / 1e6, 1),
            format!("1/{:.0}", 1.0 / e.ai),
        ]);
    }
    print_table(&table);
    write_json("table2_access", &est);
}
