//! Table III: computational complexity and data-access costs of every
//! PB-SpGEMM phase, with the measured time, modelled bytes and sustained
//! bandwidth on a concrete workload.

use pb_bench::workloads::er_matrix;
use pb_bench::{fmt, print_table, quick_mode, write_json, Table};
use pb_spgemm::{PbConfig, Phase};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    let (scale, ef) = if quick_mode() { (12, 8) } else { (15, 8) };
    let w = er_matrix(scale, ef, 3);
    let profile = pb_bench::measure_pb_profile(&w, &PbConfig::default());

    let analytic = |phase: Phase| -> (&'static str, String) {
        match phase {
            Phase::Symbolic => ("O(n)", "streams the two offset arrays".into()),
            Phase::Expand => (
                "O(flop)",
                format!(
                    "reads b·(nnz(A)+nnz(B)), writes t·flop = {} MB",
                    profile.phase_bytes(phase) / 1_000_000
                ),
            ),
            Phase::Sort => (
                "O(flop)",
                format!(
                    "reads t·flop = {} MB (shuffles stay in cache)",
                    profile.phase_bytes(phase) / 1_000_000
                ),
            ),
            Phase::Compress => (
                "O(flop)",
                format!(
                    "reads t·flop, writes t·nnz(C) = {} MB",
                    profile.phase_bytes(phase) / 1_000_000
                ),
            ),
            Phase::Assemble => ("O(nnz(C))", "writes the CSR arrays".into()),
        }
    };

    let mut table = Table::new(
        format!(
            "Table III — PB-SpGEMM phases on {} (flop = {:.1}M, nnz(C) = {:.1}M)",
            w.name,
            profile.flop as f64 / 1e6,
            profile.nnz_c as f64 / 1e6
        ),
        &[
            "phase",
            "complexity",
            "data movement (model)",
            "time (ms)",
            "bandwidth (GB/s)",
        ],
    );
    for phase in [
        Phase::Symbolic,
        Phase::Expand,
        Phase::Sort,
        Phase::Compress,
        Phase::Assemble,
    ] {
        let (complexity, movement) = analytic(phase);
        table.push_row(vec![
            phase.name().to_string(),
            complexity.to_string(),
            movement,
            fmt(profile.phase_time(phase).as_secs_f64() * 1e3, 2),
            fmt(profile.phase_bandwidth_gbps(phase), 2),
        ]);
    }
    print_table(&table);
    let records: Vec<(&str, f64, u64, f64)> = [
        Phase::Symbolic,
        Phase::Expand,
        Phase::Sort,
        Phase::Compress,
        Phase::Assemble,
    ]
    .iter()
    .map(|&p| {
        (
            p.name(),
            profile.phase_time(p).as_secs_f64(),
            profile.phase_bytes(p),
            profile.phase_bandwidth_gbps(p),
        )
    })
    .collect();
    write_json("table3_phases", &records);
    println!("{}", profile.summary());
}
