//! Table VII: local vs. remote memory bandwidth and latency.
//!
//! The evaluation machine has a single NUMA domain, so the "remote socket"
//! is emulated by a prefetch-defeating strided stream and a larger
//! pointer-chase working set (see `pb_model::numa`); the point being
//! reproduced is that a degraded memory domain exists and hurts
//! bandwidth-bound algorithms most (Fig. 14).

use pb_bench::{fmt, print_table, quick_mode, write_json, Table};
use pb_model::numa::{probe, NumaConfig};
use pb_model::stream::{run as stream_run, StreamConfig};

fn main() {
    // `--smoke` shrinks the workloads to CI size (sets PB_BENCH_QUICK).
    pb_bench::smoke_from_args();
    // The real topology, as the domain-partitioned binning sees it.  On a
    // genuine dual-socket host the table below could be measured across
    // real nodes; this environment exposes a single domain, so the far
    // column stays the documented emulation.
    let topology = pb_spgemm::Topology::detect();
    let mut discovered = Table::new(
        format!("Discovered NUMA topology — {}", topology.describe()),
        &["domain", "cpus", "cpu list"],
    );
    for d in topology.domains() {
        discovered.push_row(vec![
            d.id.to_string(),
            d.cpus.len().to_string(),
            format!("{:?}", d.cpus),
        ]);
    }
    print_table(&discovered);

    let cfg = if quick_mode() {
        NumaConfig::quick()
    } else {
        NumaConfig::default()
    };
    let p = probe(&cfg);

    let mut table = Table::new(
        "Table VII — local vs. far memory (far domain emulated; see DESIGN.md)",
        &["domain", "bandwidth (GB/s)", "latency (ns)"],
    );
    table.push_row(vec![
        "local".into(),
        fmt(p.local_bandwidth_gbps, 2),
        fmt(p.local_latency_ns, 1),
    ]);
    table.push_row(vec![
        "far (emulated)".into(),
        fmt(p.far_bandwidth_gbps, 2),
        fmt(p.far_latency_ns, 1),
    ]);
    print_table(&table);

    // Bandwidth scaling: how many real threads it takes to saturate the
    // local memory domain (the paper's Table VII context for Fig. 12–14).
    let mut scaling = Table::new(
        "Local STREAM triad bandwidth vs thread count",
        &["threads", "triad (GB/s)", "best kernel (GB/s)"],
    );
    let mut sweep_records = Vec::new();
    for &t in &pb_bench::baseline::thread_sweep(rayon::current_num_threads()) {
        let mut sc = if quick_mode() {
            StreamConfig::quick()
        } else {
            StreamConfig::default()
        };
        sc.threads = Some(t);
        let r = stream_run(&sc);
        scaling.push_row(vec![t.to_string(), fmt(r.triad, 2), fmt(r.best_gbps(), 2)]);
        sweep_records.push((t, r.triad, r.best_gbps()));
    }
    print_table(&scaling);

    write_json("table7_numa", &p);
    write_json("table7_numa_scaling", &sweep_records);
    write_json(
        "table7_numa_topology",
        &(
            topology.num_domains(),
            format!("{:?}", topology.source()),
            topology.is_forced(),
        ),
    );
    println!(
        "far/local bandwidth ratio = {:.2} (paper: 33.4/50.3 = 0.66 across Skylake sockets)",
        p.bandwidth_ratio()
    );
}
