//! Multi-source breadth-first search expressed as SpGEMM over the boolean
//! semiring — another motivating application from the paper's introduction
//! (Gilbert et al., "graph algorithms in the language of linear algebra").
//!
//! A frontier of `k` sources is a sparse `n × k` boolean matrix `F`; one BFS
//! step is `F' = Aᵀ ⊗ F` under the (∨, ∧) semiring, and newly discovered
//! vertices are those in `F'` not yet visited.
//!
//! ```bash
//! cargo run --release --example multi_source_bfs [scale] [sources]
//! ```

use pb_spgemm_suite::prelude::*;

/// One reference BFS from a single source (queue-based), returning levels.
fn bfs_oracle(a: &Csr<bool>, source: usize) -> Vec<Option<u32>> {
    let mut level = vec![None; a.nrows()];
    level[source] = Some(0);
    let mut frontier = vec![source];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            let (cols, _) = a.row(u);
            for &v in cols {
                if level[v as usize].is_none() {
                    level[v as usize] = Some(depth);
                    next.push(v as usize);
                }
            }
        }
        frontier = next;
    }
    level
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let nsources: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(16);

    // A directed graph; BFS follows edges u -> v, i.e. row u's columns.
    let a_num = rmat_square(scale, 8, 11);
    let a: Csr<bool> = a_num.map_values(|_| true);
    let n = a.nrows();
    println!(
        "graph: {n} vertices, {} edges, {nsources} BFS sources",
        a.nnz()
    );

    // Frontier matrix F (n x k): F[s_i, i] = true.  One BFS step is
    // F' = Aᵀ ⊗ F because (Aᵀ F)[v, i] = ∨_u A[u, v] ∧ F[u, i] ... for edge
    // direction u -> v stored as A[u, v].
    let sources: Vec<usize> = (0..nsources).map(|i| (i * 9973) % n).collect();
    let mut frontier: Csr<bool> = {
        let entries: Vec<(usize, usize, bool)> = sources
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i, true))
            .collect();
        Coo::from_entries(n, nsources, entries)
            .unwrap()
            .to_csr_with::<OrAnd>()
    };
    let at = a.transpose();
    let at_csc = at.to_csc();

    let mut levels: Vec<Vec<Option<u32>>> = vec![vec![None; n]; nsources];
    for (i, &s) in sources.iter().enumerate() {
        levels[i][s] = Some(0);
    }

    let engine = SpGemm::pb();
    let mut depth = 0u32;
    let t = std::time::Instant::now();
    loop {
        depth += 1;
        // One step for all sources at once: Aᵀ ⊗ F under (∨, ∧).
        let reached = engine.multiply_csc_with::<OrAnd>(&at_csc, &frontier);
        // Keep only newly discovered vertices, update levels.
        let mut new_entries: Vec<(usize, usize, bool)> = Vec::new();
        for (v, src, _) in reached.iter() {
            let lvl = &mut levels[src as usize][v as usize];
            if lvl.is_none() {
                *lvl = Some(depth);
                new_entries.push((v as usize, src as usize, true));
            }
        }
        if new_entries.is_empty() || depth > n as u32 {
            break;
        }
        frontier = Coo::from_entries(n, nsources, new_entries)
            .unwrap()
            .to_csr_with::<OrAnd>();
    }
    println!(
        "multi-source BFS finished in {} levels, {:.1} ms total SpGEMM-driven traversal",
        depth - 1,
        t.elapsed().as_secs_f64() * 1e3
    );

    // Verify a few sources against the sequential oracle.
    for (i, &s) in sources.iter().take(4).enumerate() {
        let expected = bfs_oracle(&a, s);
        assert_eq!(levels[i], expected, "BFS levels differ for source {s}");
    }
    println!("levels verified against the sequential BFS oracle ✔");

    let reachable: usize = levels[0].iter().filter(|l| l.is_some()).count();
    println!(
        "vertices reachable from source {}: {}",
        sources[0], reachable
    );
}
