//! Local vs. "far" memory probes, standing in for the paper's dual-socket
//! NUMA measurements (Table VII and the Fig. 14 discussion).
//!
//! The paper measures cross-socket bandwidth (~33 GB/s vs ~50 GB/s local)
//! and latency (~147 ns vs ~88 ns) on a two-socket Skylake system and shows
//! that PB-SpGEMM — being bandwidth-bound — suffers more from the reduced
//! effective bandwidth than latency-bound column algorithms do.
//!
//! This environment exposes a single NUMA domain, so the remote-memory
//! behaviour is **emulated**: the "far" bandwidth probe streams with a
//! cache-line stride that defeats hardware prefetching (yielding a
//! substantially lower sustained bandwidth, like a remote socket), and the
//! latency probe chases a randomly permuted pointer chain (local) or the
//! same chain with a larger working set (far).  The emulation preserves the
//! property the paper relies on — a bandwidth-degraded memory domain — and
//! is documented as a substitution in `DESIGN.md` / `EXPERIMENTS.md`.

use std::time::Instant;

use serde::Serialize;

use self::rng_util::SmallRng;

/// Result of the local/far memory probe, mirroring Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NumaProbe {
    /// Sequential-stream bandwidth of the local domain (GB/s).
    pub local_bandwidth_gbps: f64,
    /// Bandwidth of the emulated far domain (GB/s).
    pub far_bandwidth_gbps: f64,
    /// Pointer-chase latency of the local domain (ns).
    pub local_latency_ns: f64,
    /// Pointer-chase latency of the emulated far domain (ns).
    pub far_latency_ns: f64,
}

impl NumaProbe {
    /// The bandwidth degradation factor `far / local` (≤ 1); the paper
    /// observes ≈ 0.66 across sockets.
    pub fn bandwidth_ratio(&self) -> f64 {
        if self.local_bandwidth_gbps == 0.0 {
            0.0
        } else {
            self.far_bandwidth_gbps / self.local_bandwidth_gbps
        }
    }
}

/// Configuration of the probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NumaConfig {
    /// Elements in the bandwidth buffers (default 2²³ doubles = 64 MiB).
    pub bandwidth_elements: usize,
    /// Nodes in the pointer-chase chain for the local latency measurement.
    pub latency_nodes_local: usize,
    /// Nodes in the pointer-chase chain for the far latency measurement
    /// (larger working set ⇒ more misses ⇒ higher latency, emulating the
    /// extra hop).
    pub latency_nodes_far: usize,
    /// Pointer-chase steps.
    pub chase_steps: usize,
}

impl Default for NumaConfig {
    fn default() -> Self {
        NumaConfig {
            bandwidth_elements: 1 << 23,
            latency_nodes_local: 1 << 16,
            latency_nodes_far: 1 << 22,
            chase_steps: 2_000_000,
        }
    }
}

impl NumaConfig {
    /// Faster configuration for smoke runs: buffers still exceed the caches.
    pub fn quick() -> Self {
        NumaConfig {
            bandwidth_elements: 1 << 21,
            latency_nodes_local: 1 << 13,
            latency_nodes_far: 1 << 20,
            chase_steps: 500_000,
        }
    }

    /// Tiny configuration for unit tests only.
    pub fn tiny() -> Self {
        NumaConfig {
            bandwidth_elements: 1 << 16,
            latency_nodes_local: 1 << 10,
            latency_nodes_far: 1 << 14,
            chase_steps: 100_000,
        }
    }
}

/// Runs the local/far probe.
pub fn probe(config: &NumaConfig) -> NumaProbe {
    let n = config.bandwidth_elements.max(1 << 12);
    let src = vec![1.0f64; n];
    let mut dst = vec![0.0f64; n];

    // Local: sequential streaming copy (best of three to discount page
    // faults and timer noise on the first touch).  `black_box` keeps the
    // optimiser from eliding the copies.
    let mut best = f64::MAX;
    for _ in 0..3 {
        let t = Instant::now();
        dst.copy_from_slice(std::hint::black_box(&src));
        std::hint::black_box(&mut dst);
        best = best.min(t.elapsed().as_secs_f64());
    }
    let local_bw = 16.0 * n as f64 / best / 1e9;

    // Far (emulated): strided access touching one element per cache line in
    // a pattern that defeats the prefetcher.
    let stride = 8usize; // 8 doubles = 64 bytes = one cache line
    let t = Instant::now();
    let mut acc = 0.0f64;
    for offset in 0..stride {
        let mut i = offset;
        while i < n {
            acc += src[i];
            dst[i] = acc;
            i += stride * 17 % n.max(1) + stride; // irregular stride
        }
    }
    // Count only the cache lines actually touched.
    let touched_lines = {
        let mut count = 0usize;
        for offset in 0..stride {
            let mut i = offset;
            while i < n {
                count += 1;
                i += stride * 17 % n.max(1) + stride;
            }
        }
        count
    };
    let far_bw = (128.0 * touched_lines as f64) / t.elapsed().as_secs_f64() / 1e9;
    assert!(acc.is_finite());

    let local_lat = pointer_chase_ns(config.latency_nodes_local, config.chase_steps, 1);
    let far_lat = pointer_chase_ns(config.latency_nodes_far, config.chase_steps, 2);

    NumaProbe {
        local_bandwidth_gbps: local_bw,
        far_bandwidth_gbps: far_bw.min(local_bw),
        local_latency_ns: local_lat,
        far_latency_ns: far_lat.max(local_lat),
    }
}

/// Runs the probe with the default configuration.
pub fn measure() -> NumaProbe {
    probe(&NumaConfig::default())
}

/// Average latency (ns) of one dependent load in a random pointer chain of
/// `nodes` elements.
fn pointer_chase_ns(nodes: usize, steps: usize, seed: u64) -> f64 {
    let nodes = nodes.max(16);
    // Build a random cyclic permutation (Sattolo's algorithm) so every load
    // depends on the previous one and spans the whole working set.
    let mut next: Vec<u32> = (0..nodes as u32).collect();
    let mut rng = SmallRng::new(seed);
    for i in (1..nodes).rev() {
        let j = (rng.next_u64() as usize) % i;
        next.swap(i, j);
    }
    let mut pos = 0u32;
    let t = Instant::now();
    for _ in 0..steps {
        pos = next[pos as usize];
    }
    let dt = t.elapsed().as_secs_f64();
    assert!(pos < nodes as u32);
    dt * 1e9 / steps as f64
}

/// Minimal xorshift generator local to this module (avoids a dependency of
/// the model crate on the generator crate).
pub(crate) mod rng_util {
    /// A tiny xorshift64* generator.
    #[derive(Debug, Clone)]
    pub struct SmallRng(u64);

    impl SmallRng {
        /// Creates a generator from a nonzero-ified seed.
        pub fn new(seed: u64) -> Self {
            SmallRng(seed.wrapping_mul(2685821657736338717).max(1))
        }

        /// Next pseudo-random 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_probe_reports_sane_numbers() {
        let p = probe(&NumaConfig::tiny());
        assert!(p.local_bandwidth_gbps > 0.0);
        assert!(p.far_bandwidth_gbps > 0.0);
        assert!(p.far_bandwidth_gbps <= p.local_bandwidth_gbps);
        assert!(p.local_latency_ns > 0.0);
        assert!(p.far_latency_ns >= p.local_latency_ns);
        let ratio = p.bandwidth_ratio();
        assert!(ratio > 0.0 && ratio <= 1.0);
    }

    #[test]
    fn latency_grows_with_working_set() {
        // A chain that fits in L1/L2 must be faster per hop than one that
        // spills to memory (or at least not slower by more than noise).
        let small = pointer_chase_ns(1 << 8, 200_000, 3);
        let large = pointer_chase_ns(1 << 20, 200_000, 3);
        assert!(
            large >= small * 0.8,
            "large chain {large} ns vs small chain {small} ns"
        );
    }

    #[test]
    fn small_rng_is_deterministic() {
        let mut a = rng_util::SmallRng::new(9);
        let mut b = rng_util::SmallRng::new(9);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
