//! CSR assembly (line 22 of Algorithm 2, `ConvertCSR`).
//!
//! After compression every bin holds the final nonzeros of its rows in
//! `(row, col)` order.  Assembly produces the CSR output in two passes:
//!
//! 1. a parallel pass over bins counts the nonzeros of every output row;
//! 2. after an exclusive prefix sum over those counts, a second parallel
//!    pass scatters each bin's entries into its rows' slots.
//!
//! Both passes write to shared arrays without locks.  This is sound because
//! the bin mapping partitions the row space: all tuples of a given row live
//! in exactly one bin, so two bins never touch the same row counter or the
//! same CSR row segment.

use std::mem::MaybeUninit;

use pb_sparse::{Csr, Index, Scalar};
use rayon::prelude::*;

use crate::bins::BinnedTuples;
use crate::profile::StatsCollector;
use crate::workspace::WorkspaceLease;

/// A shared mutable pointer used for the disjoint per-row writes described
/// in the module docs.
struct SharedPtr<T>(*mut T);

unsafe impl<T: Send> Send for SharedPtr<T> {}
unsafe impl<T: Send> Sync for SharedPtr<T> {}

impl<T> SharedPtr<T> {
    #[inline]
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Builds the CSR result from compressed, sorted bins.
///
/// The number of nonempty output rows is recorded into `stats` (it falls
/// out of the prefix-sum pass for free and quantifies how sparse the output
/// row space is).
pub fn assemble<V: Scalar>(tuples: &BinnedTuples<V>, stats: &StatsCollector) -> Csr<V> {
    assemble_core(tuples, stats, Vec::new()).0
}

/// [`assemble`] drawing the pass-1 staging (`nrows` row counters) from a
/// workspace lease, so repeated multiplies stop re-allocating it.  The CSR
/// output arrays themselves are returned to the caller inside the product
/// and can never be pooled.
pub fn assemble_reusing<V: Scalar>(
    tuples: &BinnedTuples<V>,
    stats: &StatsCollector,
    lease: &mut WorkspaceLease<V>,
) -> Csr<V> {
    let staging = lease.take_row_counts(tuples.layout.nrows, stats);
    let (c, staging) = assemble_core(tuples, stats, staging);
    lease.put_row_counts(staging);
    c
}

/// Shared implementation; returns the staging vector for recycling.
fn assemble_core<V: Scalar>(
    tuples: &BinnedTuples<V>,
    stats: &StatsCollector,
    mut row_counts: Vec<usize>,
) -> (Csr<V>, Vec<usize>) {
    let layout = &tuples.layout;
    let nrows = layout.nrows;
    let ncols = layout.ncols;
    let nnz = tuples.compressed_total();

    // ----- Pass 1: per-row nonzero counts. ---------------------------------
    row_counts.clear();
    row_counts.resize(nrows, 0);
    {
        let counts_ptr = SharedPtr(row_counts.as_mut_ptr());
        (0..tuples.nbins()).into_par_iter().for_each(|b| {
            let base = counts_ptr.get();
            for e in tuples.bin(b) {
                let (row, _) = layout.unpack(b, e.key);
                // SAFETY: `row < nrows` by construction of the packed key,
                // and rows are partitioned across bins, so no other bin (and
                // therefore no other thread) writes this element.
                unsafe { *base.add(row as usize) += 1 };
            }
        });
    }

    // ----- Exclusive prefix sum -> rowptr. ----------------------------------
    let mut rowptr = Vec::with_capacity(nrows + 1);
    let mut acc = 0usize;
    let mut nonempty = 0usize;
    rowptr.push(0);
    for &c in &row_counts {
        acc += c;
        nonempty += usize::from(c > 0);
        rowptr.push(acc);
    }
    debug_assert_eq!(acc, nnz);
    stats.record_nonempty_rows(nonempty);

    // ----- Pass 2: scatter column indices and values. -----------------------
    let mut colidx: Vec<MaybeUninit<Index>> = Vec::with_capacity(nnz);
    let mut values: Vec<MaybeUninit<V>> = Vec::with_capacity(nnz);
    // SAFETY: MaybeUninit slots do not require initialisation.
    unsafe {
        colidx.set_len(nnz);
        values.set_len(nnz);
    }
    {
        let col_ptr = SharedPtr(colidx.as_mut_ptr());
        let val_ptr = SharedPtr(values.as_mut_ptr());
        let rowptr_ref = &rowptr;
        (0..tuples.nbins()).into_par_iter().for_each(|b| {
            let col_base = col_ptr.get();
            let val_base = val_ptr.get();
            let bin = tuples.bin(b);
            let mut idx = 0usize;
            while idx < bin.len() {
                let (row, _) = layout.unpack(b, bin[idx].key);
                let start = rowptr_ref[row as usize];
                let end = rowptr_ref[row as usize + 1];
                let len = end - start;
                // All entries of `row` are contiguous in this bin (the bin is
                // sorted by (row, col)), and `len` of them exist.
                for k in 0..len {
                    let e = &bin[idx + k];
                    let (_, col) = layout.unpack(b, e.key);
                    // SAFETY: the destination range [start, end) belongs
                    // exclusively to `row`, which belongs exclusively to this
                    // bin; each slot is written exactly once.
                    unsafe {
                        (*col_base.add(start + k)).write(col);
                        (*val_base.add(start + k)).write(e.val);
                    }
                }
                idx += len;
            }
        });
    }

    // SAFETY: pass 1 counted exactly the tuples that pass 2 scattered, so all
    // `nnz` slots of both arrays are initialised.
    let colidx: Vec<Index> = unsafe {
        let mut raw = std::mem::ManuallyDrop::new(colidx);
        Vec::from_raw_parts(raw.as_mut_ptr() as *mut Index, raw.len(), raw.capacity())
    };
    let values: Vec<V> = unsafe {
        let mut raw = std::mem::ManuallyDrop::new(values);
        Vec::from_raw_parts(raw.as_mut_ptr() as *mut V, raw.len(), raw.capacity())
    };

    (
        Csr::from_parts_unchecked(nrows, ncols, rowptr, colidx, values),
        row_counts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bins::{BinLayout, Entry};
    use crate::config::BinMapping;

    /// Builds BinnedTuples from explicit (row, col, val) triplets already
    /// grouped and sorted per bin.
    fn build(
        nrows: usize,
        ncols: usize,
        nbins: usize,
        mapping: BinMapping,
        triplets: &[(u32, u32, f64)],
    ) -> BinnedTuples<f64> {
        let layout = BinLayout::new(nrows, ncols, nbins, mapping);
        let mut per_bin: Vec<Vec<Entry<f64>>> = vec![Vec::new(); layout.nbins];
        for &(r, c, v) in triplets {
            per_bin[layout.bin_of(r)].push(Entry {
                key: layout.pack(r, c),
                val: v,
            });
        }
        for bin in &mut per_bin {
            bin.sort_by_key(|e| e.key);
        }
        let mut entries = Vec::new();
        let mut bin_offsets = vec![0usize];
        let mut compressed_len = Vec::new();
        for bin in per_bin {
            compressed_len.push(bin.len());
            entries.extend(bin);
            bin_offsets.push(entries.len());
        }
        BinnedTuples {
            entries,
            bin_offsets,
            compressed_len,
            layout,
        }
    }

    #[test]
    fn assembles_simple_matrix_with_range_mapping() {
        let triplets = [
            (0u32, 1u32, 1.0),
            (0, 3, 2.0),
            (2, 0, 3.0),
            (3, 3, 4.0),
            (5, 2, 5.0),
        ];
        let tuples = build(6, 4, 3, BinMapping::Range, &triplets);
        let c = assemble(&tuples, &StatsCollector::new());
        assert_eq!(c.shape(), (6, 4));
        assert_eq!(c.nnz(), 5);
        assert_eq!(c.get(0, 1), Some(1.0));
        assert_eq!(c.get(0, 3), Some(2.0));
        assert_eq!(c.get(2, 0), Some(3.0));
        assert_eq!(c.get(3, 3), Some(4.0));
        assert_eq!(c.get(5, 2), Some(5.0));
        assert_eq!(c.get(1, 1), None);
        assert!(c.has_sorted_indices());
        assert!(c.validate().is_ok());
    }

    #[test]
    fn assembles_with_modulo_mapping() {
        let triplets = [
            (0u32, 0u32, 1.0),
            (1, 1, 2.0),
            (2, 2, 3.0),
            (3, 0, 4.0),
            (4, 4, 5.0),
        ];
        let tuples = build(5, 5, 2, BinMapping::Modulo, &triplets);
        let c = assemble(&tuples, &StatsCollector::new());
        assert_eq!(c.nnz(), 5);
        for &(r, cc, v) in &triplets {
            assert_eq!(c.get(r as usize, cc as usize), Some(v));
        }
        assert!(c.validate().is_ok());
    }

    #[test]
    fn empty_rows_and_empty_bins() {
        // Rows 1..9 are empty; bin 1 (rows 4..8 with 3 bins over 10 rows) has
        // no tuples at all.
        let triplets = [(0u32, 0u32, 1.0), (9, 9, 2.0)];
        let tuples = build(10, 10, 3, BinMapping::Range, &triplets);
        let stats = StatsCollector::new();
        let c = assemble(&tuples, &stats);
        assert_eq!(stats.snapshot().nonempty_rows, 2);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 0), Some(1.0));
        assert_eq!(c.get(9, 9), Some(2.0));
        assert_eq!(c.row_nnz(5), 0);
    }

    #[test]
    fn completely_empty_product() {
        let tuples = build(4, 4, 2, BinMapping::Range, &[]);
        let c = assemble(&tuples, &StatsCollector::new());
        assert_eq!(c.shape(), (4, 4));
        assert_eq!(c.nnz(), 0);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn dense_row_is_assembled_in_column_order() {
        let triplets: Vec<(u32, u32, f64)> =
            (0..32u32).rev().map(|c| (3u32, c, c as f64)).collect();
        let tuples = build(8, 32, 4, BinMapping::Range, &triplets);
        let c = assemble(&tuples, &StatsCollector::new());
        assert_eq!(c.row_nnz(3), 32);
        let (cols, vals) = c.row(3);
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(vals[5], 5.0);
    }
}
