//! Propagation-blocking SpMV.
//!
//! The two-phase kernel of Beamer et al. (IPDPS 2017), which PB-SpGEMM
//! generalises from vectors to matrices:
//!
//! 1. **Expand / bin** — the matrix is traversed column by column (streamed
//!    reads of `A` and `x`); every nonzero produces an update
//!    `(row, A(row, j) ⊗ x[j])` which is appended to the *bin* owning that
//!    output row.  Bins cover contiguous row ranges sized so one bin's slice
//!    of `y` fits in L2 cache.  Updates are buffered in thread-private bins
//!    and handed over in bulk, so global traffic is sequential.
//! 2. **Accumulate** — bins are processed in parallel; each bin's updates are
//!    applied to its private slice of `y`, which stays cache-resident for the
//!    whole pass.
//!
//! Compared with [`crate::csc_spmv`] this trades one extra streamed
//! write+read of the update list for the elimination of both the random
//! scatter and the `nthreads`-fold reduction — the same trade PB-SpGEMM makes
//! for the expanded-tuple matrix `Ĉ`.

use pb_sparse::semiring::{Numeric, PlusTimes, Semiring};
use pb_sparse::{Csc, Index};
use rayon::prelude::*;

/// Tuning knobs of the propagation-blocking SpMV kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PbSpmvConfig {
    /// Number of row-range bins; `None` derives it from the nonzero count and
    /// [`PbSpmvConfig::l2_bytes`] so one bin's updates fit in L2.
    pub nbins: Option<usize>,
    /// Assumed per-core L2 capacity in bytes used to auto-derive `nbins`.
    pub l2_bytes: usize,
}

impl Default for PbSpmvConfig {
    fn default() -> Self {
        PbSpmvConfig {
            nbins: None,
            l2_bytes: 1024 * 1024,
        }
    }
}

impl PbSpmvConfig {
    /// Sets an explicit bin count.
    pub fn with_nbins(mut self, nbins: usize) -> Self {
        self.nbins = Some(nbins.max(1));
        self
    }

    /// Sets the assumed L2 capacity used to auto-derive the bin count.
    pub fn with_l2_bytes(mut self, bytes: usize) -> Self {
        self.l2_bytes = bytes.max(4096);
        self
    }

    /// Number of bins for a matrix with `nnz` stored entries, `nrows` output
    /// rows and `update_bytes` bytes per binned update.
    pub fn resolve_nbins(&self, nnz: usize, update_bytes: usize, nrows: usize) -> usize {
        let nbins = match self.nbins {
            Some(n) => n,
            None => {
                let bytes = (nnz as u64).saturating_mul(update_bytes as u64);
                (bytes.div_ceil(self.l2_bytes.max(1) as u64) as usize).max(1)
            }
        };
        nbins.clamp(1, nrows.max(1))
    }
}

/// One fold segment's thread-private bins: `bins[b]` holds the `(row, value)`
/// updates destined for bin `b`.
type LocalBins<E> = Vec<Vec<(Index, E)>>;

/// Computes `y = A·x` under a semiring with propagation blocking; `A` must be
/// provided in CSC so the expand pass streams it column by column.
pub fn pb_spmv_with<S: Semiring>(
    a: &Csc<S::Elem>,
    x: &[S::Elem],
    config: &PbSpmvConfig,
) -> Vec<S::Elem> {
    assert_eq!(
        x.len(),
        a.ncols(),
        "x must have one element per matrix column"
    );
    let nrows = a.nrows();
    if nrows == 0 {
        return Vec::new();
    }
    let update_bytes = std::mem::size_of::<(Index, S::Elem)>();
    let nbins = config.resolve_nbins(a.nnz(), update_bytes, nrows);
    let rows_per_bin = nrows.div_ceil(nbins).max(1);
    // `rows_per_bin` rounding can make trailing bins empty; the chunked
    // accumulate pass below simply sees fewer chunks, so recompute the
    // effective bin count from the chunk size.
    let nbins = nrows.div_ceil(rows_per_bin);

    // ----- Phase 1: expand nonzeros into per-bin update lists. -------------
    // Every rayon fold segment owns one set of thread-private bins (the
    // "local bins"); they are handed to phase 2 without concatenation, which
    // plays the role of the bulk flush to global bins.
    let partials: Vec<LocalBins<S::Elem>> = (0..a.ncols())
        .into_par_iter()
        .fold(
            || vec![Vec::new(); nbins],
            |mut bins: LocalBins<S::Elem>, j| {
                let xj = x[j];
                let (rows, vals) = a.col(j);
                for (&r, &v) in rows.iter().zip(vals) {
                    bins[r as usize / rows_per_bin].push((r, S::mul(v, xj)));
                }
                bins
            },
        )
        .collect();

    // ----- Phase 2: per-bin accumulation into y. ----------------------------
    let mut y = vec![S::zero(); nrows];
    y.par_chunks_mut(rows_per_bin)
        .enumerate()
        .for_each(|(b, y_chunk)| {
            let base = b * rows_per_bin;
            for partial in &partials {
                for &(r, v) in &partial[b] {
                    let slot = &mut y_chunk[r as usize - base];
                    *slot = S::add(*slot, v);
                }
            }
        });
    y
}

/// Computes `y = A·x` with ordinary `+`/`×` over a numeric type.
pub fn pb_spmv<T: Numeric>(a: &Csc<T>, x: &[T], config: &PbSpmvConfig) -> Vec<T> {
    pb_spmv_with::<PlusTimes<T>>(a, x, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::csr_spmv;
    use pb_gen::{erdos_renyi_square, rmat_square};
    use pb_sparse::semiring::{MinPlus, OrAnd};
    use pb_sparse::{Coo, Csr};

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn small_matrix_by_hand() {
        let a = Coo::from_entries(
            3,
            3,
            vec![
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
        .unwrap();
        let y = pb_spmv(&a.to_csc(), &[1.0, 2.0, 3.0], &PbSpmvConfig::default());
        assert_eq!(y, vec![7.0, 6.0, 19.0]);
    }

    #[test]
    fn agrees_with_csr_for_all_bin_counts() {
        let a = erdos_renyi_square(8, 6, 21);
        let a_csc = a.to_csc();
        let x: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 * 0.37).cos()).collect();
        let expected = csr_spmv(&a, &x);
        for nbins in [1usize, 2, 7, 64, 1 << 8, 1 << 20] {
            let cfg = PbSpmvConfig::default().with_nbins(nbins);
            let y = pb_spmv(&a_csc, &x, &cfg);
            assert!(max_diff(&y, &expected) < 1e-9, "nbins = {nbins}");
        }
    }

    #[test]
    fn skewed_matrices_are_handled() {
        let a = rmat_square(8, 8, 5);
        let a_csc = a.to_csc();
        let x: Vec<f64> = (0..a.ncols()).map(|i| 1.0 / (i + 1) as f64).collect();
        let expected = csr_spmv(&a, &x);
        let y = pb_spmv(&a_csc, &x, &PbSpmvConfig::default().with_l2_bytes(4096));
        assert!(max_diff(&y, &expected) < 1e-9);
    }

    #[test]
    fn auto_bin_count_scales_with_nnz() {
        let cfg = PbSpmvConfig::default().with_l2_bytes(64 * 1024);
        let small = cfg.resolve_nbins(1_000, 16, 1 << 20);
        let large = cfg.resolve_nbins(10_000_000, 16, 1 << 20);
        assert!(large > small);
        assert_eq!(cfg.resolve_nbins(0, 16, 100), 1);
        // Explicit counts are clamped to the number of rows.
        assert_eq!(
            PbSpmvConfig::default()
                .with_nbins(1000)
                .resolve_nbins(10, 16, 8),
            8
        );
    }

    #[test]
    fn other_semirings() {
        let a = rmat_square(7, 4, 9);
        let a_csc = a.to_csc();
        // Boolean frontier advance.
        let pattern = a.map_values(|_| true);
        let frontier: Vec<bool> = (0..a.ncols()).map(|i| i % 7 == 0).collect();
        assert_eq!(
            pb_spmv_with::<OrAnd>(&pattern.to_csc(), &frontier, &PbSpmvConfig::default()),
            crate::csr::csr_spmv_with::<OrAnd>(&pattern, &frontier)
        );
        // One min-plus relaxation step.
        let dist: Vec<f64> = (0..a.ncols())
            .map(|i| if i == 0 { 0.0 } else { f64::INFINITY })
            .collect();
        assert_eq!(
            pb_spmv_with::<MinPlus>(&a_csc, &dist, &PbSpmvConfig::default()),
            crate::csr::csr_spmv_with::<MinPlus>(&a, &dist)
        );
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let empty = Csr::<f64>::empty(6, 4).to_csc();
        assert_eq!(
            pb_spmv(&empty, &[1.0; 4], &PbSpmvConfig::default()),
            vec![0.0; 6]
        );
        let zero_rows = Csr::<f64>::empty(0, 4).to_csc();
        assert!(pb_spmv(&zero_rows, &[1.0; 4], &PbSpmvConfig::default()).is_empty());
    }

    #[test]
    #[should_panic(expected = "one element per matrix column")]
    fn wrong_x_length_panics() {
        let a = Csr::<f64>::empty(3, 3).to_csc();
        let _ = pb_spmv(&a, &[1.0], &PbSpmvConfig::default());
    }
}
