//! # pb-baseline — column SpGEMM baselines
//!
//! The paper compares PB-SpGEMM against the state-of-the-art *column
//! SpGEMM* algorithms of Nagasaka et al. (Parallel Computing 2019):
//! **HeapSpGEMM**, **HashSpGEMM** and **HashVecSpGEMM**, plus the classic
//! dense-accumulator (**SPA**) formulation, a column-wise
//! expand–sort–compress baseline used in the access-pattern analysis
//! (Table II), and the heap-merged outer-product algorithm of Table I
//! ([`outer_heap_spgemm_with`]).  This crate implements all six.
//!
//! All algorithms follow Gustavson's row-wise formulation (the paper notes
//! that row-wise over CSR and column-wise over CSC are computationally
//! identical): row `i` of `C` is the merge of the rows `B(k, :)` selected by
//! the nonzeros `A(i, k)`, scaled by `A(i, k)`.  They differ only in the
//! *accumulator* used for the merge, which is exactly the distinction the
//! paper draws:
//!
//! | Algorithm | Accumulator | Complexity per row |
//! |---|---|---|
//! | [`heap_spgemm_with`] | binary heap (k-way merge) | `O(flop·log d)` |
//! | [`hash_spgemm_with`] | open-addressing hash table | `O(flop)` expected |
//! | [`hashvec_spgemm_with`] | hash table probed in 8-slot groups | `O(flop)` expected |
//! | [`spa_spgemm_with`] | dense scatter vector | `O(flop + ncols touched)` |
//! | [`esc_column_spgemm_with`] | expand, sort, compress per row | `O(flop·log flop_row)` |
//!
//! Rows are processed in parallel with rayon; each thread keeps its
//! accumulator private (thread-private heaps / hash tables / SPAs, as in the
//! reference implementations the paper cites).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod esc;
pub mod hash;
pub mod heap;
pub mod kernel;
pub mod outer_heap;
pub mod spa;
pub mod util;

pub use esc::{esc_column_spgemm, esc_column_spgemm_with};
pub use hash::{hash_spgemm, hash_spgemm_with, hashvec_spgemm, hashvec_spgemm_with};
pub use heap::{heap_spgemm, heap_spgemm_with};
pub use kernel::Kernel;
pub use outer_heap::{outer_heap_spgemm, outer_heap_spgemm_with};
pub use spa::{spa_spgemm, spa_spgemm_with};

use pb_sparse::semiring::{Numeric, Semiring};
use pb_sparse::Csr;

/// The column SpGEMM baselines evaluated in the paper, as a value so that
/// benchmark harnesses can iterate over them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Heap (k-way merge) accumulator — `HeapSpGEMM` in the paper.
    Heap,
    /// Hash-table accumulator — `HashSpGEMM` in the paper.
    Hash,
    /// Hash-table accumulator with vector-register-style grouped probing —
    /// `HashVecSpGEMM` in the paper.
    HashVec,
    /// Dense sparse-accumulator (SPA), the MATLAB/CombBLAS formulation.
    Spa,
    /// Column-wise expand–sort–compress.
    EscColumn,
    /// Outer-product formulation merged with a heap (Buluç & Gilbert), the
    /// algorithm Table I places next to ESC-based outer products and which
    /// the paper dismisses as too expensive — kept as an ablation point.
    OuterHeap,
}

impl Baseline {
    /// All baselines in the order the paper lists them.
    pub fn all() -> &'static [Baseline] {
        &[
            Baseline::Heap,
            Baseline::Hash,
            Baseline::HashVec,
            Baseline::Spa,
            Baseline::EscColumn,
            Baseline::OuterHeap,
        ]
    }

    /// The three baselines the paper's figures plot against PB-SpGEMM.
    pub fn paper_set() -> &'static [Baseline] {
        &[Baseline::Heap, Baseline::Hash, Baseline::HashVec]
    }

    /// Human-readable name matching the paper's terminology.
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::Heap => "HeapSpGEMM",
            Baseline::Hash => "HashSpGEMM",
            Baseline::HashVec => "HashVecSpGEMM",
            Baseline::Spa => "SpaSpGEMM",
            Baseline::EscColumn => "ColumnESC",
            Baseline::OuterHeap => "OuterHeap",
        }
    }

    /// Runs the baseline on CSR operands under an arbitrary semiring.
    pub fn multiply_with<S: Semiring>(&self, a: &Csr<S::Elem>, b: &Csr<S::Elem>) -> Csr<S::Elem> {
        match self {
            Baseline::Heap => heap_spgemm_with::<S>(a, b),
            Baseline::Hash => hash_spgemm_with::<S>(a, b),
            Baseline::HashVec => hashvec_spgemm_with::<S>(a, b),
            Baseline::Spa => spa_spgemm_with::<S>(a, b),
            Baseline::EscColumn => esc_column_spgemm_with::<S>(a, b),
            Baseline::OuterHeap => outer_heap_spgemm_with::<S>(&a.to_coo().to_csc_with::<S>(), b),
        }
    }

    /// Runs the baseline with ordinary `+`/`×` over any numeric type —
    /// generic like [`Baseline::multiply_with`], so the baselines accept
    /// the same element types the PB path does.
    pub fn multiply<T: Numeric>(&self, a: &Csr<T>, b: &Csr<T>) -> Csr<T> {
        self.multiply_with::<pb_sparse::PlusTimes<T>>(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::erdos_renyi_square;
    use pb_sparse::reference::{csr_approx_eq, multiply_csr};

    #[test]
    fn every_baseline_matches_the_reference_on_a_random_matrix() {
        let a = erdos_renyi_square(8, 4, 99);
        let expected = multiply_csr(&a, &a);
        for alg in Baseline::all() {
            let c = alg.multiply(&a, &a);
            assert!(
                csr_approx_eq(&c, &expected, 1e-9),
                "{} disagrees with the reference implementation",
                alg.name()
            );
        }
    }

    #[test]
    fn names_and_sets_are_consistent() {
        assert_eq!(Baseline::all().len(), 6);
        assert_eq!(Baseline::paper_set().len(), 3);
        let names: Vec<_> = Baseline::all().iter().map(|b| b.name()).collect();
        assert!(names.contains(&"HeapSpGEMM"));
        assert!(names.contains(&"HashVecSpGEMM"));
        assert!(names.contains(&"OuterHeap"));
    }
}
