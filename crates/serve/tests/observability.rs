//! End-to-end observability checks against a live in-process server: the
//! metrics page conforms to the text exposition grammar and its counters
//! are monotonic across scrapes, and the `trace` op exports a valid Chrome
//! trace covering the whole request path.
//!
//! Everything runs in ONE test: the tracer is process-global state, and
//! the default Rust harness runs `#[test]` functions concurrently.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use pb_serve::{Exposition, ServeConfig, Server};
use pb_spgemm::trace;
use serde::Value;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn call(&mut self, request: &str) -> Value {
        self.writer
            .write_all(format!("{request}\n").as_bytes())
            .expect("send");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        serde_json::from_str(&line).expect("response JSON")
    }
}

fn ok(v: &Value) -> bool {
    v.get("ok").and_then(Value::as_bool) == Some(true)
}

fn scrape(client: &mut Client) -> Exposition {
    let r = client.call(r#"{"op":"metrics"}"#);
    assert!(ok(&r), "{r:?}");
    let text = r.get("text").and_then(Value::as_str).expect("metrics text");
    let page = Exposition::parse(text).unwrap_or_else(|e| panic!("{e}\n{text}"));
    page.check().unwrap_or_else(|e| panic!("{e}\n{text}"));
    page
}

/// Scrapes until `pred` holds: a worker records its latency sample *after*
/// writing the response, so a scrape racing right behind a response can
/// miss the last request's bookkeeping for an instant.
fn scrape_when(client: &mut Client, pred: impl Fn(&Exposition) -> bool) -> Exposition {
    for _ in 0..200 {
        let page = scrape(client);
        if pred(&page) {
            return page;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("metrics never reached the expected state");
}

#[test]
fn metrics_conform_and_traces_cover_the_request_path() {
    let server = Server::start(
        ServeConfig::default()
            .addr("127.0.0.1:0")
            .workers(2)
            .budget_bytes(64 << 20),
    )
    .expect("bind");
    let mut client = Client::connect(server.addr());

    let r =
        client.call(r#"{"op":"gen","name":"g","kind":"er","scale":6,"edge_factor":4,"seed":3}"#);
    assert!(ok(&r), "{r:?}");
    for _ in 0..3 {
        let r = client.call(r#"{"op":"multiply","a":"g","b":"g"}"#);
        assert!(ok(&r), "{r:?}");
    }

    // --- Scrape 1: grammar + expected families. --------------------------
    let first = scrape_when(&mut client, |page| {
        page.value("pb_serve_request_seconds_count", &[("op", "multiply")])
            .is_some_and(|count| count >= 3.0)
    });
    assert!(
        first.value("pb_serve_requests_total", &[]).unwrap() >= 4.0,
        "gen + 3 multiplies must be counted"
    );
    assert!(
        first
            .value(
                "pb_serve_request_seconds_bucket",
                &[("op", "multiply"), ("le", "+Inf")]
            )
            .is_some(),
        "histogram must expose an +Inf bucket"
    );
    for family in ["pb_serve_requests_total", "pb_serve_request_seconds"] {
        assert!(
            first.types.contains_key(family),
            "missing TYPE for {family}"
        );
        assert!(first.help.contains_key(family), "missing HELP for {family}");
    }

    // --- Scrape 2: every counter family is monotonic. --------------------
    for _ in 0..2 {
        let r = client.call(r#"{"op":"multiply","a":"g","b":"g"}"#);
        assert!(ok(&r), "{r:?}");
    }
    let threshold = first
        .value("pb_serve_request_seconds_count", &[("op", "multiply")])
        .unwrap()
        + 2.0;
    let second = scrape_when(&mut client, |page| {
        page.value("pb_serve_request_seconds_count", &[("op", "multiply")])
            .is_some_and(|count| count >= threshold)
    });
    for name in first.counter_names() {
        for sample in first.series(name) {
            let labels: Vec<(&str, &str)> = sample
                .labels
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_str()))
                .collect();
            let later = second
                .value(name, &labels)
                .unwrap_or_else(|| panic!("counter {name} vanished between scrapes"));
            assert!(
                later >= sample.value,
                "counter {name}{labels:?} went backwards: {} -> {later}",
                sample.value
            );
        }
    }
    // --- Trace op: enable, run traffic, export, validate. ----------------
    let r = client.call(r#"{"op":"trace","enable":true,"id":900}"#);
    assert!(ok(&r), "{r:?}");
    assert_eq!(r.get("enabled").and_then(Value::as_bool), Some(true));
    // Force the PB pipeline so the phase spans appear regardless of what
    // the planner would pick for a graph this small.
    let r = client.call(r#"{"op":"multiply","a":"g","b":"g","algorithm":"pb","id":901}"#);
    assert!(ok(&r), "{r:?}");
    let r = client.call(r#"{"op":"trace","enable":false,"id":902}"#);
    assert!(ok(&r), "{r:?}");
    assert_eq!(r.get("enabled").and_then(Value::as_bool), Some(false));
    assert!(r.get("events").and_then(Value::as_u64).unwrap() > 0);
    let chrome = r
        .get("chrome")
        .and_then(Value::as_str)
        .expect("chrome JSON");
    let summary = trace::validate_chrome_trace(chrome)
        .unwrap_or_else(|e| panic!("exported trace invalid: {e}"));
    assert!(summary.events > 0 && summary.threads >= 1);
    // The request path and the engine's phases both appear, and the traced
    // multiply is findable by its protocol id (corr=901).
    for needle in [
        "serve.queue_wait",
        "serve.request",
        "serve.engine_call",
        "serve.respond",
        "phase.expand",
        "\"corr\":901",
    ] {
        assert!(chrome.contains(needle), "trace missing {needle}");
    }

    server.shutdown();
    server.join();
}
