//! The byte-budgeted LRU catalog of resident matrices.
//!
//! Each entry pairs a named [`Csr`] matrix with its own [`SpGemm`] engine:
//! a private [`Workspace`] (so repeated products over the entry amortise
//! their working memory and the decay policy can shrink it per-entry) plus
//! the server-wide shared planner and profile sink (so every request
//! teaches the same planner and feeds the same `/metrics` endpoint).
//! Storing past the byte budget evicts least-recently-used entries, and the
//! eviction count is exported as telemetry.

use std::collections::HashMap;
use std::sync::Arc;

use pb_sparse::Csr;
use pb_spgemm::{Algorithm, Planner, ProfileSink, SpGemm, Workspace};

/// Approximate resident bytes of a CSR matrix (row pointers + column
/// indices + values); used against the catalog budget.
pub fn matrix_bytes(m: &Csr<f64>) -> usize {
    (m.nrows() + 1) * std::mem::size_of::<usize>()
        + m.nnz() * (std::mem::size_of::<pb_sparse::Index>() + std::mem::size_of::<f64>())
}

/// One resident matrix with its engine.
#[derive(Debug, Clone)]
pub struct Entry {
    /// The matrix (shared with in-flight requests, so eviction never
    /// invalidates a running multiply).
    pub matrix: Arc<Csr<f64>>,
    /// The engine every request against this entry routes through.
    pub engine: SpGemm,
    /// The entry's workspace (also reachable through the engine; kept here
    /// for telemetry).
    pub workspace: Arc<Workspace>,
    /// Approximate resident bytes, charged against the budget.
    pub bytes: usize,
    /// LRU stamp (ordinal of the last touch).
    stamp: u64,
}

/// Summary of one entry for the `list` op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntryInfo {
    /// Catalog name.
    pub name: String,
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Bytes charged against the budget.
    pub bytes: usize,
}

/// The catalog: named entries, a byte budget, and LRU eviction.
#[derive(Debug)]
pub struct Catalog {
    entries: HashMap<String, Entry>,
    budget_bytes: usize,
    bytes_used: usize,
    clock: u64,
    evictions: u64,
    default_algorithm: Algorithm,
    planner: Arc<Planner>,
    sink: Arc<ProfileSink>,
}

impl Catalog {
    /// An empty catalog with the given byte budget and engine defaults.
    pub fn new(budget_bytes: usize, default_algorithm: Algorithm) -> Self {
        Catalog {
            entries: HashMap::new(),
            budget_bytes,
            bytes_used: 0,
            clock: 0,
            evictions: 0,
            default_algorithm,
            planner: Arc::new(Planner::from_env()),
            sink: ProfileSink::new(),
        }
    }

    /// The shared profile sink every entry engine records into.
    pub fn sink(&self) -> &Arc<ProfileSink> {
        &self.sink
    }

    /// Builds the per-entry engine: entry-private workspace, shared planner
    /// and sink.
    fn engine_for(&self, workspace: Arc<Workspace>) -> SpGemm {
        SpGemm::new()
            .algorithm(self.default_algorithm)
            .planner(Arc::clone(&self.planner))
            .workspace(workspace)
            .profile(Arc::clone(&self.sink))
    }

    /// Inserts (or replaces) `name`, evicting LRU entries if the budget
    /// overflows.  Fails when the matrix alone exceeds the whole budget —
    /// a resident service must bound its footprint, so the request is
    /// rejected instead of silently blowing past the limit.
    pub fn store(&mut self, name: &str, matrix: Csr<f64>) -> Result<(), String> {
        let bytes = matrix_bytes(&matrix);
        if bytes > self.budget_bytes {
            return Err(format!(
                "matrix `{name}` needs {bytes} bytes, over the catalog budget of {} bytes",
                self.budget_bytes
            ));
        }
        if let Some(old) = self.entries.remove(name) {
            self.bytes_used -= old.bytes;
        }
        while self.bytes_used + bytes > self.budget_bytes {
            self.evict_lru();
        }
        self.clock += 1;
        let workspace = Arc::new(Workspace::new());
        let entry = Entry {
            matrix: Arc::new(matrix),
            engine: self.engine_for(Arc::clone(&workspace)),
            workspace,
            bytes,
            stamp: self.clock,
        };
        self.bytes_used += bytes;
        self.entries.insert(name.to_string(), entry);
        Ok(())
    }

    fn evict_lru(&mut self) {
        let Some(name) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.stamp)
            .map(|(n, _)| n.clone())
        else {
            return;
        };
        if let Some(e) = self.entries.remove(&name) {
            self.bytes_used -= e.bytes;
            self.evictions += 1;
        }
    }

    /// Fetches `name` and refreshes its LRU stamp.  The clone is cheap: the
    /// matrix is an `Arc` and the engine's innards are shared handles.
    pub fn get(&mut self, name: &str) -> Option<Entry> {
        self.clock += 1;
        let clock = self.clock;
        self.entries.get_mut(name).map(|e| {
            e.stamp = clock;
            e.clone()
        })
    }

    /// Drops `name`; returns whether it existed (explicit drops are not
    /// counted as evictions).
    pub fn evict(&mut self, name: &str) -> bool {
        match self.entries.remove(name) {
            Some(e) => {
                self.bytes_used -= e.bytes;
                true
            }
            None => false,
        }
    }

    /// Entry summaries sorted by name (deterministic `list` output).
    pub fn list(&self) -> Vec<EntryInfo> {
        let mut infos: Vec<EntryInfo> = self
            .entries
            .iter()
            .map(|(name, e)| EntryInfo {
                name: name.clone(),
                rows: e.matrix.nrows(),
                cols: e.matrix.ncols(),
                nnz: e.matrix.nnz(),
                bytes: e.bytes,
            })
            .collect();
        infos.sort_by(|a, b| a.name.cmp(&b.name));
        infos
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Bytes currently charged against the budget.
    pub fn bytes_used(&self) -> usize {
        self.bytes_used
    }

    /// The byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// LRU evictions so far (budget pressure only, not explicit `evict`).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Sums a workspace counter over every resident entry.
    pub fn sum_workspaces(&self, f: impl Fn(&Workspace) -> u64) -> u64 {
        self.entries.values().map(|e| f(&e.workspace)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_sparse::Coo;

    fn dense(n: usize, tag: f64) -> Csr<f64> {
        let entries: Vec<(usize, usize, f64)> = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j, tag + (i * n + j) as f64)))
            .collect();
        Coo::from_entries(n, n, entries).unwrap().to_csr()
    }

    #[test]
    fn stores_fetches_and_counts_bytes() {
        let mut cat = Catalog::new(1 << 20, Algorithm::Pb);
        cat.store("a", dense(4, 0.0)).unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.bytes_used(), matrix_bytes(&dense(4, 0.0)));
        let e = cat.get("a").expect("stored entry");
        assert_eq!(e.matrix.nnz(), 16);
        assert!(cat.get("missing").is_none());
        assert!(cat.evict("a"));
        assert!(!cat.evict("a"));
        assert_eq!(cat.bytes_used(), 0);
    }

    #[test]
    fn lru_eviction_respects_recency_and_counts() {
        let one = matrix_bytes(&dense(8, 0.0));
        // Budget fits exactly two entries.
        let mut cat = Catalog::new(2 * one + one / 2, Algorithm::Pb);
        cat.store("a", dense(8, 0.0)).unwrap();
        cat.store("b", dense(8, 1.0)).unwrap();
        // Touch `a` so `b` becomes the LRU entry.
        cat.get("a").unwrap();
        cat.store("c", dense(8, 2.0)).unwrap();
        assert_eq!(cat.evictions(), 1);
        assert!(cat.get("b").is_none(), "LRU entry was evicted");
        assert!(cat.get("a").is_some());
        assert!(cat.get("c").is_some());
    }

    #[test]
    fn oversized_matrices_are_rejected() {
        let mut cat = Catalog::new(64, Algorithm::Pb);
        let err = cat.store("big", dense(8, 0.0)).unwrap_err();
        assert!(err.contains("over the catalog budget"));
        assert!(cat.is_empty());
    }

    #[test]
    fn replacing_an_entry_does_not_leak_bytes() {
        let mut cat = Catalog::new(1 << 20, Algorithm::Pb);
        cat.store("a", dense(8, 0.0)).unwrap();
        let before = cat.bytes_used();
        cat.store("a", dense(8, 5.0)).unwrap();
        assert_eq!(cat.bytes_used(), before);
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.evictions(), 0);
    }

    #[test]
    fn entry_engines_share_planner_and_sink_but_not_workspaces() {
        let mut cat = Catalog::new(1 << 20, Algorithm::Auto);
        cat.store("a", dense(4, 0.0)).unwrap();
        cat.store("b", dense(4, 1.0)).unwrap();
        let ea = cat.get("a").unwrap();
        let eb = cat.get("b").unwrap();
        assert!(Arc::ptr_eq(
            ea.engine.planner_handle().unwrap(),
            eb.engine.planner_handle().unwrap()
        ));
        assert!(!Arc::ptr_eq(&ea.workspace, &eb.workspace));
    }
}
