//! Breadth-first search: single-source (SpMSpV) and multi-source (SpGEMM).
//!
//! Multi-source BFS is one of the paper's motivating applications (Gilbert,
//! Reinhardt, Shah — reference \[3\]): a batch of `s` searches advances all
//! frontiers at once by multiplying the transposed adjacency matrix with an
//! `n × s` boolean frontier matrix under the `(∨, ∧)` semiring.  Each
//! iteration is one SpGEMM, so the kernel exercises tall-and-skinny products
//! rather than the square products of the other kernels.

use pb_sparse::semiring::OrAnd;
use pb_sparse::vector::SparseVec;
use pb_sparse::{Coo, Csr, Index};
use pb_spmv::spmspv::spmspv_with;

use pb_spgemm::SpGemm;

/// Result of a (multi-source) breadth-first search.
#[derive(Debug, Clone, PartialEq)]
pub struct BfsResult {
    /// `levels[k][v]` is the BFS depth of vertex `v` from the `k`-th source
    /// (`None` if unreachable).  Sources themselves have depth 0.
    pub levels: Vec<Vec<Option<u32>>>,
    /// Number of frontier-expansion steps performed (the eccentricity of the
    /// deepest search).
    pub iterations: usize,
}

impl BfsResult {
    /// Number of vertices reached (including the source) by search `k`.
    pub fn reached(&self, k: usize) -> usize {
        self.levels[k].iter().filter(|l| l.is_some()).count()
    }
}

/// Single-source BFS over the directed graph `adjacency` (`adjacency(u, v)`
/// stored ⇔ edge `u → v`), implemented with sparse matrix–sparse vector
/// products.
pub fn single_source_bfs<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    source: usize,
) -> Vec<Option<u32>> {
    assert_eq!(
        adjacency.nrows(),
        adjacency.ncols(),
        "BFS needs a square adjacency matrix"
    );
    let n = adjacency.nrows();
    assert!(
        source < n,
        "source vertex {source} is out of bounds for {n} vertices"
    );
    // Aᵀ pushes the frontier along out-edges.
    let at = adjacency.map_values(|_| true).transpose().to_csc();

    let mut levels: Vec<Option<u32>> = vec![None; n];
    levels[source] = Some(0);
    let mut frontier = SparseVec::from_entries_with::<OrAnd>(n, vec![(source, true)])
        .expect("source index is validated above");

    let mut depth = 0u32;
    while frontier.nnz() > 0 && (depth as usize) <= n {
        depth += 1;
        let next = spmspv_with::<OrAnd>(&at, &frontier);
        // Keep only newly discovered vertices.
        let fresh = next.filter(|v, _| levels[v as usize].is_none());
        for (v, _) in fresh.iter() {
            levels[v as usize] = Some(depth);
        }
        frontier = fresh;
    }
    levels
}

/// Multi-source BFS: runs one search per entry of `sources`, advancing all
/// frontiers simultaneously with one SpGEMM per depth level.
pub fn multi_source_bfs<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    sources: &[usize],
    engine: &SpGemm,
) -> BfsResult {
    crate::Bfs::new()
        .engine(engine.clone())
        .sources(sources.iter().copied())
        .run(adjacency)
}

pub(crate) fn multi_source_bfs_impl<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    sources: &[usize],
    engine: &SpGemm,
) -> BfsResult {
    assert_eq!(
        adjacency.nrows(),
        adjacency.ncols(),
        "BFS needs a square adjacency matrix"
    );
    let n = adjacency.nrows();
    let s = sources.len();
    for &src in sources {
        assert!(
            src < n,
            "source vertex {src} is out of bounds for {n} vertices"
        );
    }

    let at: Csr<bool> = adjacency.map_values(|_| true).transpose();

    let mut levels: Vec<Vec<Option<u32>>> = vec![vec![None; n]; s];
    for (k, &src) in sources.iter().enumerate() {
        levels[k][src] = Some(0);
    }
    if s == 0 || n == 0 {
        return BfsResult {
            levels,
            iterations: 0,
        };
    }

    // Frontier matrix F (n × s): F(v, k) = true when vertex v is on the
    // current frontier of search k.
    let mut frontier: Csr<bool> = Coo::from_entries(
        n,
        s,
        sources
            .iter()
            .enumerate()
            .map(|(k, &src)| (src, k, true))
            .collect::<Vec<_>>(),
    )
    .expect("sources are validated above")
    .to_csr_with::<OrAnd>();

    let mut depth = 0u32;
    let mut iterations = 0usize;
    while frontier.nnz() > 0 && (depth as usize) <= n {
        depth += 1;
        let advanced = engine.multiply_with::<OrAnd>(&at, &frontier);
        // Keep only (vertex, search) pairs not seen before and record them.
        let fresh = advanced.prune(|v, k, _| levels[k as usize][v as usize].is_none());
        if fresh.nnz() == 0 {
            break;
        }
        for (v, k, _) in fresh.iter() {
            levels[k as usize][v as usize] = Some(depth);
        }
        frontier = fresh;
        iterations += 1;
    }

    BfsResult { levels, iterations }
}

/// Convenience: BFS levels from every vertex in `0..k` (used by examples and
/// benches to build a tall-and-skinny workload deterministically).
pub fn multi_source_bfs_first_k<T: pb_sparse::Scalar>(
    adjacency: &Csr<T>,
    k: usize,
    engine: &SpGemm,
) -> BfsResult {
    let sources: Vec<usize> = (0..k.min(adjacency.nrows())).collect();
    multi_source_bfs(adjacency, &sources, engine)
}

/// Index type re-exported for frontier-matrix construction in user code.
pub type VertexId = Index;

#[cfg(test)]
mod tests {
    use super::*;
    use pb_gen::rmat_square;

    /// Textbook queue-based BFS used as the oracle.
    fn oracle_bfs(adjacency: &Csr<f64>, source: usize) -> Vec<Option<u32>> {
        let n = adjacency.nrows();
        let mut levels = vec![None; n];
        levels[source] = Some(0);
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let d = levels[u].expect("queued vertices have levels");
            for &v in adjacency.row(u).0 {
                if levels[v as usize].is_none() {
                    levels[v as usize] = Some(d + 1);
                    queue.push_back(v as usize);
                }
            }
        }
        levels
    }

    fn path_graph(n: usize) -> Csr<f64> {
        let entries: Vec<(usize, usize, f64)> = (0..n - 1).map(|u| (u, u + 1, 1.0)).collect();
        Coo::from_entries(n, n, entries).unwrap().to_csr()
    }

    #[test]
    fn single_source_on_a_path() {
        let g = path_graph(6);
        let levels = single_source_bfs(&g, 0);
        assert_eq!(levels, (0..6).map(|d| Some(d as u32)).collect::<Vec<_>>());
        // From the last vertex nothing is reachable (edges are directed).
        let levels = single_source_bfs(&g, 5);
        assert_eq!(levels.iter().filter(|l| l.is_some()).count(), 1);
    }

    #[test]
    fn single_source_matches_the_oracle_on_random_graphs() {
        for seed in [4u64, 9] {
            let g = rmat_square(6, 4, seed);
            for source in [0usize, 7, 31] {
                assert_eq!(
                    single_source_bfs(&g, source),
                    oracle_bfs(&g, source),
                    "seed {seed}"
                );
            }
        }
    }

    #[test]
    fn multi_source_agrees_with_repeated_single_source() {
        let g = rmat_square(6, 5, 13);
        let sources = [0usize, 3, 17, 40];
        for engine in SpGemm::paper_set() {
            let result = multi_source_bfs(&g, &sources, &engine);
            for (k, &src) in sources.iter().enumerate() {
                assert_eq!(
                    result.levels[k],
                    oracle_bfs(&g, src),
                    "engine {} source {src}",
                    engine.name()
                );
            }
        }
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        // Two components: 0-1-2 and 3-4.
        let g = Coo::from_entries(
            5,
            5,
            vec![
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (3, 4, 1.0),
                (4, 3, 1.0),
            ],
        )
        .unwrap()
        .to_csr();
        let result = multi_source_bfs(&g, &[0, 3], &SpGemm::pb());
        assert_eq!(result.reached(0), 3);
        assert_eq!(result.reached(1), 2);
        assert_eq!(result.levels[0][3], None);
        assert_eq!(result.levels[1][0], None);
    }

    #[test]
    fn zero_sources_and_tiny_graphs() {
        let g = path_graph(4);
        let result = multi_source_bfs(&g, &[], &SpGemm::pb());
        assert_eq!(result.iterations, 0);
        assert!(result.levels.is_empty());

        let single = Csr::<f64>::empty(1, 1);
        let levels = single_source_bfs(&single, 0);
        assert_eq!(levels, vec![Some(0)]);
    }

    #[test]
    fn first_k_helper_uses_the_first_vertices() {
        let g = rmat_square(5, 4, 2);
        let result = multi_source_bfs_first_k(&g, 3, &SpGemm::pb());
        assert_eq!(result.levels.len(), 3);
        for (k, lv) in result.levels.iter().enumerate() {
            assert_eq!(lv[k], Some(0));
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn invalid_source_panics() {
        let g = path_graph(3);
        let _ = single_source_bfs(&g, 10);
    }
}
