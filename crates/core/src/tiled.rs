//! Out-of-core tiled PB-SpGEMM — hierarchical propagation blocking.
//!
//! The paper's thesis is that SpGEMM is bandwidth-bound and that propagation
//! blocking restructures it into sequential, bounded memory traffic.  This
//! module applies the same trick one level up, so products whose working set
//! exceeds RAM (or any single allocation) still complete:
//!
//! 1. **Partition** — `A` and `B` are cut into a 2D grid of tiles along
//!    flop-balanced boundaries ([`crate::topology::balanced_boundaries`]
//!    over per-row / per-inner-index / per-column flop weights), so every
//!    tile carries comparable work regardless of skew.
//! 2. **Tile multiply** — each output tile `C[i][j]` is the sum over `k` of
//!    `A[i][k] · B[k][j]`; every partial product runs through the ordinary
//!    [`SpGemm`] engine (PB pipeline, planner, SIMD dispatch all apply),
//!    with the per-tile working set leased from the engine's
//!    [`Workspace`](crate::Workspace) arena — same-shape tiles reuse the
//!    buffers, so steady-state tile processing allocates nothing.
//! 3. **Hierarchical PB accumulation** — the partial products of one output
//!    tile are merged by a *second* propagation-blocking pass: tuples are
//!    binned by contiguous local-row ranges (sequential writes per bin),
//!    then each bin is sorted and reduced independently.  Partials are
//!    visited in ascending `k`, and the in-bin sort is stable, so the
//!    floating-point accumulation order is deterministic — independent of
//!    thread count and of the tile grid for exactly-representable values.
//! 4. **Spill** — tiles live in a [`TileStore`] governed by a byte budget
//!    ([`OOC_BUDGET_ENV`] / [`TiledConfig`] setter).  When an insert would
//!    exceed the budget, least-recently-used tiles are serialised (PBSM v2,
//!    see [`pb_sparse::binfmt`]) and appended to a scratch file; fetches of
//!    spilled tiles memory-map the scratch file back in
//!    ([`pb_sparse::mmapio`]).  Peak resident bytes are therefore bounded
//!    by `budget + one tile` and telemetered
//!    ([`TiledReport::resident_high_water`]).
//!
//! Budget semantics: the budget governs the **tile store** of one multiply
//! (inputs' tiles plus accumulated output tiles).  It is a *per-multiply*
//! knob — distinct from the [`Workspace`](crate::Workspace) decay policy,
//! which bounds the pooled kernel buffers *per workspace/engine* — and the
//! final assembled output matrix is handed back resident by definition.
//! `docs/OOC.md` covers the scheme end to end.

use std::collections::HashMap;
use std::fs::File;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pb_sparse::binfmt::{read_csr_from, write_csr_to, BinaryScalar};
use pb_sparse::mmapio::Mapping;
use pb_sparse::ops::mask_by_pattern;
use pb_sparse::{Csr, Index, Scalar, Semiring, SparseError};

use crate::engine::SpGemm;
use crate::error::PbError;
use crate::profile::PhaseStats;
use crate::topology::balanced_boundaries;
use crate::trace::{self, SpanName};

/// Environment knob: tile-store byte budget in MiB for out-of-core
/// multiplies configured from the environment.
pub const OOC_BUDGET_ENV: &str = "PB_OOC_BUDGET_MB";

/// Default tile-store budget when neither the environment nor the builder
/// sets one: 256 MiB.
pub const DEFAULT_BUDGET_BYTES: u64 = 256 * 1024 * 1024;

/// Hard cap on tile-grid splits per dimension — a runaway budget-derived
/// grid degenerates into per-row tiles and pure overhead past this.
const MAX_SPLITS: usize = 64;

/// Tuples per accumulation bin the hierarchical-PB pass aims for (16-byte
/// tuples → ~256 KiB per bin, an L2-sized working set).
const ACC_TUPLES_PER_BIN: usize = 16 * 1024;

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Configuration of one out-of-core tiled multiply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TiledConfig {
    budget_bytes: u64,
    grid: Option<(usize, usize, usize)>,
    scratch_dir: Option<PathBuf>,
}

impl Default for TiledConfig {
    fn default() -> Self {
        TiledConfig {
            budget_bytes: DEFAULT_BUDGET_BYTES,
            grid: None,
            scratch_dir: None,
        }
    }
}

impl TiledConfig {
    /// A config with the given tile-store budget in bytes.
    pub fn new(budget_bytes: u64) -> Self {
        TiledConfig {
            budget_bytes: budget_bytes.max(1),
            ..TiledConfig::default()
        }
    }

    /// Sets the tile-store budget in MiB.
    pub fn with_budget_mb(mut self, mb: u64) -> Self {
        self.budget_bytes = mb.max(1) * 1024 * 1024;
        self
    }

    /// Forces the tile grid to `(row blocks, inner blocks, col blocks)`
    /// instead of deriving it from the budget.  Used by the bit-identity
    /// tests to sweep grid shapes.
    pub fn with_grid(mut self, row_blocks: usize, inner_blocks: usize, col_blocks: usize) -> Self {
        self.grid = Some((row_blocks.max(1), inner_blocks.max(1), col_blocks.max(1)));
        self
    }

    /// Directory for the spill scratch file (default: the system temp dir).
    pub fn with_scratch_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.scratch_dir = Some(dir.into());
        self
    }

    /// The configured tile-store budget in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// The forced grid, when one was set.
    pub fn grid(&self) -> Option<(usize, usize, usize)> {
        self.grid
    }

    /// Reads [`OOC_BUDGET_ENV`]: `Ok(None)` when unset, a config with that
    /// budget when set to a positive MiB count, and a typed error on
    /// anything else (a resident service must reject a broken environment,
    /// not guess).
    pub fn from_env() -> Result<Option<TiledConfig>, PbError> {
        match std::env::var(OOC_BUDGET_ENV) {
            Err(_) => Ok(None),
            Ok(raw) => match raw.trim().parse::<u64>() {
                Ok(mb) if mb > 0 => Ok(Some(TiledConfig::default().with_budget_mb(mb))),
                _ => Err(PbError::InvalidEnv {
                    var: OOC_BUDGET_ENV,
                    value: raw,
                    expected: "a positive integer MiB count",
                }),
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Report
// ---------------------------------------------------------------------------

/// Telemetry of one tiled multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct TiledReport {
    /// `(row blocks, inner blocks, col blocks)` actually used.
    pub grid: (usize, usize, usize),
    /// The tile-store budget the run was governed by, in bytes.
    pub budget_bytes: u64,
    /// Per-tile engine multiplies executed (non-empty `A[i][k] · B[k][j]`
    /// pairs).
    pub tiles_processed: u64,
    /// Partial-product tuples merged by the hierarchical-PB accumulation
    /// pass.
    pub accumulated_tuples: u64,
    /// Bytes serialised to the scratch file by budget evictions.
    pub spill_bytes: u64,
    /// Tiles that were spilled at least once.
    pub spilled_tiles: u64,
    /// Fetches served by mapping the scratch file back in.
    pub spill_fetches: u64,
    /// Peak resident bytes of the tile store.  Guaranteed ≤
    /// `budget_bytes + max_tile_bytes` (one tile's slack).
    pub resident_high_water: u64,
    /// Largest single tile the store ever held.
    pub max_tile_bytes: u64,
    /// Aggregated per-phase telemetry of the per-tile engine multiplies,
    /// with the `ooc_*` fields stamped (tiles / spill bytes / high water).
    pub stats: PhaseStats,
}

impl TiledReport {
    /// Whether the store honoured its budget up to one tile's slack — the
    /// invariant `bench_pb --verify` gates.
    pub fn within_budget_slack(&self) -> bool {
        self.resident_high_water <= self.budget_bytes + self.max_tile_bytes
    }
}

// ---------------------------------------------------------------------------
// Tile store
// ---------------------------------------------------------------------------

/// Addresses one tile in a [`TileStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileKey {
    /// 0 = A tile, 1 = B tile, 2 = accumulated C tile.
    pub kind: u8,
    /// Block-row index (block-inner index for B tiles).
    pub i: u32,
    /// Block-column index.
    pub j: u32,
}

struct Stored<T: BinaryScalar> {
    resident: Option<Arc<Csr<T>>>,
    bytes: u64,
    /// `(offset, len)` of the serialised tile in the scratch file, once
    /// spilled.  A tile is serialised at most once; later evictions just
    /// drop the resident copy.
    spill: Option<(u64, u64)>,
    stamp: u64,
}

static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A byte-budgeted cache of tiles that spills to a memory-mapped scratch
/// file under pressure.
///
/// Inserts that would exceed the budget first evict least-recently-used
/// resident tiles (serialising each at most once, as a PBSM-v2 record
/// appended to the scratch file); fetches of evicted tiles map the scratch
/// file back in.  Resident bytes therefore never exceed
/// `budget + one tile` — the slack exists because a single tile larger than
/// the whole budget must still be admitted to make progress.
pub struct TileStore<T: BinaryScalar> {
    budget: u64,
    scratch_dir: PathBuf,
    scratch: Option<(PathBuf, File)>,
    scratch_len: u64,
    tiles: HashMap<TileKey, Stored<T>>,
    resident_bytes: u64,
    clock: u64,
    high_water: u64,
    spill_bytes: u64,
    spilled_tiles: u64,
    spill_fetches: u64,
    max_tile_bytes: u64,
}

fn tile_bytes<T: BinaryScalar>(m: &Csr<T>) -> u64 {
    ((m.nrows() + 1) * 8 + m.nnz() * (4 + T::WIDTH)) as u64
}

impl<T: BinaryScalar> TileStore<T> {
    /// An empty store with the given byte budget, spilling into
    /// `scratch_dir` when needed.
    pub fn new(budget: u64, scratch_dir: Option<PathBuf>) -> Self {
        TileStore {
            budget: budget.max(1),
            scratch_dir: scratch_dir.unwrap_or_else(std::env::temp_dir),
            scratch: None,
            scratch_len: 0,
            tiles: HashMap::new(),
            resident_bytes: 0,
            clock: 0,
            high_water: 0,
            spill_bytes: 0,
            spilled_tiles: 0,
            spill_fetches: 0,
            max_tile_bytes: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Serialises `key`'s resident tile to the scratch file (once) and
    /// drops the resident copy.
    fn evict(&mut self, key: TileKey) -> Result<(), PbError> {
        let stored = self.tiles.get_mut(&key).expect("evicting a known tile");
        let tile = stored.resident.take().expect("evicting a resident tile");
        self.resident_bytes -= stored.bytes;
        if stored.spill.is_some() {
            return Ok(());
        }
        let _span = trace::span(SpanName::TiledSpill);
        let mut bytes = Vec::new();
        write_csr_to(&mut bytes, tile.as_ref()).map_err(PbError::Matrix)?;
        if self.scratch.is_none() {
            let n = SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = self
                .scratch_dir
                .join(format!("pb-ooc-{}-{}.spill", std::process::id(), n));
            let file = File::create(&path)?;
            self.scratch = Some((path, file));
        }
        let (_, file) = self.scratch.as_mut().expect("scratch file just created");
        file.write_all(&bytes)?;
        let len = bytes.len() as u64;
        let offset = self.scratch_len;
        self.scratch_len += len;
        self.spill_bytes += len;
        self.spilled_tiles += 1;
        trace::instant(SpanName::TiledSpill, len);
        let stored = self.tiles.get_mut(&key).expect("still present");
        stored.spill = Some((offset, len));
        Ok(())
    }

    /// Evicts least-recently-used resident tiles until `incoming` more
    /// bytes fit in the budget (or nothing is left to evict).
    fn make_room(&mut self, incoming: u64) -> Result<(), PbError> {
        while self.resident_bytes + incoming > self.budget {
            let victim = self
                .tiles
                .iter()
                .filter(|(_, s)| s.resident.is_some())
                .min_by_key(|(_, s)| s.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(key) => self.evict(key)?,
                None => break,
            }
        }
        Ok(())
    }

    /// Admits a tile, spilling older tiles first if the budget demands it.
    pub fn insert(&mut self, key: TileKey, tile: Csr<T>) -> Result<(), PbError> {
        let bytes = tile_bytes(&tile);
        self.max_tile_bytes = self.max_tile_bytes.max(bytes);
        self.make_room(bytes)?;
        let stamp = self.tick();
        self.resident_bytes += bytes;
        self.high_water = self.high_water.max(self.resident_bytes);
        self.tiles.insert(
            key,
            Stored {
                resident: Some(Arc::new(tile)),
                bytes,
                spill: None,
                stamp,
            },
        );
        Ok(())
    }

    /// Returns a tile, mapping it back from the scratch file if it was
    /// evicted (the fetched copy is re-admitted under the budget).
    pub fn fetch(&mut self, key: TileKey) -> Result<Arc<Csr<T>>, PbError> {
        let stamp = self.tick();
        let stored = self
            .tiles
            .get_mut(&key)
            .ok_or_else(|| PbError::InvalidConfig(format!("tile store has no tile for {key:?}")))?;
        stored.stamp = stamp;
        if let Some(tile) = &stored.resident {
            return Ok(Arc::clone(tile));
        }
        let (offset, len) = stored.spill.expect("non-resident tiles are spilled");
        let _span = trace::span(SpanName::TiledFetch);
        let path = &self.scratch.as_ref().expect("spilled tiles have scratch").0;
        let map = Mapping::map(path)?;
        let slice = &map.bytes()[offset as usize..(offset + len) as usize];
        let tile: Csr<T> = read_csr_from(slice).map_err(PbError::Matrix)?;
        drop(map);
        trace::instant(SpanName::TiledFetch, len);
        let bytes = self.tiles[&key].bytes;
        self.spill_fetches += 1;
        self.make_room(bytes)?;
        let arc = Arc::new(tile);
        let stored = self.tiles.get_mut(&key).expect("still present");
        stored.resident = Some(Arc::clone(&arc));
        self.resident_bytes += bytes;
        self.high_water = self.high_water.max(self.resident_bytes);
        Ok(arc)
    }

    /// Peak resident bytes the store reached.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Total bytes serialised to the scratch file.
    pub fn spill_bytes(&self) -> u64 {
        self.spill_bytes
    }
}

impl<T: BinaryScalar> Drop for TileStore<T> {
    fn drop(&mut self) {
        if let Some((path, file)) = self.scratch.take() {
            drop(file);
            let _ = std::fs::remove_file(path);
        }
    }
}

impl<T: BinaryScalar> std::fmt::Debug for TileStore<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TileStore")
            .field("budget", &self.budget)
            .field("tiles", &self.tiles.len())
            .field("resident_bytes", &self.resident_bytes)
            .field("high_water", &self.high_water)
            .field("spill_bytes", &self.spill_bytes)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Partitioning
// ---------------------------------------------------------------------------

/// Extracts the sub-matrix of rows `r0..r1` × columns `c0..c1`, with column
/// indices rebased to the block (requires sorted row indices, which every
/// construction path in this workspace guarantees).
fn extract_block<T: Scalar>(m: &Csr<T>, r0: usize, r1: usize, c0: usize, c1: usize) -> Csr<T> {
    debug_assert!(m.has_sorted_indices());
    let mut rowptr = Vec::with_capacity(r1 - r0 + 1);
    rowptr.push(0);
    let mut colidx: Vec<Index> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    for row in r0..r1 {
        let (cols, vals) = m.row(row);
        let lo = cols.partition_point(|&c| (c as usize) < c0);
        let hi = cols.partition_point(|&c| (c as usize) < c1);
        for t in lo..hi {
            colidx.push(cols[t] - c0 as Index);
            values.push(vals[t]);
        }
        rowptr.push(colidx.len());
    }
    Csr::from_parts_unchecked(r1 - r0, c1 - c0, rowptr, colidx, values)
}

/// Flop-balanced boundary triple for an `m×n · n×p` product: row cuts of
/// `A` (weighted by per-row flop), inner cuts (weighted by
/// `nnz(A[:,k]) · nnz(B[k,:])`) and column cuts of `B` (weighted by
/// per-column nnz).
fn boundaries<TA: Scalar, TB: Scalar>(
    a: &Csr<TA>,
    b: &Csr<TB>,
    grid: (usize, usize, usize),
) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let (p, q, r) = grid;
    let b_row_nnz: Vec<u64> = (0..b.nrows())
        .map(|k| (b.rowptr()[k + 1] - b.rowptr()[k]) as u64)
        .collect();

    let row_weights: Vec<u64> = (0..a.nrows())
        .map(|i| a.row(i).0.iter().map(|&k| b_row_nnz[k as usize]).sum())
        .collect();

    let mut a_col_nnz = vec![0u64; a.ncols()];
    for &c in a.colidx() {
        a_col_nnz[c as usize] += 1;
    }
    let inner_weights: Vec<u64> = (0..a.ncols())
        .map(|k| a_col_nnz[k] * b_row_nnz[k])
        .collect();

    let mut col_weights = vec![0u64; b.ncols()];
    for &c in b.colidx() {
        col_weights[c as usize] += 1;
    }

    (
        balanced_boundaries(&row_weights, p),
        balanced_boundaries(&inner_weights, q),
        balanced_boundaries(&col_weights, r),
    )
}

/// Derives a grid from the budget when none was forced: the smallest split
/// count `s` (same along all three dimensions) for which roughly four
/// average-sized input tiles fit the budget, clamped to `[1, MAX_SPLITS]`
/// and to the matrix dimensions.
fn derive_grid<TA: BinaryScalar, TB: BinaryScalar>(
    a: &Csr<TA>,
    b: &Csr<TB>,
    cfg: &TiledConfig,
) -> (usize, usize, usize) {
    if let Some(grid) = cfg.grid {
        return grid;
    }
    let total = tile_bytes(a) + tile_bytes(b);
    // With s splits per dimension each operand yields s² tiles averaging
    // total/(2s²) bytes; asking for 4 resident tiles within the budget
    // gives s ≈ sqrt(2 · total / budget).
    let ratio = (2.0 * total as f64 / cfg.budget_bytes as f64).max(1.0);
    let s = (ratio.sqrt().ceil() as usize).clamp(1, MAX_SPLITS);
    (
        s.min(a.nrows().max(1)),
        s.min(a.ncols().max(1)),
        s.min(b.ncols().max(1)),
    )
}

// ---------------------------------------------------------------------------
// Hierarchical-PB accumulation
// ---------------------------------------------------------------------------

/// Merges the partial products of one output tile with a second
/// propagation-blocking pass: tuples are binned by contiguous local-row
/// ranges (sequential appends per bin), then each bin is stably sorted by
/// `(row, col)` and reduced with `S::add` in arrival (ascending `k`) order —
/// a deterministic accumulation order regardless of grid or threads.
fn accumulate_partials<S: Semiring>(
    tile_rows: usize,
    tile_cols: usize,
    partials: &[Csr<S::Elem>],
    merged_tuples: &mut u64,
) -> Csr<S::Elem> {
    let total: usize = partials.iter().map(|p| p.nnz()).sum();
    *merged_tuples += total as u64;
    if partials.is_empty() || total == 0 {
        return Csr::empty(tile_rows, tile_cols);
    }
    if partials.len() == 1 {
        return partials[0].clone();
    }

    let nbins = (total / ACC_TUPLES_PER_BIN + 1)
        .clamp(1, 256)
        .min(tile_rows.max(1));
    let rows_per_bin = tile_rows.div_ceil(nbins).max(1);
    let nbins = tile_rows.div_ceil(rows_per_bin).max(1);

    // Propagate: one sequential append stream per row-range bin.
    let mut counts = vec![0usize; nbins];
    for part in partials {
        for row in 0..part.nrows() {
            counts[row / rows_per_bin] += part.row(row).0.len();
        }
    }
    let mut bins: Vec<Vec<(Index, Index, S::Elem)>> =
        counts.iter().map(|&c| Vec::with_capacity(c)).collect();
    for part in partials {
        for row in 0..part.nrows() {
            let (cols, vals) = part.row(row);
            let bin = &mut bins[row / rows_per_bin];
            for (&c, &v) in cols.iter().zip(vals) {
                bin.push((row as Index, c, v));
            }
        }
    }

    // Reduce each bin independently; bins cover ascending disjoint row
    // ranges, so their outputs concatenate into the tile's CSR directly.
    let mut rowptr = Vec::with_capacity(tile_rows + 1);
    rowptr.push(0usize);
    let mut colidx: Vec<Index> = Vec::new();
    let mut values: Vec<S::Elem> = Vec::new();
    let mut next_row = 0usize;
    for (bin_idx, bin) in bins.iter_mut().enumerate() {
        // Stable: equal (row, col) keys keep their ascending-k arrival order.
        bin.sort_by_key(|&(r, c, _)| (r, c));
        let bin_end_row = ((bin_idx + 1) * rows_per_bin).min(tile_rows);
        let mut it = bin.iter().peekable();
        while let Some(&(row, col, v)) = it.next() {
            let row = row as usize;
            while next_row <= row {
                rowptr.push(colidx.len());
                next_row += 1;
            }
            let mut acc = v;
            while let Some(&&(r2, c2, v2)) = it.peek() {
                if r2 as usize == row && c2 == col {
                    acc = S::add(acc, v2);
                    it.next();
                } else {
                    break;
                }
            }
            colidx.push(col);
            values.push(acc);
            *rowptr.last_mut().expect("rowptr non-empty") = colidx.len();
        }
        while next_row < bin_end_row {
            rowptr.push(colidx.len());
            next_row += 1;
        }
    }
    while next_row < tile_rows {
        rowptr.push(colidx.len());
        next_row += 1;
    }
    debug_assert_eq!(rowptr.len(), tile_rows + 1);
    Csr::from_parts_unchecked(tile_rows, tile_cols, rowptr, colidx, values)
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

/// The tiled multiply driver shared by [`SpGemm::multiply_tiled`] and the
/// masked variant.  `mask`, when present, is cut along the same output-tile
/// boundaries and applied per accumulated tile
/// (`(A·B) ∘ pattern(mask)` — identical semantics to the resident
/// [`Masked`](crate::engine::Masked) funnel).
pub(crate) fn multiply_tiled_impl<S, M>(
    engine: &SpGemm,
    a: &Csr<S::Elem>,
    b: &Csr<S::Elem>,
    mask: Option<&Csr<M>>,
    cfg: &TiledConfig,
) -> Result<(Csr<S::Elem>, TiledReport), PbError>
where
    S: Semiring,
    S::Elem: Default + BinaryScalar,
    M: Scalar,
{
    let _span = trace::span(SpanName::TiledMultiply);
    if a.ncols() != b.nrows() {
        return Err(PbError::Matrix(SparseError::ShapeMismatch {
            left: a.shape(),
            right: b.shape(),
            op: "multiply_tiled",
        }));
    }
    if let Some(m) = mask {
        if m.shape() != (a.nrows(), b.ncols()) {
            return Err(PbError::Matrix(SparseError::ShapeMismatch {
                left: m.shape(),
                right: (a.nrows(), b.ncols()),
                op: "multiply_tiled mask",
            }));
        }
    }

    let grid = derive_grid(a, b, cfg);
    let (p, q, r) = grid;
    let mut report = TiledReport {
        grid,
        budget_bytes: cfg.budget_bytes,
        ..TiledReport::default()
    };

    // The per-tile working set leases from one Workspace arena: reuse the
    // engine's own if it carries one, otherwise attach a private one for
    // the duration of this multiply.
    let tile_engine = if engine.workspace_handle().is_some() {
        engine.clone()
    } else {
        engine.clone().with_iteration_workspace()
    };

    let mut store: TileStore<S::Elem> = TileStore::new(cfg.budget_bytes, cfg.scratch_dir.clone());

    // Partition: flop-balanced cuts, tiles admitted to the budgeted store.
    let (row_bounds, _inner_bounds, col_bounds) = {
        let _span = trace::span(SpanName::TiledPartition);
        let bounds = boundaries(a, b, grid);
        for i in 0..p {
            for k in 0..q {
                let tile = extract_block(
                    a,
                    bounds.0[i],
                    bounds.0[i + 1],
                    bounds.1[k],
                    bounds.1[k + 1],
                );
                store.insert(
                    TileKey {
                        kind: 0,
                        i: i as u32,
                        j: k as u32,
                    },
                    tile,
                )?;
            }
        }
        for k in 0..q {
            for j in 0..r {
                let tile = extract_block(
                    b,
                    bounds.1[k],
                    bounds.1[k + 1],
                    bounds.2[j],
                    bounds.2[j + 1],
                );
                store.insert(
                    TileKey {
                        kind: 1,
                        i: k as u32,
                        j: j as u32,
                    },
                    tile,
                )?;
            }
        }
        bounds
    };

    // Compute: every output tile is the hierarchical-PB accumulation of its
    // q partial products, visited in ascending k.
    let mut partials: Vec<Csr<S::Elem>> = Vec::with_capacity(q);
    for i in 0..p {
        let tile_rows = row_bounds[i + 1] - row_bounds[i];
        for j in 0..r {
            let tile_cols = col_bounds[j + 1] - col_bounds[j];
            partials.clear();
            for k in 0..q {
                let a_tile = store.fetch(TileKey {
                    kind: 0,
                    i: i as u32,
                    j: k as u32,
                })?;
                let b_tile = store.fetch(TileKey {
                    kind: 1,
                    i: k as u32,
                    j: j as u32,
                })?;
                if a_tile.nnz() == 0 || b_tile.nnz() == 0 {
                    continue;
                }
                let _span = trace::span(SpanName::TiledTileMultiply);
                let (c_part, profile) = tile_engine.multiply_with_profile::<S>(&a_tile, &b_tile);
                report.tiles_processed += 1;
                report.stats.bytes_allocated += profile.stats.bytes_allocated;
                report.stats.bytes_reused += profile.stats.bytes_reused;
                report.stats.workspace_hits += profile.stats.workspace_hits;
                report.stats.flushes += profile.stats.flushes;
                report.stats.local_flushes += profile.stats.local_flushes;
                report.stats.remote_flushes += profile.stats.remote_flushes;
                if c_part.nnz() > 0 {
                    partials.push(c_part);
                }
            }
            let acc = {
                let _span = trace::span(SpanName::TiledAccumulate);
                let acc = accumulate_partials::<S>(
                    tile_rows,
                    tile_cols,
                    &partials,
                    &mut report.accumulated_tuples,
                );
                match mask {
                    None => acc,
                    Some(m) => {
                        let mask_tile = extract_block(
                            m,
                            row_bounds[i],
                            row_bounds[i + 1],
                            col_bounds[j],
                            col_bounds[j + 1],
                        );
                        mask_by_pattern(&acc, &mask_tile)
                    }
                }
            };
            store.insert(
                TileKey {
                    kind: 2,
                    i: i as u32,
                    j: j as u32,
                },
                acc,
            )?;
        }
    }

    // Assemble: row stripes in order; each stripe's tiles cover ascending
    // disjoint column ranges, so rows concatenate with a column offset.
    let c = {
        let _span = trace::span(SpanName::TiledAssemble);
        let mut rowptr = Vec::with_capacity(a.nrows() + 1);
        rowptr.push(0usize);
        let mut colidx: Vec<Index> = Vec::new();
        let mut values: Vec<S::Elem> = Vec::new();
        for i in 0..p {
            let tiles: Vec<Arc<Csr<S::Elem>>> = (0..r)
                .map(|j| {
                    store.fetch(TileKey {
                        kind: 2,
                        i: i as u32,
                        j: j as u32,
                    })
                })
                .collect::<Result<_, _>>()?;
            for local_row in 0..(row_bounds[i + 1] - row_bounds[i]) {
                for (j, tile) in tiles.iter().enumerate() {
                    let offset = col_bounds[j] as Index;
                    let (cols, vals) = tile.row(local_row);
                    colidx.extend(cols.iter().map(|&c| c + offset));
                    values.extend_from_slice(vals);
                }
                rowptr.push(colidx.len());
            }
        }
        Csr::from_parts_unchecked(a.nrows(), b.ncols(), rowptr, colidx, values)
    };

    report.spill_bytes = store.spill_bytes;
    report.spilled_tiles = store.spilled_tiles;
    report.spill_fetches = store.spill_fetches;
    report.resident_high_water = store.high_water;
    report.max_tile_bytes = store.max_tile_bytes;
    report.stats.ooc_tiles = report.tiles_processed;
    report.stats.ooc_spill_bytes = report.spill_bytes;
    report.stats.ooc_resident_high_water = report.resident_high_water;
    Ok((c, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pb_sparse::PlusTimes;

    fn unit_matrix(n: usize, seed: u64) -> Csr<f64> {
        // A small deterministic pattern with ~4 entries per row.
        let mut entries = Vec::new();
        let mut state = seed | 1;
        for i in 0..n {
            for _ in 0..4 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % n;
                entries.push((i, j, 1.0));
            }
        }
        pb_sparse::Coo::from_entries(n, n, entries)
            .unwrap()
            .to_csr()
    }

    #[test]
    fn tiled_matches_resident_on_every_grid() {
        let a = unit_matrix(200, 7);
        let engine = SpGemm::pb();
        let resident = engine.multiply(&a, &a);
        for grid in [(1, 1, 1), (2, 2, 2), (4, 1, 3), (3, 5, 2)] {
            let cfg = TiledConfig::default().with_grid(grid.0, grid.1, grid.2);
            let (tiled, report) = engine.multiply_tiled(&a, &a, &cfg).unwrap();
            assert_eq!(tiled.rowptr(), resident.rowptr(), "grid {grid:?}");
            assert_eq!(tiled.colidx(), resident.colidx(), "grid {grid:?}");
            assert_eq!(tiled.values(), resident.values(), "grid {grid:?}");
            assert!(report.within_budget_slack());
        }
    }

    #[test]
    fn tiny_budget_forces_spills_and_honours_slack() {
        let a = unit_matrix(300, 3);
        let engine = SpGemm::pb();
        let resident = engine.multiply(&a, &a);
        // A budget far below one operand's size must spill and still agree.
        let cfg = TiledConfig::new(4 * 1024).with_grid(4, 4, 4);
        let (tiled, report) = engine.multiply_tiled(&a, &a, &cfg).unwrap();
        assert_eq!(tiled.colidx(), resident.colidx());
        assert_eq!(tiled.values(), resident.values());
        assert!(report.spill_bytes > 0, "expected spills: {report:?}");
        assert!(report.spill_fetches > 0);
        assert!(report.within_budget_slack(), "{report:?}");
    }

    #[test]
    fn masked_tiled_matches_masked_resident() {
        let a = unit_matrix(150, 11);
        let engine = SpGemm::pb();
        let resident = engine.mask(&a).multiply(&a, &a);
        let cfg = TiledConfig::default().with_grid(3, 2, 3);
        let (tiled, _) = engine.mask(&a).multiply_tiled(&a, &a, &cfg).unwrap();
        assert_eq!(tiled.rowptr(), resident.rowptr());
        assert_eq!(tiled.colidx(), resident.colidx());
        assert_eq!(tiled.values(), resident.values());
    }

    #[test]
    fn shape_mismatch_is_a_typed_error() {
        let a = unit_matrix(32, 1);
        let b = unit_matrix(16, 1);
        let err = SpGemm::pb()
            .multiply_tiled(&a, &b, &TiledConfig::default())
            .unwrap_err();
        assert!(matches!(
            err,
            PbError::Matrix(SparseError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn env_budget_parses_and_rejects() {
        // from_env reads the real environment; only exercise the parser via
        // a config round-trip here (the env-dependent path is covered by
        // the CLI tests, which own their process environment).
        let cfg = TiledConfig::default().with_budget_mb(3);
        assert_eq!(cfg.budget_bytes(), 3 * 1024 * 1024);
        assert_eq!(TiledConfig::new(0).budget_bytes(), 1);
    }

    #[test]
    fn accumulation_is_deterministic() {
        let a = unit_matrix(120, 9);
        let engine = SpGemm::pb();
        let cfg = TiledConfig::new(8 * 1024).with_grid(3, 3, 3);
        let (first, _) = engine.multiply_tiled(&a, &a, &cfg).unwrap();
        for _ in 0..3 {
            let (again, _) = engine.multiply_tiled(&a, &a, &cfg).unwrap();
            let bits =
                |m: &Csr<f64>| -> Vec<u64> { m.values().iter().map(|v| v.to_bits()).collect() };
            assert_eq!(again.rowptr(), first.rowptr());
            assert_eq!(again.colidx(), first.colidx());
            assert_eq!(bits(&again), bits(&first));
        }
    }

    #[test]
    fn works_under_plus_times_u64() {
        let a = unit_matrix(64, 5).map_values(|v| v as u64);
        let engine = SpGemm::reference();
        let resident = engine.multiply(&a, &a);
        let cfg = TiledConfig::default().with_grid(2, 3, 2);
        let (tiled, _) = engine
            .multiply_tiled_with::<PlusTimes<u64>>(&a, &a, &cfg)
            .unwrap();
        assert_eq!(tiled.colidx(), resident.colidx());
        assert_eq!(tiled.values(), resident.values());
    }
}
