//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's real-matrix experiments use matrices from the SuiteSparse
//! collection, which are distributed in the Matrix Market coordinate format.
//! This module implements a reader and writer for the subset of the format
//! needed for SpGEMM experiments: `matrix coordinate
//! {real|integer|pattern} {general|symmetric|skew-symmetric}`.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::coo::Coo;
use crate::error::SparseError;

/// Symmetry declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmSymmetry {
    /// All entries stored explicitly.
    General,
    /// Only the lower triangle is stored; `(i, j)` implies `(j, i)` with the
    /// same value.
    Symmetric,
    /// Only the lower triangle is stored; `(i, j)` implies `(j, i)` with the
    /// negated value.
    SkewSymmetric,
}

/// Value field declared in a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MmField {
    /// Double-precision values.
    Real,
    /// Integer values (parsed into `f64`).
    Integer,
    /// No values; every stored entry is 1.0.
    Pattern,
}

/// Metadata parsed from a Matrix Market header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MmHeader {
    /// Value field of the file.
    pub field: MmField,
    /// Symmetry of the file.
    pub symmetry: MmSymmetry,
}

/// Reads a Matrix Market file from disk into a COO matrix.
pub fn read_matrix_market(path: impl AsRef<Path>) -> Result<Coo<f64>, SparseError> {
    let file = File::open(path)?;
    read_matrix_market_from(BufReader::new(file)).map(|(m, _)| m)
}

/// Reads a Matrix Market stream, returning the matrix and the parsed header.
pub fn read_matrix_market_from<R: Read>(reader: R) -> Result<(Coo<f64>, MmHeader), SparseError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    // --- Header line -------------------------------------------------------
    let (line_no, header) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
            None => {
                return Err(SparseError::MatrixMarket {
                    line: 0,
                    detail: "empty file".into(),
                })
            }
        }
    };
    let tokens: Vec<String> = header
        .split_whitespace()
        .map(|t| t.to_ascii_lowercase())
        .collect();
    if tokens.len() < 5 || tokens[0] != "%%matrixmarket" || tokens[1] != "matrix" {
        return Err(SparseError::MatrixMarket {
            line: line_no,
            detail: format!("invalid header line: {header:?}"),
        });
    }
    if tokens[2] != "coordinate" {
        return Err(SparseError::MatrixMarket {
            line: line_no,
            detail: format!(
                "unsupported format {:?} (only 'coordinate' is supported)",
                tokens[2]
            ),
        });
    }
    let field = match tokens[3].as_str() {
        "real" => MmField::Real,
        "integer" => MmField::Integer,
        "pattern" => MmField::Pattern,
        other => {
            return Err(SparseError::MatrixMarket {
                line: line_no,
                detail: format!("unsupported field {other:?}"),
            })
        }
    };
    let symmetry = match tokens[4].as_str() {
        "general" => MmSymmetry::General,
        "symmetric" => MmSymmetry::Symmetric,
        "skew-symmetric" => MmSymmetry::SkewSymmetric,
        other => {
            return Err(SparseError::MatrixMarket {
                line: line_no,
                detail: format!("unsupported symmetry {other:?}"),
            })
        }
    };

    // --- Size line (after comments) ---------------------------------------
    let (size_line_no, size_line) = loop {
        match lines.next() {
            Some((i, line)) => {
                let line = line?;
                let trimmed = line.trim().to_string();
                if trimmed.is_empty() || trimmed.starts_with('%') {
                    continue;
                }
                break (i + 1, trimmed);
            }
            None => {
                return Err(SparseError::MatrixMarket {
                    line: 0,
                    detail: "missing size line".into(),
                })
            }
        }
    };
    let dims: Vec<usize> = size_line
        .split_whitespace()
        .map(|t| {
            t.parse::<usize>().map_err(|_| SparseError::MatrixMarket {
                line: size_line_no,
                detail: format!("invalid size token {t:?}"),
            })
        })
        .collect::<Result<_, _>>()?;
    if dims.len() != 3 {
        return Err(SparseError::MatrixMarket {
            line: size_line_no,
            detail: format!("size line must have 3 fields, got {}", dims.len()),
        });
    }
    let (nrows, ncols, declared_nnz) = (dims[0], dims[1], dims[2]);

    // --- Entries ------------------------------------------------------------
    let mut coo = Coo::with_capacity(
        nrows,
        ncols,
        if symmetry == MmSymmetry::General {
            declared_nnz
        } else {
            declared_nnz * 2
        },
    )?;
    let mut seen = 0usize;
    for (i, line) in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse_idx = |tok: Option<&str>| -> Result<usize, SparseError> {
            tok.ok_or_else(|| SparseError::MatrixMarket {
                line: i + 1,
                detail: "missing index".into(),
            })?
            .parse::<usize>()
            .map_err(|_| SparseError::MatrixMarket {
                line: i + 1,
                detail: "invalid index".into(),
            })
        };
        let r = parse_idx(it.next())?;
        let c = parse_idx(it.next())?;
        if r == 0 || c == 0 {
            return Err(SparseError::MatrixMarket {
                line: i + 1,
                detail: "Matrix Market indices are 1-based; found 0".into(),
            });
        }
        let v = match field {
            MmField::Pattern => 1.0,
            MmField::Real | MmField::Integer => it
                .next()
                .ok_or_else(|| SparseError::MatrixMarket {
                    line: i + 1,
                    detail: "missing value".into(),
                })?
                .parse::<f64>()
                .map_err(|_| SparseError::MatrixMarket {
                    line: i + 1,
                    detail: "invalid value".into(),
                })?,
        };
        coo.push(r - 1, c - 1, v)?;
        match symmetry {
            MmSymmetry::General => {}
            MmSymmetry::Symmetric => {
                if r != c {
                    coo.push(c - 1, r - 1, v)?;
                }
            }
            MmSymmetry::SkewSymmetric => {
                if r != c {
                    coo.push(c - 1, r - 1, -v)?;
                }
            }
        }
        seen += 1;
    }
    if seen != declared_nnz {
        return Err(SparseError::MatrixMarket {
            line: 0,
            detail: format!("header declares {declared_nnz} entries but file contains {seen}"),
        });
    }
    Ok((coo, MmHeader { field, symmetry }))
}

/// Writes a COO matrix to disk in Matrix Market `coordinate real general`
/// format.
pub fn write_matrix_market(path: impl AsRef<Path>, m: &Coo<f64>) -> Result<(), SparseError> {
    let file = File::create(path)?;
    write_matrix_market_to(BufWriter::new(file), m)
}

/// Writes a COO matrix to any writer in Matrix Market format.
pub fn write_matrix_market_to<W: Write>(mut w: W, m: &Coo<f64>) -> Result<(), SparseError> {
    writeln!(w, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(w, "% written by pb-sparse")?;
    writeln!(w, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (r, c, v) in m.iter() {
        writeln!(w, "{} {} {:e}", r + 1, c + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<(Coo<f64>, MmHeader), SparseError> {
        read_matrix_market_from(text.as_bytes())
    }

    #[test]
    fn reads_general_real_matrix() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    % a comment\n\
                    3 4 3\n\
                    1 1 1.5\n\
                    2 4 -2.0\n\
                    3 2 7\n";
        let (m, header) = parse(text).unwrap();
        assert_eq!(header.field, MmField::Real);
        assert_eq!(header.symmetry, MmSymmetry::General);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.nnz(), 3);
        let d = m.to_dense();
        assert_eq!(d[(0, 0)], 1.5);
        assert_eq!(d[(1, 3)], -2.0);
        assert_eq!(d[(2, 1)], 7.0);
    }

    #[test]
    fn reads_symmetric_pattern_matrix() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 3\n\
                    1 1\n\
                    2 1\n\
                    3 2\n";
        let (m, header) = parse(text).unwrap();
        assert_eq!(header.field, MmField::Pattern);
        assert_eq!(header.symmetry, MmSymmetry::Symmetric);
        // Diagonal entry is not mirrored, off-diagonals are.
        assert_eq!(m.nnz(), 5);
        let d = m.to_dense();
        assert_eq!(d[(0, 1)], 1.0);
        assert_eq!(d[(1, 0)], 1.0);
        assert_eq!(d[(0, 0)], 1.0);
    }

    #[test]
    fn reads_skew_symmetric_and_integer() {
        let text = "%%MatrixMarket matrix coordinate integer skew-symmetric\n\
                    2 2 1\n\
                    2 1 4\n";
        let (m, _) = parse(text).unwrap();
        let d = m.to_dense();
        assert_eq!(d[(1, 0)], 4.0);
        assert_eq!(d[(0, 1)], -4.0);
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(parse("").is_err());
        assert!(parse("%%MatrixMarket matrix array real general\n1 1\n1.0\n").is_err());
        assert!(parse("not a header\n1 1 0\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 3.0\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.0\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate complex general\n1 1 0\n").is_err());
        assert!(parse("%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n").is_err());
        assert!(
            parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n").is_err(),
            "out-of-bounds index must be rejected"
        );
    }

    #[test]
    fn write_read_roundtrip_preserves_matrix() {
        let m = Coo::from_entries(
            4,
            3,
            vec![(0, 0, 1.25), (1, 2, -3.5), (3, 1, 1e-8), (2, 2, 4.0)],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_matrix_market_to(&mut buf, &m).unwrap();
        let (back, header) = read_matrix_market_from(buf.as_slice()).unwrap();
        assert_eq!(header.symmetry, MmSymmetry::General);
        assert_eq!(back.shape(), m.shape());
        assert_eq!(back.nnz(), m.nnz());
        assert!(back.to_dense().approx_eq(&m.to_dense(), 1e-12));
    }

    #[test]
    fn file_roundtrip_via_tempdir() {
        let dir = std::env::temp_dir().join("pb_sparse_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.mtx");
        let m = Coo::from_entries(2, 2, vec![(0, 1, 2.0), (1, 0, -1.0)]).unwrap();
        write_matrix_market(&path, &m).unwrap();
        let back = read_matrix_market(&path).unwrap();
        assert!(back.to_dense().approx_eq(&m.to_dense(), 1e-12));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_matrix_market("/nonexistent/path/matrix.mtx").unwrap_err();
        assert!(matches!(err, SparseError::Io(_)));
    }
}
