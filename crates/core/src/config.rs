//! Tuning knobs of PB-SpGEMM.
//!
//! The paper exposes two tunables (Sec. V-A): the number of propagation
//! bins (`nbins`, chosen so one bin's tuples fit in L2 cache) and the local
//! bin width (512 bytes by default, a few cache lines).  This reproduction
//! additionally exposes the bin→row mapping, the expand strategy and the
//! sort algorithm so they can be ablated in the benchmark suite.

/// How output rows are mapped onto propagation bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinMapping {
    /// Contiguous row ranges: `bin = row / rows_per_bin` (default).
    ///
    /// This is what the paper's key-compression discussion (Sec. III-D)
    /// assumes — rows within a bin form a small contiguous range, so the row
    /// part of the sort key needs only `log2(rows_per_bin)` bits.
    Range,
    /// Round-robin: `bin = row % nbins`, as literally written in
    /// Algorithm 2.  Spreads skewed rows more evenly across bins but defeats
    /// key compression (the full row index must be kept in the key).
    Modulo,
    /// Contiguous row ranges with *data-dependent* boundaries chosen by the
    /// symbolic phase so that every bin receives roughly the same number of
    /// expanded tuples — the paper's "bins with variable ranges of rows"
    /// answer to skewed (R-MAT-like) degree distributions (Sec. III-D and
    /// the scalability discussion in Sec. V-C).  Keeps the key-compression
    /// property of [`BinMapping::Range`] because every bin still covers a
    /// contiguous row range.
    Balanced,
}

/// How expanded tuples travel from the generating thread to the global bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExpandStrategy {
    /// The paper's design: the symbolic phase sizes every global bin
    /// exactly, threads buffer tuples in small local bins and flush them
    /// with an atomically reserved range + `memcpy` into uninitialised
    /// global-bin memory.
    Reserved,
    /// Safe fallback used for differential testing: every thread keeps
    /// per-bin `Vec`s which are concatenated after the parallel loop.
    ThreadLocal,
}

/// Which sorting algorithm orders the tuples inside a bin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortAlgorithm {
    /// Least-significant-digit radix sort with a scratch buffer, one pass
    /// per significant key byte (default; matches the paper's byte-wise
    /// radix sort with the adaptive number of passes).
    LsdRadix,
    /// In-place American-flag (MSD) radix sort, as cited by the paper
    /// (McIlroy et al.).
    AmericanFlag,
    /// `slice::sort_unstable_by_key` — a comparison sort used as the
    /// correctness oracle and as an ablation point.
    Comparison,
}

/// Size of one cache line in bytes on every platform this reproduction
/// targets (x86-64 and aarch64).  Local-bin flushes are sized in whole
/// multiples of this so the propagation-blocked writes of the expand phase
/// hit memory a full line at a time.
pub const CACHE_LINE_BYTES: usize = 64;

/// Default local-bin width in cache lines.  Eight lines × 64 B = 512 B, the
/// paper's default (Sec. V-A): large enough that a flush amortises the
/// reservation `fetch_add`, small enough that one local bin per global bin
/// still fits the bins of a thread in L1/L2.
pub const DEFAULT_LOCAL_BIN_CACHE_LINES: usize = 8;

/// Configuration of a PB-SpGEMM multiplication.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PbConfig {
    /// Number of global bins.  `None` (default) derives it from the flop
    /// count and [`PbConfig::l2_bytes`] exactly as the paper's symbolic
    /// phase does: `nbins = ceil(flop · bytes_per_tuple / L2)`, i.e. the
    /// smallest bin count at which one bin's expanded tuples fit in the L2
    /// cache of the core that will later sort them.
    pub nbins: Option<usize>,
    /// Size of each thread-private local bin in bytes.  The default is
    /// derived, not magic: [`DEFAULT_LOCAL_BIN_CACHE_LINES`] ×
    /// [`CACHE_LINE_BYTES`] = 512 B.  The expand phase converts this byte
    /// budget into a tuple capacity from the actual `Entry<V>` size and
    /// rounds it to whole cache lines (see
    /// [`local_bin_capacity`](crate::expand::local_bin_capacity)).
    pub local_bin_bytes: usize,
    /// Assumed L2 cache capacity per core in bytes, used to auto-derive
    /// `nbins` (default 1 MiB, the Skylake-SP value from Table IV).
    pub l2_bytes: usize,
    /// Row→bin mapping (default [`BinMapping::Range`]).
    pub bin_mapping: BinMapping,
    /// Expand strategy (default [`ExpandStrategy::Reserved`]).
    pub expand: ExpandStrategy,
    /// In-bin sort algorithm (default [`SortAlgorithm::LsdRadix`]).
    pub sort: SortAlgorithm,
    /// Number of rayon worker threads; `None` uses the global pool.
    pub threads: Option<usize>,
}

impl Default for PbConfig {
    fn default() -> Self {
        PbConfig {
            nbins: None,
            local_bin_bytes: DEFAULT_LOCAL_BIN_CACHE_LINES * CACHE_LINE_BYTES,
            l2_bytes: 1024 * 1024,
            bin_mapping: BinMapping::Range,
            expand: ExpandStrategy::Reserved,
            sort: SortAlgorithm::LsdRadix,
            threads: None,
        }
    }
}

impl PbConfig {
    /// The paper's default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets an explicit number of global bins.
    pub fn with_nbins(mut self, nbins: usize) -> Self {
        self.nbins = Some(nbins.max(1));
        self
    }

    /// Sets the local bin width in bytes.
    pub fn with_local_bin_bytes(mut self, bytes: usize) -> Self {
        self.local_bin_bytes = bytes.max(16);
        self
    }

    /// Sets the assumed per-core L2 capacity used to auto-size bins.
    pub fn with_l2_bytes(mut self, bytes: usize) -> Self {
        self.l2_bytes = bytes.max(4096);
        self
    }

    /// Sets the row→bin mapping.
    pub fn with_bin_mapping(mut self, mapping: BinMapping) -> Self {
        self.bin_mapping = mapping;
        self
    }

    /// Sets the expand strategy.
    pub fn with_expand(mut self, strategy: ExpandStrategy) -> Self {
        self.expand = strategy;
        self
    }

    /// Sets the in-bin sort algorithm.
    pub fn with_sort(mut self, sort: SortAlgorithm) -> Self {
        self.sort = sort;
        self
    }

    /// Sets the number of worker threads (a dedicated rayon pool is built
    /// for the multiplication).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Derives the number of global bins for a multiplication with `flop`
    /// expanded tuples of `tuple_bytes` bytes each over `nrows` output rows,
    /// following the paper's rule (`flop · bytes / L2`), clamped so that
    /// every bin covers at least one row.
    pub fn resolve_nbins(&self, flop: u64, tuple_bytes: usize, nrows: usize) -> usize {
        let nbins = match self.nbins {
            Some(n) => n,
            None => {
                let bytes = flop.saturating_mul(tuple_bytes as u64);
                (bytes.div_ceil(self.l2_bytes.max(1) as u64) as usize).max(1)
            }
        };
        nbins.clamp(1, nrows.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = PbConfig::default();
        // 8 cache lines × 64 B: derived, but equal to the paper's 512 B.
        assert_eq!(c.local_bin_bytes, 512);
        assert_eq!(c.bin_mapping, BinMapping::Range);
        assert_eq!(c.expand, ExpandStrategy::Reserved);
        assert_eq!(c.sort, SortAlgorithm::LsdRadix);
        assert_eq!(c.nbins, None);
        assert_eq!(c.threads, None);
    }

    #[test]
    fn builder_methods_clamp_inputs() {
        let c = PbConfig::new()
            .with_nbins(0)
            .with_local_bin_bytes(1)
            .with_l2_bytes(1)
            .with_threads(0);
        assert_eq!(c.nbins, Some(1));
        assert_eq!(c.local_bin_bytes, 16);
        assert_eq!(c.l2_bytes, 4096);
        assert_eq!(c.threads, Some(1));
    }

    #[test]
    fn resolve_nbins_follows_the_papers_rule() {
        let c = PbConfig::new().with_l2_bytes(1 << 20);
        // 16M tuples of 16 bytes = 256 MiB -> 256 bins.
        assert_eq!(c.resolve_nbins(16 << 20, 16, 1 << 20), 256);
        // Tiny multiplications collapse to a single bin.
        assert_eq!(c.resolve_nbins(10, 16, 1 << 20), 1);
        // Explicit nbins wins but is clamped to the number of rows.
        let c = PbConfig::new().with_nbins(4096);
        assert_eq!(c.resolve_nbins(1 << 30, 16, 100), 100);
        assert_eq!(c.resolve_nbins(1 << 30, 16, 1 << 20), 4096);
        // Zero-flop products still get one bin.
        assert_eq!(PbConfig::new().resolve_nbins(0, 16, 8), 1);
    }
}
